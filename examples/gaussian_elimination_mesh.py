#!/usr/bin/env python
"""Map a Gaussian-elimination DAG onto a processor mesh.

The paper's reference [11] (Cosnard et al.) studies parallel Gaussian
elimination on MIMD machines; this example builds that dependence DAG,
compares several clusterings, maps each with the critical-edge strategy,
and cross-checks the analytic makespan against the discrete-event
simulator in all fidelity modes.

Run:  python examples/gaussian_elimination_mesh.py
"""

from repro.analysis import render_table
from repro.clustering import (
    BandClusterer,
    EdgeZeroClusterer,
    LinearClusterer,
    LoadBalanceClusterer,
    RandomClusterer,
)
from repro.core import ClusteredGraph, CriticalEdgeMapper
from repro.sim import SimConfig, simulate
from repro.topology import mesh2d
from repro.workloads import gaussian_elimination_dag

SEED = 11


def main() -> None:
    graph = gaussian_elimination_dag(matrix_size=14, flop_cost=2, word_cost=1)
    system = mesh2d(3, 3)
    print(f"workload : {graph} (critical path {graph.critical_path_length()})")
    print(f"machine  : {system}")
    print()

    clusterers = [
        RandomClusterer(system.num_nodes),
        BandClusterer(system.num_nodes),
        LoadBalanceClusterer(system.num_nodes),
        LinearClusterer(system.num_nodes),
        EdgeZeroClusterer(system.num_nodes),
    ]
    rows = []
    for clusterer in clusterers:
        clustering = clusterer.cluster(graph, rng=SEED)
        clustered = ClusteredGraph(graph, clustering)
        result = CriticalEdgeMapper(rng=SEED).map(clustered, system)

        # Cross-check with the simulator: the contention-free run must
        # equal the analytic makespan; the other modes show how much the
        # 1991 model under-reports on a more realistic machine.
        paper_sim = simulate(clustered, system, result.assignment)
        assert paper_sim.makespan == result.total_time
        serial = simulate(
            clustered, system, result.assignment,
            SimConfig(serialize_processors=True),
        )
        contention = simulate(
            clustered, system, result.assignment,
            SimConfig(serialize_processors=True, link_contention=True),
        )
        rows.append(
            (
                type(clusterer).__name__,
                clustered.cut_weight(),
                result.lower_bound,
                result.total_time,
                f"{result.percent_over_lower_bound():.0f}%",
                serial.makespan,
                contention.makespan,
            )
        )

    print(
        render_table(
            [
                "clusterer",
                "cut",
                "lower bound",
                "mapped",
                "% of bound",
                "serialized",
                "ser+contention",
            ],
            rows,
            title="Gaussian elimination (14x14) on a 3x3 mesh",
        )
    )
    print()
    print(
        "Linear/edge-zero clusterings absorb the heavy column broadcasts, so\n"
        "their lower bounds (and mapped times) beat structure-blind random\n"
        "clustering; the serialized/contention columns show the extra cost a\n"
        "real machine would add on top of the paper's model."
    )


if __name__ == "__main__":
    main()
