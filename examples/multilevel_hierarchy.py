#!/usr/bin/env python
"""Multilevel mapping tour: watch the hierarchy coarsen, map, and refine.

Builds a 1500-task DAG on a 64-node hypercube, prints the coarsening
hierarchy (cluster graph and machine contracted in lockstep, with the
communication weight each contraction absorbs), then races the
``multilevel`` mapper against annealing and the paper's critical-edge
strategy on the communication-volume objective.

Run:  python examples/multilevel_hierarchy.py
"""

from repro.api import get_mapper
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, build_hierarchy, evaluate_assignment
from repro.topology import hypercube
from repro.workloads import layered_random_dag

SEED = 7


def main() -> None:
    # 1. A large instance: 1500 tasks clustered onto a 6-cube.
    graph = layered_random_dag(num_tasks=1500, rng=SEED)
    system = hypercube(6)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=SEED
    )
    clustered = ClusteredGraph(graph, clustering)
    print(f"problem graph : {graph}")
    print(f"system graph  : {system}")

    # 2. The coarsening hierarchy.  Each contraction merges heavy-edge
    #    matched cluster pairs and nearest processor pairs, recording the
    #    communication weight absorbed inside merged nodes — the conserved
    #    quantity: coarse.total_comm + absorbed == fine.total_comm.
    hierarchy = build_hierarchy(clustered, system, min_coarse_tasks=8)
    print("\nhierarchy (finest -> coarsest):")
    for level in hierarchy.levels:
        note = f"  absorbs {level.absorbed:>6}" if level.node_map is not None else ""
        print(
            f"  {level.graph.num_tasks:>3} clusters / "
            f"{level.system.num_nodes:>3} processors, "
            f"comm {level.graph.total_comm:>7}{note}"
        )

    # 3. Race on the communication-volume objective.  Multilevel searches
    #    only the small abstract hierarchy; annealing probes makespan
    #    moves at full resolution.
    print("\nmapper       comm volume   makespan     wall")
    for name in ("multilevel", "annealing", "critical"):
        outcome = get_mapper(name).map(clustered, system, rng=SEED)
        schedule = evaluate_assignment(clustered, system, outcome.assignment)
        print(
            f"{name:<12} {schedule.communication_volume():>11} "
            f"{outcome.total_time:>10} {outcome.wall_time:>7.2f}s"
        )

    # 4. The composition knob: any registered mapper can solve the
    #    coarsest level.
    outcome = get_mapper(
        "multilevel", initial="tabu", initial_params={"iterations": 80}
    ).map(clustered, system, rng=SEED)
    schedule = evaluate_assignment(clustered, system, outcome.assignment)
    print(
        f"{'ml(tabu)':<12} {schedule.communication_volume():>11} "
        f"{outcome.total_time:>10} {outcome.wall_time:>7.2f}s"
        f"   (levels={outcome.extras['levels']:.0f}, "
        f"coarsest={outcome.extras['coarsest_nodes']:.0f})"
    )


if __name__ == "__main__":
    main()
