#!/usr/bin/env python
"""Quickstart: map a random parallel program onto a hypercube.

Walks the full pipeline of the paper's Fig. 1 — problem graph,
clustering, ideal graph / lower bound, critical edges, initial
assignment, refinement with the lower-bound termination condition — and
compares against random mapping, exactly like one row of Table 1.

Run:  python examples/quickstart.py
"""

from repro import map_graph
from repro.analysis import render_gantt
from repro.baselines import average_random_mapping
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph
from repro.topology import hypercube
from repro.workloads import layered_random_dag

SEED = 7


def main() -> None:
    # 1. A random parallel program: 96 tasks, sparse precedence structure.
    graph = layered_random_dag(num_tasks=96, comm_range=(1, 5), rng=SEED)
    print(f"problem graph : {graph}")

    # 2. Cluster it into na == ns groups (the paper assumes clustering is
    #    done by an existing technique; the experiments use random).
    system = hypercube(3)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=SEED
    )
    print(f"system graph  : {system}")

    # 3. Map with the critical-edge strategy.
    result = map_graph(graph, clustering, system, rng=SEED)
    print(f"lower bound   : {result.lower_bound}")
    print(f"initial       : {result.initial_total_time}")
    print(
        f"after refine  : {result.total_time} "
        f"({result.percent_over_lower_bound():.1f}% of the bound, "
        f"{result.refinement.trials} trials, "
        f"provably optimal: {result.is_provably_optimal})"
    )

    # 4. The paper's baseline: average of random mappings.
    clustered = ClusteredGraph(graph, clustering)
    stats = average_random_mapping(clustered, system, samples=20, rng=SEED)
    print(f"random mean   : {stats.mean_total_time:.1f}")
    improvement = 100.0 * (stats.mean_total_time - result.total_time) / result.lower_bound
    print(f"improvement   : {improvement:.0f} percentage points over random")

    # 5. The schedule itself, paper-style.
    print()
    print(render_gantt(result.schedule, max_rows=40))

    # 6. The same instance through the unified API: any registered mapper
    #    by name, one uniform MapOutcome (see examples/compare_mappers.py
    #    for the full head-to-head).
    from repro.api import solve

    outcome = solve(graph, clustering, system, mapper="tabu", rng=SEED)
    print()
    print(
        f"tabu (via repro.api.solve): {outcome.total_time} "
        f"({outcome.percent_of_lower_bound():.1f}% of the bound)"
    )


if __name__ == "__main__":
    main()
