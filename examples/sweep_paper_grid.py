#!/usr/bin/env python
"""The paper's baseline-comparison table as one declarative scenario grid.

``examples/compare_mappers.py`` builds its instances with a hand-written
loop; this example declares the same study as a single
:meth:`repro.api.Scenario.grid` spec — one machine per topology family
(paper Sec. 5), every registered mapper, two replicas — and lets
:func:`repro.api.run_scenarios` run it on a process pool, stream JSONL,
and aggregate the paper-style comparison tables.

Run:  python examples/sweep_paper_grid.py [results.jsonl]

Re-running with the same JSONL path resumes: finished runs are reused,
only missing ones execute.
"""

import sys

from repro.api import Scenario, available_mappers, format_sweep, run_scenarios

SEED = 1991


def build_grid() -> list[Scenario]:
    """3 topologies x 8 mappers x 2 replicas = 48 runs, one spec."""
    return Scenario.grid(
        workload={"name": "layered_random", "params": {"num_tasks": 120}},
        clustering="random",
        topology=["hypercube:3", "mesh2d:3x3", "random:8"],
        mapper=available_mappers(),
        seed=SEED,
        replicas=2,
    )


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else None
    scenarios = build_grid()
    total = sum(s.replicas for s in scenarios)
    print(f"{len(scenarios)} scenarios, {total} runs, streaming to {out or '<memory>'}")

    result = run_scenarios(scenarios, out=out, max_workers=4)
    print(f"executed {result.executed}, reused {result.reused}\n")
    print(format_sweep(result.records))


if __name__ == "__main__":
    main()
