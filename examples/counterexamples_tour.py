#!/usr/bin/env python
"""Tour of the Sec. 2.2 counterexamples (paper Figs. 7-17).

Shows, by exhaustive enumeration of all 8! assignments, that optimizing
the two classic *indirect* objectives — Bokhari's cardinality and Lee &
Aggarwal's phase communication cost — produces mappings that are
strictly slower than the true total-time optimum, which is the paper's
motivation for optimizing total time directly.

Run:  python examples/counterexamples_tour.py
"""

from repro.analysis import render_gantt
from repro.baselines import exhaustive_optimum
from repro.core import ClusteredGraph, evaluate_assignment
from repro.experiments import (
    format_counterexample,
    run_bokhari_counterexample,
    run_lee_counterexample,
)
from repro.workloads import (
    bokhari_counterexample_system,
    bokhari_counterexample_task_graph,
    singleton_clustering,
)


def main() -> None:
    print("=" * 72)
    print(format_counterexample(run_bokhari_counterexample()))
    print("=" * 72)
    print(format_counterexample(run_lee_counterexample()))
    print("=" * 72)
    print()

    # Show the time-optimal schedule for the Bokhari instance (the analogue
    # of the paper's Fig. 12 for its assignment A2).
    graph = bokhari_counterexample_task_graph()
    system = bokhari_counterexample_system()
    clustered = ClusteredGraph(graph, singleton_clustering(graph))
    optimum = exhaustive_optimum(clustered, system)
    schedule = evaluate_assignment(clustered, system, optimum.assignment)
    print(
        f"Time-optimal assignment for the Fig. 7 instance "
        f"(total time {optimum.total_time}, "
        f"{optimum.optima_count} optima among {optimum.evaluated} assignments):"
    )
    print(render_gantt(schedule))


if __name__ == "__main__":
    main()
