#!/usr/bin/env python
"""How honest is the 1991 cost model?  (ablation A4, interactive version)

The paper evaluates mappings with an analytic model: contention-free
shortest-path communication and infinitely wide processors.  This example
re-executes mapped programs on the discrete-event simulator with those
assumptions relaxed and reports the drift — and shows that the *ranking*
of mappings (ours vs random) is preserved even when the absolute numbers
move.

Run:  python examples/simulator_fidelity.py
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines import random_mapping
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, CriticalEdgeMapper
from repro.sim import SimConfig, simulate
from repro.topology import hypercube, mesh2d, torus2d
from repro.workloads import layered_random_dag

SEED = 13

CONFIGS = [
    ("paper model", SimConfig()),
    ("serialized CPUs", SimConfig(serialize_processors=True)),
    ("link contention", SimConfig(link_contention=True)),
    ("both", SimConfig(serialize_processors=True, link_contention=True)),
]


def main() -> None:
    rng = np.random.default_rng(SEED)
    rows = []
    ranking_preserved = 0
    total = 0
    for system in (hypercube(3), mesh2d(3, 3), torus2d(3, 3)):
        graph = layered_random_dag(num_tasks=120, comm_range=(1, 5), rng=rng)
        clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=rng)
        clustered = ClusteredGraph(graph, clustering)
        ours = CriticalEdgeMapper(rng=rng).map(clustered, system)
        rand_assignment, _ = random_mapping(clustered, system, rng=rng)

        for label, config in CONFIGS:
            ours_span = simulate(clustered, system, ours.assignment, config).makespan
            rand_span = simulate(clustered, system, rand_assignment, config).makespan
            rows.append(
                (
                    system.name,
                    label,
                    ours_span,
                    rand_span,
                    f"{rand_span / ours_span:.2f}x",
                )
            )
            total += 1
            ranking_preserved += ours_span <= rand_span

    print(
        render_table(
            ["machine", "fidelity", "ours", "random", "random/ours"],
            rows,
            title="Makespan under increasing machine fidelity",
        )
    )
    print()
    print(
        f"Critical-edge mapping stayed at least as good as random mapping in "
        f"{ranking_preserved}/{total} machine/fidelity combinations — the "
        f"paper's conclusions survive the model's simplifications."
    )


if __name__ == "__main__":
    main()
