#!/usr/bin/env python
"""Tour of the persistent mapping service (``repro.service``).

Four stops:

1. cache-aware synchronous solves — the second identical call returns
   the stored outcome bit-identically without executing the mapper;
2. async jobs — ``submit()``/``submit_scenario()`` return immediately
   with a :class:`Job` to poll or block on, and identical in-flight
   submissions share one execution;
3. a durable store — a second service over the same JSONL answers the
   same question without recomputing, i.e. the cache survives restarts;
4. the HTTP front-end — the same service over ``POST /jobs`` /
   ``GET /jobs/<id>``, exactly what ``mimdmap serve`` runs.

Run:  python examples/service_quickstart.py
"""

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.api import Scenario
from repro.clustering import RandomClusterer
from repro.service import MappingService, make_server
from repro.topology import hypercube
from repro.workloads import layered_random_dag

SEED = 7


def build_instance():
    system = hypercube(3)
    graph = layered_random_dag(num_tasks=80, rng=SEED)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=SEED
    )
    return graph, clustering, system


def main() -> None:
    graph, clustering, system = build_instance()
    store = Path(tempfile.mkdtemp()) / "results.jsonl"

    print("== 1. cache-aware solves ==")
    with MappingService(max_workers=2, store_path=store) as service:
        first = service.solve(graph, clustering, system, mapper="tabu", rng=SEED)
        again = service.solve(graph, clustering, system, mapper="tabu", rng=SEED)
        print(f"total time {first.total_time}, cached repeat is the same object: "
              f"{again is first}")
        print(f"cache stats: {service.cache.stats()}")

        print("\n== 2. async jobs ==")
        scenario = Scenario(
            workload="fft", workload_params={"points_log2": 4},
            topology="hypercube:3", mapper="critical", seed=SEED,
        )
        job = service.submit_scenario(scenario)
        print(f"submitted {job.id}: status={job.status}")
        outcome = job.result()
        print(f"finished  {job.id}: status={job.status}, "
              f"total={outcome.total_time} (bound {outcome.lower_bound})")
        repost = service.submit_scenario(scenario)
        print(f"re-submitted: cached={repost.cached}, same total="
              f"{repost.result().total_time}")

    print("\n== 3. the store survives restarts ==")
    with MappingService(store_path=store) as reborn:
        revived = reborn.solve(graph, clustering, system, mapper="tabu", rng=SEED)
        print(f"recovered {reborn.cache.stats()['durable']} result(s); "
              f"re-solve executed {reborn.executed} mapper run(s) "
              f"and returned total={revived.total_time}")

    print("\n== 4. the HTTP front-end ==")
    with MappingService(max_workers=2) as service:
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        body = json.dumps({"scenario": scenario.to_dict()}).encode()
        with urllib.request.urlopen(
            urllib.request.Request(f"{base}/jobs", data=body), timeout=30
        ) as resp:
            posted = json.loads(resp.read())
        print(f"POST /jobs -> {posted['id']} (cached={posted['cached']})")
        while True:
            with urllib.request.urlopen(
                f"{base}/jobs/{posted['id']}", timeout=30
            ) as resp:
                job_state = json.loads(resp.read())
            if job_state["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        print(f"GET /jobs/{posted['id']} -> {job_state['status']}, "
              f"total={job_state['outcome']['total_time']}")
        with urllib.request.urlopen(f"{base}/registries/mappers", timeout=30) as resp:
            print(f"GET /registries/mappers -> {json.loads(resp.read())['names']}")
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
