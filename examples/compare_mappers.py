#!/usr/bin/env python
"""Head-to-head mapper comparison through the unified ``repro.api``.

Builds a batch of random instances, scores every registered mapper on
one of them with :func:`repro.api.compare`, then fans the full batch
across worker processes with :func:`repro.api.solve_many` — the same
derived-seed scheme guarantees the parallel run reproduces the serial
one bit for bit.

Run:  python examples/compare_mappers.py

For the declarative way to run this kind of study — a ``Scenario.grid``
spec with streamed, resumable JSONL results — see
``examples/sweep_paper_grid.py``.
"""

from repro.api import (
    ProblemInstance,
    available_mappers,
    compare,
    format_comparison,
    solve_many,
)
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph
from repro.topology import hypercube, mesh2d
from repro.workloads import layered_random_dag

SEED = 7


def build_instances() -> list[ProblemInstance]:
    instances = []
    for i, system in enumerate([hypercube(3), mesh2d(3, 3), hypercube(2)]):
        graph = layered_random_dag(num_tasks=80, rng=SEED + i)
        clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
            graph, rng=SEED + i
        )
        instances.append(
            ProblemInstance(
                ClusteredGraph(graph, clustering), system, name=f"inst-{system.name}"
            )
        )
    return instances


def main() -> None:
    instances = build_instances()

    # 1. Every registered mapper on one instance, rendered as a table.
    print(f"registered mappers: {', '.join(available_mappers())}\n")
    first = instances[0]
    outcomes = compare(first.clustered, first.system, seed=SEED)
    print(format_comparison(outcomes))

    # 2. One mapper across the whole batch, on a process pool.  Seeds are
    #    derived per instance, so max_workers only changes the wall time.
    print("\ncritical-edge mapper across the batch (2 workers):")
    batch = solve_many(instances, mapper="critical", seed=SEED, max_workers=2)
    for inst, outcome in zip(instances, batch):
        print(
            f"  {inst.name:18s} total={outcome.total_time:4d} "
            f"bound={outcome.lower_bound:4d} "
            f"({outcome.percent_of_lower_bound():.1f}%, "
            f"optimal={outcome.is_provably_optimal})"
        )


if __name__ == "__main__":
    main()
