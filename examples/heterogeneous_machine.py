#!/usr/bin/env python
"""Beyond 1991: heterogeneous links and serialized processors.

Two library extensions layered on the paper's pipeline:

1. **Weighted links** — a machine whose backbone links are fast (cost 1)
   but whose last-mile links are slow (cost 3).  The mapping strategy
   consumes the weighted distance matrix transparently; the schedule
   routes around the slow links where it matters.
2. **Serialized list scheduling** — the paper's model lets same-processor
   tasks overlap; the analytic list scheduler (`fifo` and `blevel`
   policies) shows what each mapping costs on one-task-at-a-time
   processors, without firing up the event simulator.

Run:  python examples/heterogeneous_machine.py
"""

import numpy as np

from repro.analysis import render_table
from repro.clustering import LoadBalanceClusterer
from repro.core import ClusteredGraph, CriticalEdgeMapper, list_schedule
from repro.topology import SystemGraph
from repro.workloads import fork_join_dag

SEED = 21


def hub_and_spoke_machine() -> SystemGraph:
    """Six nodes: a fast triangle core (0,1,2) + slow spokes (3,4,5)."""
    n = 6
    adj = np.zeros((n, n), dtype=int)
    weights = np.zeros((n, n), dtype=int)
    core = [(0, 1), (1, 2), (0, 2)]
    spokes = [(0, 3), (1, 4), (2, 5)]
    for u, v in core:
        adj[u, v] = 1
        weights[u, v] = 1  # fast backbone
    for u, v in spokes:
        adj[u, v] = 1
        weights[u, v] = 3  # slow last mile
    return SystemGraph(adj, name="hub-spoke-6", link_weights=weights)


def main() -> None:
    system = hub_and_spoke_machine()
    print(f"machine: {system} (weighted: {system.is_weighted})")
    print(f"distance matrix:\n{system.shortest}")
    print()

    graph = fork_join_dag(width=10, stages=3, task_size=4, comm=2)
    clustering = LoadBalanceClusterer(system.num_nodes).cluster(graph, rng=SEED)
    clustered = ClusteredGraph(graph, clustering)
    result = CriticalEdgeMapper(rng=SEED).map(clustered, system)

    print(f"workload    : {graph}")
    print(f"lower bound : {result.lower_bound}")
    print(
        f"mapped      : {result.total_time} "
        f"({result.percent_over_lower_bound():.0f}% of the bound)"
    )
    print()

    rows = []
    spans = {}
    for policy in ("fifo", "blevel"):
        ls = list_schedule(clustered, system, result.assignment, policy=policy)
        spans[policy] = ls.makespan
        rows.append((policy, ls.makespan, f"{ls.makespan / result.total_time:.2f}x"))
    print(
        render_table(
            ["list policy", "serialized makespan", "vs paper model"],
            rows,
            title="Serialized execution of the same mapping",
        )
    )
    print()
    if spans["blevel"] < spans["fifo"]:
        print(
            "The blevel (critical-path-first) policy recovers part of the\n"
            "serialization penalty that FIFO dispatching leaves on the table."
        )
    else:
        print(
            "On this instance FIFO already dispatches the critical work\n"
            "first, so the blevel priority cannot improve on it — the gap\n"
            "to the paper-model makespan is pure serialization cost."
        )


if __name__ == "__main__":
    main()
