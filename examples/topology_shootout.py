#!/usr/bin/env python
"""Topology shootout: one workload, every machine shape.

Maps the same FFT butterfly program onto eight 16-node topologies and
reports how far each lands from the (topology-independent) lower bound —
the kind of architecture comparison the mapping strategy was built for.

Run:  python examples/topology_shootout.py
"""

from repro.analysis import render_table
from repro.baselines import average_random_mapping
from repro.clustering import BandClusterer
from repro.core import ClusteredGraph, CriticalEdgeMapper
from repro.topology import (
    binary_tree,
    chain,
    complete,
    de_bruijn,
    hypercube,
    mesh2d,
    random_connected,
    ring,
    torus2d,
)
from repro.workloads import fft_dag

SEED = 5


def main() -> None:
    graph = fft_dag(points_log2=4, task_size=3, comm=2)  # 5 stages x 16 tasks
    clustering = BandClusterer(num_clusters=16).cluster(graph, rng=SEED)
    clustered = ClusteredGraph(graph, clustering)
    print(f"workload: {graph}")
    print()

    machines = [
        complete(16),
        hypercube(4),
        de_bruijn(4),
        torus2d(4, 4),
        mesh2d(4, 4),
        random_connected(16, extra_edge_prob=0.15, rng=SEED),
        ring(16),
        binary_tree(4),  # 15 nodes won't match na=16 -> skipped below
        chain(16),
    ]
    rows = []
    for system in machines:
        if system.num_nodes != clustered.num_clusters:
            continue  # the mapping stage requires na == ns
        result = CriticalEdgeMapper(rng=SEED).map(clustered, system)
        random_stats = average_random_mapping(clustered, system, samples=20, rng=SEED)
        rows.append(
            (
                system.name,
                system.diameter(),
                f"{system.average_distance():.2f}",
                result.total_time,
                f"{result.percent_over_lower_bound():.0f}%",
                f"{100 * random_stats.mean_total_time / result.lower_bound:.0f}%",
                "yes" if result.is_provably_optimal else "no",
            )
        )

    print(
        render_table(
            ["topology", "diam", "avg dist", "mapped", "ours %", "random %", "hit bound"],
            rows,
            title=f"FFT-16 on 16-node machines (lower bound {result.lower_bound})",
        )
    )
    print()
    print(
        "Richer topologies (complete, hypercube, de Bruijn, torus) keep the\n"
        "butterfly's exchange partners adjacent and stay near the bound; the\n"
        "ring and chain cannot, and the gap over random mapping narrows as\n"
        "the topology's average distance dominates every assignment."
    )


if __name__ == "__main__":
    main()
