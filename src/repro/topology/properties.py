"""Topology property helpers used by reports and tests.

These are diagnostics on :class:`~repro.topology.base.SystemGraph`; the
mapping algorithms themselves only consume ``deg`` and ``shortest``.
"""

from __future__ import annotations

import numpy as np

from ..utils import GraphError
from .base import SystemGraph

__all__ = [
    "is_regular",
    "degree_histogram",
    "eccentricities",
    "radius",
    "center",
    "edge_connectivity_lower_bound",
    "summarize",
]


def is_regular(system: SystemGraph) -> bool:
    """True if every node has the same degree (hypercubes, rings, tori...)."""
    deg = system.deg
    return bool((deg == deg[0]).all())


def degree_histogram(system: SystemGraph) -> dict[int, int]:
    """Map ``degree -> node count``."""
    values, counts = np.unique(system.deg, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def eccentricities(system: SystemGraph) -> np.ndarray:
    """Per-node eccentricity (max distance to any other node)."""
    return system.shortest.max(axis=1)


def radius(system: SystemGraph) -> int:
    """Minimum eccentricity."""
    return int(eccentricities(system).min())


def center(system: SystemGraph) -> np.ndarray:
    """Nodes whose eccentricity equals the radius."""
    ecc = eccentricities(system)
    return np.flatnonzero(ecc == ecc.min())


def edge_connectivity_lower_bound(system: SystemGraph) -> int:
    """A cheap lower bound on robustness: the minimum degree.

    (Exact edge connectivity needs max-flow; min degree upper-bounds it and
    is what interconnection-network folklore quotes for the regular
    families, where the two coincide.)
    """
    if system.num_nodes < 2:
        raise GraphError("connectivity undefined for a single node")
    return int(system.deg.min())


def summarize(system: SystemGraph) -> dict[str, object]:
    """One-line-per-fact structured summary for reports."""
    return {
        "name": system.name,
        "nodes": system.num_nodes,
        "links": system.num_edges(),
        "diameter": system.diameter(),
        "radius": radius(system),
        "average_distance": round(system.average_distance(), 4),
        "min_degree": int(system.deg.min()),
        "max_degree": int(system.deg.max()),
        "regular": is_regular(system),
    }
