"""Generators for the system topologies used in the paper and beyond.

Paper Sec. 5 evaluates hypercubes, 2-D meshes, and random connected
topologies with 4-40 nodes.  We provide those three families plus the
standard interconnection-network zoo (ring, chain, star, complete, torus,
binary tree, cube-connected cycles, de Bruijn, butterfly) so workloads can
be studied on machines with very different diameters and degrees.

Every generator returns a :class:`~repro.topology.base.SystemGraph` with a
descriptive ``name``.  The generators are also registered in the
:data:`repro.api.TOPOLOGIES` registry, where
:func:`repro.api.build_topology` parses ``family:args`` specs like
``"hypercube:3"`` or ``"torus2d:4x4"`` — the declarative form scenario
sweeps and the CLI use.  :func:`by_name` remains the legacy size-based
dispatcher (``("mesh", 12)`` -> squarest 12-node mesh).
"""

from __future__ import annotations

import numpy as np

from ..utils import GraphError, as_rng
from .base import SystemGraph

__all__ = [
    "hypercube",
    "mesh2d",
    "mesh3d",
    "torus2d",
    "torus3d",
    "ring",
    "chain",
    "star",
    "complete",
    "complete_bipartite",
    "binary_tree",
    "cube_connected_cycles",
    "de_bruijn",
    "kautz",
    "butterfly",
    "chordal_ring",
    "petersen",
    "random_connected",
    "random_regular",
    "by_name",
]


def hypercube(dimension: int) -> SystemGraph:
    """A ``dimension``-cube: ``2**dimension`` nodes, neighbors differ in one bit.

    The 8-node system graph of the paper's Fig. 8 (every node degree 3) is
    ``hypercube(3)``.
    """
    if dimension < 0:
        raise GraphError("hypercube dimension must be >= 0")
    n = 1 << dimension
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dimension) if u < u ^ (1 << b)]
    return SystemGraph.from_edges(n, edges, name=f"hypercube-{n}")


def mesh2d(rows: int, cols: int) -> SystemGraph:
    """A ``rows x cols`` 2-D mesh (no wraparound); node ``(r, c) -> r*cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("mesh dimensions must be >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return SystemGraph.from_edges(rows * cols, edges, name=f"mesh-{rows}x{cols}")


def torus2d(rows: int, cols: int) -> SystemGraph:
    """A ``rows x cols`` 2-D torus (mesh with wraparound links)."""
    if rows < 2 or cols < 2:
        raise GraphError("torus dimensions must be >= 2")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if u != right:
                edges.add((min(u, right), max(u, right)))
            if u != down:
                edges.add((min(u, down), max(u, down)))
    return SystemGraph.from_edges(rows * cols, sorted(edges), name=f"torus-{rows}x{cols}")


def ring(n: int) -> SystemGraph:
    """A cycle of ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise GraphError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return SystemGraph.from_edges(n, edges, name=f"ring-{n}")


def chain(n: int) -> SystemGraph:
    """A linear array of ``n`` nodes."""
    if n < 1:
        raise GraphError("a chain needs at least 1 node")
    edges = [(i, i + 1) for i in range(n - 1)]
    return SystemGraph.from_edges(n, edges, name=f"chain-{n}")


def star(n: int) -> SystemGraph:
    """A star: node 0 is the hub, nodes ``1..n-1`` are leaves."""
    if n < 2:
        raise GraphError("a star needs at least 2 nodes")
    edges = [(0, i) for i in range(1, n)]
    return SystemGraph.from_edges(n, edges, name=f"star-{n}")


def complete(n: int) -> SystemGraph:
    """The complete graph on ``n`` nodes (the closure of any ``n``-topology)."""
    if n < 1:
        raise GraphError("a complete graph needs at least 1 node")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return SystemGraph.from_edges(n, edges, name=f"complete-{n}")


def binary_tree(levels: int) -> SystemGraph:
    """A complete binary tree with ``levels`` levels (``2**levels - 1`` nodes)."""
    if levels < 1:
        raise GraphError("a binary tree needs at least 1 level")
    n = (1 << levels) - 1
    edges = []
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                edges.append((i, child))
    return SystemGraph.from_edges(n, edges, name=f"btree-{levels}")


def cube_connected_cycles(dimension: int) -> SystemGraph:
    """CCC(d): each hypercube corner becomes a ``d``-cycle; degree 3 everywhere.

    Node ``(corner, position) -> corner * d + position``; cycle links within
    a corner, one cube link per position.  Requires ``dimension >= 3``.
    """
    d = dimension
    if d < 3:
        raise GraphError("cube-connected cycles needs dimension >= 3")
    n = (1 << d) * d
    edges = set()
    for corner in range(1 << d):
        for pos in range(d):
            u = corner * d + pos
            v = corner * d + (pos + 1) % d
            edges.add((min(u, v), max(u, v)))
            w = (corner ^ (1 << pos)) * d + pos
            edges.add((min(u, w), max(u, w)))
    return SystemGraph.from_edges(n, sorted(edges), name=f"ccc-{d}")


def de_bruijn(bits: int) -> SystemGraph:
    """Undirected binary de Bruijn graph on ``2**bits`` nodes.

    Node ``u`` links to ``(2u) mod n`` and ``(2u+1) mod n``; self-loops are
    dropped (nodes 0 and n-1 shift onto themselves).
    """
    if bits < 2:
        raise GraphError("de Bruijn graph needs bits >= 2")
    n = 1 << bits
    edges = set()
    for u in range(n):
        for v in ((2 * u) % n, (2 * u + 1) % n):
            if u != v:
                edges.add((min(u, v), max(u, v)))
    return SystemGraph.from_edges(n, sorted(edges), name=f"debruijn-{n}")


def butterfly(stages: int) -> SystemGraph:
    """A ``stages``-stage butterfly: ``(stages+1) * 2**stages`` nodes.

    Node ``(level, row) -> level * 2**stages + row``; level ``l`` links to
    level ``l+1`` straight and with bit ``l`` flipped.
    """
    if stages < 1:
        raise GraphError("butterfly needs at least 1 stage")
    width = 1 << stages
    n = (stages + 1) * width
    edges = []
    for level in range(stages):
        for row in range(width):
            u = level * width + row
            edges.append((u, (level + 1) * width + row))
            edges.append((u, (level + 1) * width + (row ^ (1 << level))))
    return SystemGraph.from_edges(n, edges, name=f"butterfly-{stages}")


def mesh3d(nx_: int, ny: int, nz: int) -> SystemGraph:
    """A 3-D mesh; node ``(x, y, z) -> (x * ny + y) * nz + z``."""
    if min(nx_, ny, nz) < 1:
        raise GraphError("mesh3d dimensions must be >= 1")

    def node(x: int, y: int, z: int) -> int:
        return (x * ny + y) * nz + z

    edges = []
    for x in range(nx_):
        for y in range(ny):
            for z in range(nz):
                if x + 1 < nx_:
                    edges.append((node(x, y, z), node(x + 1, y, z)))
                if y + 1 < ny:
                    edges.append((node(x, y, z), node(x, y + 1, z)))
                if z + 1 < nz:
                    edges.append((node(x, y, z), node(x, y, z + 1)))
    return SystemGraph.from_edges(
        nx_ * ny * nz, edges, name=f"mesh3d-{nx_}x{ny}x{nz}"
    )


def torus3d(nx_: int, ny: int, nz: int) -> SystemGraph:
    """A 3-D torus (mesh3d with wraparound in every dimension >= 3).

    Dimensions of size 2 skip the wraparound link (it would coincide with
    the mesh link), matching the 2-D torus convention.
    """
    if min(nx_, ny, nz) < 2:
        raise GraphError("torus3d dimensions must be >= 2")

    def node(x: int, y: int, z: int) -> int:
        return (x * ny + y) * nz + z

    edges = set()
    for x in range(nx_):
        for y in range(ny):
            for z in range(nz):
                u = node(x, y, z)
                for v in (
                    node((x + 1) % nx_, y, z),
                    node(x, (y + 1) % ny, z),
                    node(x, y, (z + 1) % nz),
                ):
                    if u != v:
                        edges.add((min(u, v), max(u, v)))
    return SystemGraph.from_edges(
        nx_ * ny * nz, sorted(edges), name=f"torus3d-{nx_}x{ny}x{nz}"
    )


def complete_bipartite(a: int, b: int) -> SystemGraph:
    """K(a, b): every left node links to every right node."""
    if a < 1 or b < 1:
        raise GraphError("both sides of a bipartite graph need >= 1 node")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return SystemGraph.from_edges(a + b, edges, name=f"kbipartite-{a}x{b}")


def kautz(degree: int, nodes_log: int) -> SystemGraph:
    """Undirected Kautz graph K(d, n): words of length n+1 over d+1 symbols
    with no two consecutive symbols equal; edges follow shifts.

    The Kautz family achieves (near-)optimal diameter for its degree —
    the classic rival of de Bruijn networks.
    """
    d = degree
    if d < 2 or nodes_log < 1:
        raise GraphError("kautz needs degree >= 2 and length >= 1")
    words: list[tuple[int, ...]] = []

    def build(prefix: tuple[int, ...]) -> None:
        if len(prefix) == nodes_log + 1:
            words.append(prefix)
            return
        for s in range(d + 1):
            if not prefix or prefix[-1] != s:
                build(prefix + (s,))

    build(())
    index = {w: i for i, w in enumerate(words)}
    edges = set()
    for w in words:
        for s in range(d + 1):
            if s != w[-1]:
                v = index[w[1:] + (s,)]
                u = index[w]
                if u != v:
                    edges.add((min(u, v), max(u, v)))
    return SystemGraph.from_edges(
        len(words), sorted(edges), name=f"kautz-{d}-{nodes_log}"
    )


def chordal_ring(n: int, chord: int) -> SystemGraph:
    """A ring of ``n`` nodes with extra chords ``i -> (i + chord) mod n``.

    The classic way to shrink a ring's diameter while keeping degree <= 4.
    """
    if n < 4:
        raise GraphError("chordal ring needs at least 4 nodes")
    if not 2 <= chord <= n // 2:
        raise GraphError(f"chord must be in [2, {n // 2}], got {chord}")
    edges = set()
    for i in range(n):
        edges.add((min(i, (i + 1) % n), max(i, (i + 1) % n)))
        j = (i + chord) % n
        if i != j:
            edges.add((min(i, j), max(i, j)))
    return SystemGraph.from_edges(n, sorted(edges), name=f"chordal-{n}-{chord}")


def petersen() -> SystemGraph:
    """The Petersen graph: 10 nodes, 3-regular, diameter 2, girth 5.

    The extremal small topology — maximal node count for degree 3 and
    diameter 2 (a Moore graph).
    """
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return SystemGraph.from_edges(10, outer + spokes + inner, name="petersen")


def random_regular(
    n: int, degree: int, rng: int | np.random.Generator | None = None,
    max_attempts: int = 200,
) -> SystemGraph:
    """A random connected ``degree``-regular graph (pairing model).

    Retries the stub-matching until it produces a simple, connected
    graph; raises :class:`GraphError` when ``n * degree`` is odd or the
    attempts run out (tiny/over-constrained inputs).
    """
    if degree < 2 or n <= degree:
        raise GraphError("need 2 <= degree < n")
    if (n * degree) % 2:
        raise GraphError("n * degree must be even")
    gen = as_rng(rng)
    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(n), degree)
        gen.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = set()
        ok = True
        for u, v in pairs.tolist():
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if not ok:
            continue
        try:
            return SystemGraph.from_edges(
                n, sorted(edges), name=f"regular-{n}-{degree}"
            )
        except GraphError:
            continue  # disconnected; retry
    raise GraphError(
        f"could not build a connected {degree}-regular graph on {n} nodes"
    )


def random_connected(
    n: int,
    extra_edge_prob: float = 0.15,
    rng: int | np.random.Generator | None = None,
) -> SystemGraph:
    """A random connected topology (the paper's third family, Sec. 5.2).

    Construction: a uniformly random spanning tree (random-walk / Wilson
    style via random Prüfer-like attachment) guarantees connectivity, then
    each remaining node pair is added independently with probability
    ``extra_edge_prob``.  With ``extra_edge_prob = 0`` this yields random
    trees; with 1.0, the complete graph.
    """
    if n < 2:
        raise GraphError("random topology needs at least 2 nodes")
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise GraphError("extra_edge_prob must be in [0, 1]")
    gen = as_rng(rng)
    order = gen.permutation(n)
    edges = set()
    for i in range(1, n):
        u = int(order[i])
        v = int(order[gen.integers(0, i)])
        edges.add((min(u, v), max(u, v)))
    mask = gen.random((n, n)) < extra_edge_prob
    for u in range(n):
        for v in range(u + 1, n):
            if mask[u, v]:
                edges.add((u, v))
    return SystemGraph.from_edges(n, sorted(edges), name=f"random-{n}")


_FAMILIES = {
    "hypercube": lambda size, rng: hypercube(int(size).bit_length() - 1),
    "mesh": lambda size, rng: _squarest_mesh(size),
    "torus": lambda size, rng: _squarest_torus(size),
    "ring": lambda size, rng: ring(size),
    "chain": lambda size, rng: chain(size),
    "star": lambda size, rng: star(size),
    "complete": lambda size, rng: complete(size),
    "random": lambda size, rng: random_connected(size, rng=rng),
}


def by_name(
    family: str, size: int, rng: int | np.random.Generator | None = None
) -> SystemGraph:
    """Dispatch by family name; ``size`` is the node count.

    For ``hypercube`` the size must be a power of two; for ``mesh``/``torus``
    the squarest ``rows x cols`` factorization of ``size`` is used.
    """
    try:
        builder = _FAMILIES[family]
    except KeyError:
        raise GraphError(
            f"unknown topology family {family!r}; choose from {sorted(_FAMILIES)}"
        ) from None
    if family == "hypercube" and (size & (size - 1) or size < 1):
        raise GraphError(f"hypercube size must be a power of two, got {size}")
    return builder(size, rng)


def _squarest_mesh(size: int) -> SystemGraph:
    rows, cols = _squarest_factors(size)
    return mesh2d(rows, cols)


def _squarest_torus(size: int) -> SystemGraph:
    rows, cols = _squarest_factors(size)
    if rows < 2:
        raise GraphError(f"cannot build a torus with {size} nodes")
    return torus2d(rows, cols)


def _squarest_factors(size: int) -> tuple[int, int]:
    """Factor ``size = rows * cols`` with the smallest aspect ratio."""
    if size < 1:
        raise GraphError("size must be >= 1")
    best = (1, size)
    for r in range(1, int(size**0.5) + 1):
        if size % r == 0:
            best = (r, size // r)
    return best
