"""Graph-embedding quality measures: dilation, congestion, expansion.

The graph-embedding literature (from which Bokhari's cardinality comes)
judges a placement of a *guest* graph (here: the abstract graph) into a
*host* graph (the system graph) by:

* **dilation** of an edge — hops its endpoints are apart on the host;
  max/average dilation summarize the whole embedding.  Cardinality is
  exactly the number of dilation-1 edges.
* **congestion** of a host link — how many guest edges route through it
  (weighted by communication when requested); the bottleneck link bounds
  achievable bandwidth.
* **expansion** — host size / guest size (always 1 here since the paper
  forces ``na == ns``, but kept for generality).

These are diagnostics: the paper's argument is precisely that such
indirect measures do not determine total time — experiments E4/E5 prove
it — but they explain *why* a mapping behaves as it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .base import SystemGraph

if TYPE_CHECKING:  # imported lazily to avoid a core <-> topology cycle
    from ..core.abstract import AbstractGraph
    from ..core.assignment import Assignment

__all__ = ["EmbeddingReport", "analyze_embedding", "edge_dilations", "link_congestion"]


@dataclass(frozen=True)
class EmbeddingReport:
    """Embedding quality of one assignment.

    ``congestion`` maps each *undirected* host link to the number of
    guest edges whose (deterministic shortest-path) route crosses it;
    ``weighted_congestion`` weighs each crossing by the guest edge's
    communication weight.
    """

    max_dilation: int
    avg_dilation: float
    dilation_one_edges: int        # == Bokhari's cardinality
    total_guest_edges: int
    max_congestion: int
    max_weighted_congestion: int
    expansion: float

    def __str__(self) -> str:
        return (
            f"dilation max {self.max_dilation} / avg {self.avg_dilation:.2f}, "
            f"{self.dilation_one_edges}/{self.total_guest_edges} edges on "
            f"single links, congestion max {self.max_congestion} "
            f"(weighted {self.max_weighted_congestion}), "
            f"expansion {self.expansion:.2f}"
        )


def edge_dilations(
    abstract: AbstractGraph, system: SystemGraph, assignment: Assignment
) -> dict[tuple[int, int], int]:
    """Hop distance per abstract edge ``(a, b)`` with ``a < b``."""
    hosts = assignment.placement
    out: dict[tuple[int, int], int] = {}
    srcs, dsts = np.nonzero(np.triu(abstract.abs_edge, 1))
    for a, b in zip(srcs.tolist(), dsts.tolist()):
        out[(a, b)] = int(system.shortest[hosts[a], hosts[b]])
    return out


def link_congestion(
    abstract: AbstractGraph,
    system: SystemGraph,
    assignment: Assignment,
    weighted: bool = False,
) -> dict[tuple[int, int], int]:
    """Guest-edge crossings per undirected host link.

    Routes follow :meth:`SystemGraph.shortest_path`, the same
    deterministic routes the simulator uses, so congestion here predicts
    the simulator's contention hotspots.
    """
    hosts = assignment.placement
    out: dict[tuple[int, int], int] = {}
    srcs, dsts = np.nonzero(np.triu(abstract.abs_edge, 1))
    for a, b in zip(srcs.tolist(), dsts.tolist()):
        path = system.shortest_path(int(hosts[a]), int(hosts[b]))
        load = int(abstract.weights[a, b]) if weighted else 1
        for u, v in zip(path, path[1:]):
            key = (min(u, v), max(u, v))
            out[key] = out.get(key, 0) + load
    return out


def analyze_embedding(
    abstract: AbstractGraph, system: SystemGraph, assignment: Assignment
) -> EmbeddingReport:
    """Full embedding-quality report for one assignment."""
    dilations = edge_dilations(abstract, system, assignment)
    values = list(dilations.values())
    plain = link_congestion(abstract, system, assignment, weighted=False)
    weighted = link_congestion(abstract, system, assignment, weighted=True)
    return EmbeddingReport(
        max_dilation=max(values) if values else 0,
        avg_dilation=float(np.mean(values)) if values else 0.0,
        dilation_one_edges=sum(1 for d in values if d == 1),
        total_guest_edges=len(values),
        max_congestion=max(plain.values()) if plain else 0,
        max_weighted_congestion=max(weighted.values()) if weighted else 0,
        expansion=system.num_nodes / abstract.num_nodes,
    )
