"""The system graph: processor interconnection topology.

Paper Sec. 2.1 (Fig. 5-a) and Sec. 3.4: an undirected, connected graph of
homogeneous processing elements, represented by

* ``sys_edge[ns][ns]`` — 0/1 adjacency matrix (Fig. 21-a),
* ``shortest[ns][ns]`` — all-pairs shortest-path hop counts (Fig. 21-b),
* ``deg[ns]`` — node degrees (Fig. 21-c).

The *closure* (Fig. 5-b) is the complete graph on the same nodes; it never
needs materializing (paper Sec. 3.5) — every off-diagonal distance is 1 —
but :meth:`SystemGraph.closure` builds it for callers that want to run the
generic evaluator on it.

Link weights default to unit (the 1991 model measures distance in hops).
Heterogeneous integer link costs are supported as an extension: pass
``link_weights`` and ``shortest`` becomes the weighted distance matrix
(Dijkstra), ``shortest_path`` follows weighted-optimal routes, and the
evaluator/simulator inherit the costs unchanged because they only consume
``shortest`` and the routes.  Theorem 3's lower bound stays valid as long
as every link weight is >= 1 (the closure's unit links remain a lower
envelope), which the constructor enforces.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..utils import GraphError

__all__ = ["SystemGraph"]


class SystemGraph:
    """An undirected, connected processor topology.

    Parameters
    ----------
    adjacency:
        Square 0/1 (or boolean) matrix; symmetrized automatically, so
        callers may fill only one triangle.  Self-loops are rejected.
    name:
        Label used in reports ("hypercube-16", "mesh-4x5", ...).
    link_weights:
        Optional square integer matrix of per-link costs (>= 1 on every
        link; entries off links are ignored).  Omitted = unit links (the
        paper's model).

    Raises
    ------
    GraphError
        If the matrix is not square, has self-loops, or the graph is
        disconnected (a disconnected machine cannot host communicating
        clusters), or a link weight is < 1.
    """

    def __init__(
        self,
        adjacency: object,
        name: str = "system",
        link_weights: object | None = None,
    ) -> None:
        mat = np.asarray(adjacency)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise GraphError(f"adjacency must be square, got shape {mat.shape}")
        adj = ((mat != 0) | (mat.T != 0)).astype(np.int64)
        if np.diagonal(adj).any():
            raise GraphError("system graph must not contain self-loops")
        if adj.shape[0] < 1:
            raise GraphError("system graph needs at least one node")
        self._adj = adj
        self.name = name

        if link_weights is None:
            self._link_w = adj.copy()
            self._weighted = False
        else:
            w = np.asarray(link_weights, dtype=np.int64)
            if w.shape != adj.shape:
                raise GraphError(
                    f"link_weights shape {w.shape} != adjacency {adj.shape}"
                )
            w = np.maximum(w, w.T)  # symmetrize like the adjacency
            if ((w < 1) & (adj > 0)).any():
                raise GraphError("every link weight must be >= 1")
            self._link_w = np.where(adj > 0, w, 0)
            self._weighted = bool((self._link_w[adj > 0] > 1).any())

        self._neighbors: list[np.ndarray] = [
            np.flatnonzero(adj[i]) for i in range(adj.shape[0])
        ]
        if self._weighted:
            self._shortest = _dijkstra_all_pairs(self._link_w, self._neighbors)
        else:
            self._shortest = _bfs_all_pairs(adj)
        if (self._shortest < 0).any():
            raise GraphError("system graph must be connected")
        self._deg = adj.sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable[tuple[int, int]], name: str = "system"
    ) -> "SystemGraph":
        """Build from an undirected edge list over nodes ``0..num_nodes-1``."""
        adj = np.zeros((num_nodes, num_nodes), dtype=np.int64)
        for u, v in edges:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise GraphError(f"edge ({u}, {v}) references a missing node")
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) not allowed")
            adj[u, v] = adj[v, u] = 1
        return cls(adj, name=name)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of processors, the paper's ``ns``."""
        return self._adj.shape[0]

    @property
    def sys_edge(self) -> np.ndarray:
        """0/1 adjacency matrix (read-only view), Fig. 21-a."""
        view = self._adj.view()
        view.flags.writeable = False
        return view

    @property
    def shortest(self) -> np.ndarray:
        """All-pairs shortest hop counts (read-only view), Fig. 21-b."""
        view = self._shortest.view()
        view.flags.writeable = False
        return view

    @property
    def deg(self) -> np.ndarray:
        """Node degree vector (read-only view), Fig. 21-c."""
        view = self._deg.view()
        view.flags.writeable = False
        return view

    @property
    def link_weights(self) -> np.ndarray:
        """Per-link cost matrix (read-only view); equals ``sys_edge`` for
        unit-weight machines."""
        view = self._link_w.view()
        view.flags.writeable = False
        return view

    @property
    def is_weighted(self) -> bool:
        """True when any link costs more than one unit."""
        return self._weighted

    def link_weight(self, a: int, b: int) -> int:
        """Cost of the direct link ``a - b`` (0 if not adjacent)."""
        return int(self._link_w[a, b])

    def neighbors(self, node: int) -> np.ndarray:
        return self._neighbors[node]

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between processors ``a`` and ``b``
        (hop count on unit-weight machines, weighted cost otherwise)."""
        return int(self._shortest[a, b])

    def has_edge(self, a: int, b: int) -> bool:
        return bool(self._adj[a, b])

    def num_edges(self) -> int:
        """Number of undirected links."""
        return int(self._adj.sum() // 2)

    def diameter(self) -> int:
        return int(self._shortest.max())

    def average_distance(self) -> float:
        """Mean hop count over distinct node pairs (0 for a 1-node machine)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return float(self._shortest.sum()) / (n * (n - 1))

    def closure(self) -> "SystemGraph":
        """The fully connected closure (Fig. 5-b)."""
        n = self.num_nodes
        adj = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
        return SystemGraph(adj, name=f"{self.name}-closure")

    def is_complete(self) -> bool:
        n = self.num_nodes
        return self.num_edges() == n * (n - 1) // 2

    def shortest_path(self, src: int, dst: int) -> list[int]:
        """One concrete shortest path (node list incl. endpoints).

        BFS on unit-weight machines, Dijkstra backtracking otherwise.
        Used by the discrete-event simulator for hop-by-hop routing; the
        analytic model only needs the *distance*.
        """
        if src == dst:
            return [src]
        if self._weighted:
            return self._weighted_path(src, dst)
        prev = np.full(self.num_nodes, -1, dtype=np.int64)
        prev[src] = src
        frontier = [src]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._neighbors[u].tolist():
                    if prev[v] == -1:
                        prev[v] = u
                        if v == dst:
                            path = [dst]
                            while path[-1] != src:
                                path.append(int(prev[path[-1]]))
                            return path[::-1]
                        nxt.append(v)
            frontier = nxt
        raise GraphError(f"no path from {src} to {dst}")  # pragma: no cover

    def _weighted_path(self, src: int, dst: int) -> list[int]:
        """Backtrack one weighted-shortest route using the distance matrix.

        From ``dst`` walk to any neighbor ``u`` with
        ``dist(src, u) + w(u, dst) == dist(src, dst)`` (ties: lowest id,
        keeping routes deterministic).
        """
        dist = self._shortest[src]
        path = [dst]
        while path[-1] != src:
            v = path[-1]
            for u in self._neighbors[v].tolist():
                if dist[u] + self._link_w[u, v] == dist[v]:
                    path.append(u)
                    break
            else:  # pragma: no cover - defensive
                raise GraphError(f"route backtrack failed {src}->{dst}")
        return path[::-1]

    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of undirected links ``(u, v)`` with ``u < v``."""
        srcs, dsts = np.nonzero(np.triu(self._adj, 1))
        return sorted(zip(srcs.tolist(), dsts.tolist()))

    def to_networkx(self):
        """Export as :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(self.edges())
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemGraph):
            return NotImplemented
        return np.array_equal(self._adj, other._adj)

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return (
            f"SystemGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_edges()}, diameter={self.diameter()})"
        )


def _dijkstra_all_pairs(
    link_w: np.ndarray, neighbors: list[np.ndarray]
) -> np.ndarray:
    """All-pairs weighted shortest distances; -1 marks unreachable."""
    import heapq

    n = link_w.shape[0]
    dist = np.full((n, n), -1, dtype=np.int64)
    for s in range(n):
        row = dist[s]
        row[s] = 0
        heap = [(0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > row[u]:
                continue
            for v in neighbors[u].tolist():
                nd = d + int(link_w[u, v])
                if row[v] == -1 or nd < row[v]:
                    row[v] = nd
                    heapq.heappush(heap, (nd, v))
    return dist


def _bfs_all_pairs(adj: np.ndarray) -> np.ndarray:
    """All-pairs shortest hop counts by repeated BFS; -1 marks unreachable.

    For the unit-weight, small (``ns <= 40`` in the paper, a few hundred at
    most here) system graphs this beats setting up scipy's sparse machinery
    and keeps the dependency surface minimal.
    """
    n = adj.shape[0]
    neighbors = [np.flatnonzero(adj[i]) for i in range(n)]
    dist = np.full((n, n), -1, dtype=np.int64)
    for s in range(n):
        row = dist[s]
        row[s] = 0
        frontier = [s]
        d = 0
        while frontier:
            d += 1
            nxt: list[int] = []
            for u in frontier:
                for v in neighbors[u].tolist():
                    if row[v] == -1:
                        row[v] = d
                        nxt.append(v)
            frontier = nxt
    return dist
