"""Tabu-search mapper: best-improvement swaps with a recency memory.

The third classic metaheuristic of the mapping literature.  Each
iteration examines every cluster-pair swap of the current assignment,
takes the best non-tabu move (aspiration: a tabu move is allowed if it
beats the best-so-far), and marks the swapped pair tabu for ``tenure``
iterations.  The paper's termination condition applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.evaluate import total_time
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["TabuResult", "tabu_mapping"]


@dataclass(frozen=True)
class TabuResult:
    """Outcome of a tabu-search run."""

    assignment: Assignment
    total_time: int
    iterations: int
    evaluations: int
    reached_lower_bound: bool


def tabu_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    iterations: int = 40,
    tenure: int | None = None,
    initial: Assignment | None = None,
    lower_bound: int | None = None,
) -> TabuResult:
    """Best-improvement tabu search over pairwise swaps.

    Parameters
    ----------
    tenure:
        Tabu tenure in iterations; defaults to ``ns // 2 + 1``.
    """
    gen = as_rng(rng)
    n = system.num_nodes
    current = initial if initial is not None else Assignment.random(n, rng=gen)
    current_time = total_time(clustered, system, current)
    best, best_time = current, current_time
    evaluations = 1
    if tenure is None:
        tenure = n // 2 + 1

    tabu_until = np.zeros((n, n), dtype=np.int64)
    it = 0
    while it < iterations and n >= 2:
        it += 1
        if lower_bound is not None and best_time <= lower_bound:
            break
        move_best: tuple[int, int] | None = None
        move_time = None
        move_assignment = None
        for a in range(n - 1):
            for b in range(a + 1, n):
                candidate = current.swapped(a, b)
                t = total_time(clustered, system, candidate)
                evaluations += 1
                tabu = tabu_until[a, b] >= it
                aspirated = t < best_time
                if tabu and not aspirated:
                    continue
                if move_time is None or t < move_time:
                    move_best, move_time, move_assignment = (a, b), t, candidate
        if move_assignment is None:  # everything tabu and nothing aspirates
            tabu_until[:] = 0
            continue
        a, b = move_best  # type: ignore[misc]
        tabu_until[a, b] = tabu_until[b, a] = it + tenure
        current, current_time = move_assignment, int(move_time)  # type: ignore[arg-type]
        if current_time < best_time:
            best, best_time = current, current_time

    return TabuResult(
        assignment=best,
        total_time=best_time,
        iterations=it,
        evaluations=evaluations,
        reached_lower_bound=lower_bound is not None and best_time <= lower_bound,
    )
