"""Tabu-search mapper: best-improvement swaps with a recency memory.

The third classic metaheuristic of the mapping literature.  Each
iteration examines every cluster-pair swap of the current assignment,
takes the best non-tabu move (aspiration: a tabu move is allowed if it
beats the best-so-far), and marks the swapped pair tabu for ``tenure``
iterations.  The paper's termination condition applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.anytime import AnytimeReporter
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.incremental import DeltaEvaluator
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["TabuResult", "tabu_mapping"]


@dataclass(frozen=True)
class TabuResult:
    """Outcome of a tabu-search run."""

    assignment: Assignment
    total_time: int
    iterations: int
    evaluations: int
    reached_lower_bound: bool


def tabu_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    iterations: int = 40,
    tenure: int | None = None,
    initial: Assignment | None = None,
    lower_bound: int | None = None,
    reporter: AnytimeReporter | None = None,
) -> TabuResult:
    """Best-improvement tabu search over pairwise swaps.

    Parameters
    ----------
    tenure:
        Tabu tenure in iterations; defaults to ``ns // 2 + 1``.
    reporter:
        Optional anytime hook: one checkpoint per iteration, stoppable
        between iterations with the best-so-far returned.
    """
    gen = as_rng(rng)
    n = system.num_nodes
    current = initial if initial is not None else Assignment.random(n, rng=gen)
    # Best-improvement scans probe every pair swap; the delta evaluator
    # answers each probe from the repaired region instead of a full
    # re-evaluation, and only the chosen move is committed.
    evaluator = DeltaEvaluator(clustered, system, current)
    current_time = evaluator.total_time
    best, best_time = current, current_time
    evaluations = 1
    if tenure is None:
        tenure = n // 2 + 1

    tabu_until = np.zeros((n, n), dtype=np.int64)
    it = 0
    while it < iterations and n >= 2:
        it += 1
        if lower_bound is not None and best_time <= lower_bound:
            break
        move_best: tuple[int, int] | None = None
        move_time = None
        for a in range(n - 1):
            for b in range(a + 1, n):
                t = evaluator.probe_swap(a, b)
                evaluations += 1
                tabu = tabu_until[a, b] >= it
                aspirated = t < best_time
                if tabu and not aspirated:
                    continue
                if move_time is None or t < move_time:
                    move_best, move_time = (a, b), t
        if move_best is None:  # everything tabu and nothing aspirates
            tabu_until[:] = 0
            continue
        a, b = move_best
        tabu_until[a, b] = tabu_until[b, a] = it + tenure
        current_time = evaluator.swap(a, b)
        if current_time < best_time:
            best, best_time = evaluator.assignment, current_time
        if reporter is not None:
            reporter.report(it, best_time, best)
            if reporter.should_stop():
                break

    return TabuResult(
        assignment=best,
        total_time=best_time,
        iterations=it,
        evaluations=evaluations,
        reached_lower_bound=lower_bound is not None and best_time <= lower_bound,
    )
