"""Random mapping — the paper's comparison baseline (Sec. 5).

The paper compares its strategy against *random mapping*, averaging
several random assignments of the same instance to tame variance
("we performed several random mappings of the same problem graph to the
same system graph and take the average of the total times").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.evaluate import total_time
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["RandomMappingStats", "random_mapping", "average_random_mapping"]


@dataclass(frozen=True)
class RandomMappingStats:
    """Statistics over repeated random mappings of one instance."""

    samples: int
    mean_total_time: float
    best_total_time: int
    worst_total_time: int
    best_assignment: Assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomMappingStats(samples={self.samples}, "
            f"mean={self.mean_total_time:.1f}, best={self.best_total_time}, "
            f"worst={self.worst_total_time})"
        )


def random_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
) -> tuple[Assignment, int]:
    """One uniformly random assignment and its total time."""
    assignment = Assignment.random(system.num_nodes, rng=rng)
    return assignment, total_time(clustered, system, assignment)


def average_random_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    samples: int = 20,
    rng: int | np.random.Generator | None = None,
) -> RandomMappingStats:
    """Average total time over ``samples`` random assignments (paper Sec. 5)."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    gen = as_rng(rng)
    times = np.empty(samples, dtype=np.int64)
    best: Assignment | None = None
    best_time = np.iinfo(np.int64).max
    for i in range(samples):
        assignment, t = random_mapping(clustered, system, rng=gen)
        times[i] = t
        if t < best_time:
            best, best_time = assignment, t
    assert best is not None
    return RandomMappingStats(
        samples=samples,
        mean_total_time=float(times.mean()),
        best_total_time=int(times.min()),
        worst_total_time=int(times.max()),
        best_assignment=best,
    )
