"""Baseline mappers: random, Bokhari, Lee & Aggarwal, annealing, genetic,
tabu, and the exhaustive test oracle."""

from .annealing import AnnealResult, anneal_mapping
from .bokhari import BokhariResult, bokhari_mapping, cardinality
from .exhaustive import (
    ExhaustiveResult,
    all_assignment_total_times,
    enumerate_assignments,
    exhaustive_optimum,
)
from .genetic import GeneticResult, genetic_mapping, order_crossover
from .lee_aggarwal import (
    LeeResult,
    communication_cost,
    lee_mapping,
    phases_by_level,
)
from .random_map import RandomMappingStats, average_random_mapping, random_mapping
from .tabu import TabuResult, tabu_mapping

__all__ = [
    "AnnealResult",
    "BokhariResult",
    "ExhaustiveResult",
    "GeneticResult",
    "LeeResult",
    "RandomMappingStats",
    "TabuResult",
    "all_assignment_total_times",
    "anneal_mapping",
    "average_random_mapping",
    "bokhari_mapping",
    "cardinality",
    "communication_cost",
    "enumerate_assignments",
    "exhaustive_optimum",
    "genetic_mapping",
    "lee_mapping",
    "order_crossover",
    "phases_by_level",
    "random_mapping",
    "tabu_mapping",
]
