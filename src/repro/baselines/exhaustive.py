"""Exhaustive (brute-force) search over assignments — the test oracle.

For small instances (``ns <= ~8``) all ``ns!`` assignments can be
enumerated.  The experiments use this to *prove* the Sec. 2.2
counterexample phenomena (the best cardinality-optimal assignment is
strictly slower than the global time-optimum) and the tests use it to
certify that the heuristic never beats the true optimum and that Theorem
3's termination only ever fires at the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.evaluate import total_time
from ..topology.base import SystemGraph
from ..utils import MappingError

__all__ = [
    "ExhaustiveResult",
    "exhaustive_optimum",
    "enumerate_assignments",
    "all_assignment_total_times",
]

_MAX_NODES = 9  # 9! = 362880 evaluations — the practical ceiling


@dataclass(frozen=True)
class ExhaustiveResult:
    """The certified optimum of one instance."""

    assignment: Assignment
    total_time: int
    evaluated: int
    optima_count: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExhaustiveResult(total_time={self.total_time}, "
            f"optima={self.optima_count}/{self.evaluated})"
        )


def enumerate_assignments(n: int):
    """Yield every :class:`Assignment` of ``n`` clusters (``n!`` of them)."""
    for perm in permutations(range(n)):
        yield Assignment(np.asarray(perm, dtype=np.int64))


def all_assignment_total_times(
    clustered: ClusteredGraph,
    system: SystemGraph,
    max_nodes: int = _MAX_NODES,
) -> tuple[np.ndarray, np.ndarray]:
    """Total time of *every* assignment, evaluated batch-vectorized.

    Returns ``(perms, times)`` where ``perms[k]`` is the ``assi`` vector of
    the k-th assignment (``perms[k][system] = cluster``) and ``times[k]``
    its makespan.  The schedule recurrence runs once per task with all
    ``n!`` assignments as a vector lane, which is two to three orders of
    magnitude faster than evaluating assignments one by one — it is what
    makes the exhaustive counterexample proofs (experiments E4/E5) cheap
    enough for the test suite.
    """
    n = system.num_nodes
    if clustered.num_clusters != n:
        raise MappingError("na must equal ns for exhaustive evaluation")
    if n > max_nodes:
        raise MappingError(
            f"exhaustive search over {n}! assignments refused "
            f"(limit {max_nodes}); use the heuristic mappers instead"
        )
    perms = np.asarray(list(permutations(range(n))), dtype=np.int64)  # (P, n)
    # placement[k][cluster] = system node, the inverse permutation of assi.
    placement = np.empty_like(perms)
    rows = np.arange(perms.shape[0])[:, None]
    placement[rows, perms] = np.arange(n)[None, :]

    graph = clustered.graph
    labels = clustered.clustering.labels
    clus = clustered.clus_edge
    sizes = graph.task_sizes
    host = placement[:, labels]  # (P, np) system node per task per assignment

    end = np.zeros((perms.shape[0], graph.num_tasks), dtype=np.int64)
    shortest = system.shortest
    for t in graph.topological_order.tolist():
        preds = graph.predecessors(t)
        if preds.size == 0:
            end[:, t] = sizes[t]
            continue
        # comm[k, j] = clus[j, t] * dist(host[k, j], host[k, t])
        dist = shortest[host[:, preds], host[:, t][:, None]]
        start = (end[:, preds] + clus[preds, t][None, :] * dist).max(axis=1)
        end[:, t] = start + sizes[t]
    return perms, end.max(axis=1)


def exhaustive_optimum(
    clustered: ClusteredGraph,
    system: SystemGraph,
    max_nodes: int = _MAX_NODES,
) -> ExhaustiveResult:
    """Certified global optimum by full (vectorized) enumeration.

    Raises :class:`MappingError` when the instance exceeds ``max_nodes``
    (the factorial wall), to protect callers from accidental explosions.
    """
    perms, times = all_assignment_total_times(clustered, system, max_nodes)
    best_time = int(times.min())
    best_index = int(times.argmin())
    return ExhaustiveResult(
        assignment=Assignment(perms[best_index]),
        total_time=best_time,
        evaluated=perms.shape[0],
        optima_count=int((times == best_time).sum()),
    )
