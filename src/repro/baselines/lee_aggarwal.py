"""Lee & Aggarwal's communication-cost mapping [2] (IEEE ToC 1987).

Lee & Aggarwal group the problem edges into *phases* — sets of
communications assumed to start simultaneously — and score an assignment
by the sum over phases of the *maximum* communication cost in each phase,
where one edge's cost is its weight times the hop distance between the
host processors:

    ``cost(A) = sum_p max_{(i,j) in phase p} w_ij * dist(host(i), host(j))``

The paper's Sec. 2.2 (Figs. 13-17) shows this too is indirect: the
cost-optimal assignment A3 (11 units) has total time 23 while A4 (15
units) finishes in 21.

Phase construction: Lee & Aggarwal derive phases from the program's
communication structure.  For DAG workloads the natural reading — and
what reproduces the paper's Fig. 15 grouping for its example — is the
*topological level of the source task* (all edges leaving level-k tasks
form phase k); :func:`phases_by_level` implements that, and callers may
pass explicit phases instead (the counterexample uses the paper's own
grouping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = [
    "LeeResult",
    "phases_by_level",
    "communication_cost",
    "lee_mapping",
]


@dataclass(frozen=True)
class LeeResult:
    """Outcome of the communication-cost search."""

    assignment: Assignment
    cost: int
    evaluations: int


def phases_by_level(graph: TaskGraph) -> list[list[tuple[int, int]]]:
    """Group edges by the topological level of their source task.

    Level of a task = length (in tasks) of the longest chain of
    predecessors; all edges out of level-k tasks belong to phase k.
    Empty phases are dropped.
    """
    n = graph.num_tasks
    level = np.zeros(n, dtype=np.int64)
    for t in graph.topological_order.tolist():
        preds = graph.predecessors(t)
        if preds.size:
            level[t] = int(level[preds].max()) + 1
    buckets: dict[int, list[tuple[int, int]]] = {}
    for e in graph.edges():
        buckets.setdefault(int(level[e.src]), []).append((e.src, e.dst))
    return [buckets[k] for k in sorted(buckets)]


def communication_cost(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment,
    phases: list[list[tuple[int, int]]] | None = None,
) -> int:
    """Lee & Aggarwal's objective for one assignment.

    Edges whose clustered weight is zero (intra-cluster) contribute
    nothing regardless of phase.
    """
    if phases is None:
        phases = phases_by_level(clustered.graph)
    labels = clustered.clustering.labels
    hosts = assignment.placement
    clus = clustered.clus_edge
    total = 0
    for phase in phases:
        worst = 0
        for i, j in phase:
            w = int(clus[i, j])
            if w == 0:
                continue
            d = int(system.shortest[hosts[labels[i]], hosts[labels[j]]])
            worst = max(worst, w * d)
        total += worst
    return total


def lee_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    phases: list[list[tuple[int, int]]] | None = None,
    restarts: int = 4,
    max_passes: int = 20,
) -> LeeResult:
    """Minimize the phase-decomposed communication cost.

    Same search skeleton as the Bokhari baseline (pairwise-exchange hill
    climbing with restarts — Lee & Aggarwal's own refinement is pairwise
    exchange too, which the paper cites when rejecting it for refinement).
    """
    gen = as_rng(rng)
    if phases is None:
        phases = phases_by_level(clustered.graph)
    n = system.num_nodes
    best: Assignment | None = None
    best_cost = np.iinfo(np.int64).max
    evaluations = 0

    for _ in range(max(1, restarts)):
        current = Assignment.random(n, rng=gen)
        current_cost = communication_cost(clustered, system, current, phases)
        evaluations += 1
        for _ in range(max_passes):
            improved = False
            for a in range(n - 1):
                for b in range(a + 1, n):
                    candidate = current.swapped(a, b)
                    cost = communication_cost(clustered, system, candidate, phases)
                    evaluations += 1
                    if cost < current_cost:
                        current, current_cost = candidate, cost
                        improved = True
            if not improved:
                break
        if current_cost < best_cost:
            best, best_cost = current, current_cost
    assert best is not None
    return LeeResult(assignment=best, cost=int(best_cost), evaluations=evaluations)
