"""Bokhari's cardinality-driven mapping [1] (S. H. Bokhari, 1981).

Bokhari evaluates an assignment by its *cardinality*: the number of
problem edges whose endpoints land on *adjacent* system nodes ("fall on
system edges").  His algorithm hill-climbs by pairwise exchanges and
escapes plateaus with probabilistic jumps (random restarts of the
assignment).

The paper's Sec. 2.2 shows cardinality is an *indirect* measure: a
cardinality-optimal assignment can lose on total time.  We implement the
objective and the search so experiment E4 can demonstrate that, and so
the baselines comparison (A5) can score it on total time.

Notes on fidelity: Bokhari's original works on undirected, unweighted
problem graphs with ``np <= ns``; our instances satisfy ``np == ns``
after clustering (each abstract node is one "problem node" from his point
of view).  Cardinality here counts *abstract* edges on system edges,
weighted optionally — with ``weighted=False`` (default) it is exactly his
count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.abstract import AbstractGraph
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.incremental import CardinalityDelta
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["BokhariResult", "cardinality", "bokhari_mapping"]


@dataclass(frozen=True)
class BokhariResult:
    """Outcome of the cardinality search."""

    assignment: Assignment
    cardinality: int
    evaluations: int


def cardinality(
    abstract: AbstractGraph,
    system: SystemGraph,
    assignment: Assignment,
    weighted: bool = False,
) -> int:
    """Number (or total weight) of abstract edges mapped onto system edges."""
    hosts = assignment.placement
    adj = system.sys_edge[np.ix_(hosts, hosts)]
    matrix = abstract.weights if weighted else abstract.abs_edge
    return int((np.triu(matrix, 1) * (adj > 0)).sum())


def bokhari_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    restarts: int = 4,
    max_passes: int = 20,
    weighted: bool = False,
) -> BokhariResult:
    """Pairwise-exchange hill climbing on cardinality with random restarts.

    Each pass tries every cluster pair exchange and keeps improvements
    (first-improvement order, as in the original's sequential scan);
    passes repeat until a full pass finds nothing, then the next restart
    begins from a fresh random assignment.  The best assignment over all
    restarts wins.
    """
    gen = as_rng(rng)
    abstract = AbstractGraph(clustered)
    n = system.num_nodes
    best: Assignment | None = None
    best_card = -1
    evaluations = 0

    for _ in range(max(1, restarts)):
        # Each candidate exchange is scored by its O(deg) cardinality
        # delta instead of the O(n^2) full recount.
        evaluator = CardinalityDelta(
            abstract, system, Assignment.random(n, rng=gen), weighted=weighted
        )
        current_card = evaluator.cardinality
        evaluations += 1
        for _ in range(max_passes):
            improved = False
            for a in range(n - 1):
                for b in range(a + 1, n):
                    card = current_card + evaluator.delta_swap(a, b)
                    evaluations += 1
                    if card > current_card:
                        current_card = evaluator.swap(a, b)
                        improved = True
            if not improved:
                break
        if current_card > best_card:
            best, best_card = evaluator.assignment, current_card
    assert best is not None
    return BokhariResult(assignment=best, cardinality=best_card, evaluations=evaluations)
