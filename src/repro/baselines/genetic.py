"""Genetic-algorithm mapper — the other classic metaheuristic baseline.

Alongside simulated annealing (ref [3]), genetic algorithms were the
standard general-purpose attack on the mapping problem in the early-90s
literature.  This implementation uses the canonical permutation-GA
design:

* individuals are assignments (permutations cluster -> processor);
* fitness is the paper's objective, total time (lower is better);
* selection is tournament (size 3);
* crossover is *order crossover* (OX), the standard permutation-safe
  operator: a slice of parent A is kept in place, the remaining slots
  are filled with parent B's genes in B's order;
* mutation swaps two random genes;
* elitism keeps the best individual each generation;
* the paper's termination condition applies: reaching a supplied lower
  bound stops the search with a provably optimal mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.anytime import AnytimeReporter
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.incremental import DeltaEvaluator
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["GeneticResult", "genetic_mapping", "order_crossover"]


@dataclass(frozen=True)
class GeneticResult:
    """Outcome of a GA run."""

    assignment: Assignment
    total_time: int
    generations: int
    evaluations: int
    reached_lower_bound: bool


def order_crossover(
    parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Order crossover (OX) of two permutations.

    A random slice of ``parent_a`` is inherited in place; the remaining
    positions are filled with the genes missing from the slice, in the
    order they appear in ``parent_b``.  Always yields a permutation.
    """
    n = parent_a.size
    if n < 2:
        return parent_a.copy()
    lo, hi = np.sort(rng.choice(n + 1, size=2, replace=False))
    child = np.full(n, -1, dtype=np.int64)
    child[lo:hi] = parent_a[lo:hi]
    kept = set(parent_a[lo:hi].tolist())
    fill = [g for g in parent_b.tolist() if g not in kept]
    slots = [i for i in range(n) if not (lo <= i < hi)]
    for slot, gene in zip(slots, fill):
        child[slot] = gene
    return child


def genetic_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    population: int = 30,
    generations: int = 40,
    crossover_rate: float = 0.9,
    mutation_rate: float = 0.2,
    tournament: int = 3,
    lower_bound: int | None = None,
    reporter: AnytimeReporter | None = None,
) -> GeneticResult:
    """Evolve assignments on the total-time objective.

    ``reporter`` (optional) gets one anytime checkpoint per generation
    and may stop the run between generations with the best-so-far.
    """
    if population < 2:
        raise ValueError("population must be >= 2")
    gen = as_rng(rng)
    n = system.num_nodes

    # Individuals change too much per generation for local repair, but the
    # delta evaluator's full-evaluation fast path still skips the O(V^2)
    # communication matrix on every fitness call.
    evaluator = DeltaEvaluator(clustered, system, Assignment.identity(n))
    pop = [gen.permutation(n) for _ in range(population)]
    fitness = np.array(
        [evaluator.evaluate(Assignment(p)) for p in pop], dtype=np.int64
    )
    evaluations = population
    best_idx = int(fitness.argmin())
    best, best_time = pop[best_idx].copy(), int(fitness[best_idx])

    def done() -> bool:
        return lower_bound is not None and best_time <= lower_bound

    g = 0
    while g < generations and not done() and n >= 2:
        g += 1
        next_pop = [best.copy()]  # elitism
        while len(next_pop) < population:
            contenders = gen.choice(population, size=tournament, replace=False)
            pa = pop[int(contenders[np.argmin(fitness[contenders])])]
            contenders = gen.choice(population, size=tournament, replace=False)
            pb = pop[int(contenders[np.argmin(fitness[contenders])])]
            child = (
                order_crossover(pa, pb, gen)
                if gen.random() < crossover_rate
                else pa.copy()
            )
            if gen.random() < mutation_rate:
                i, j = gen.choice(n, size=2, replace=False)
                child[i], child[j] = child[j], child[i]
            next_pop.append(child)
        pop = next_pop
        fitness = np.array(
            [evaluator.evaluate(Assignment(p)) for p in pop],
            dtype=np.int64,
        )
        evaluations += population
        idx = int(fitness.argmin())
        if fitness[idx] < best_time:
            best, best_time = pop[idx].copy(), int(fitness[idx])
        if reporter is not None:
            reporter.report(g, best_time, Assignment(best.copy()))
            if reporter.should_stop():
                break

    return GeneticResult(
        assignment=Assignment(best),
        total_time=best_time,
        generations=g,
        evaluations=evaluations,
        reached_lower_bound=lower_bound is not None and best_time <= lower_bound,
    )
