"""Simulated annealing and quenching on total time (refs [3], [14]).

The paper cites Kirkpatrick et al. [3] and its own group's comparison of
quenching vs. slow annealing for the mapping problem [14].  This module
provides both as strong general-purpose baselines for ablation A5:

* :func:`anneal_mapping` — classic simulated annealing over the space of
  assignments with pairwise-swap moves, geometric cooling, and Metropolis
  acceptance on the total-time objective.
* ``quench=True`` — zero-temperature variant (only improving moves are
  accepted), i.e. randomized hill climbing.

Both honour the paper's termination condition: hitting a supplied lower
bound stops the search immediately with a provably optimal mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.anytime import AnytimeReporter
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.incremental import DeltaEvaluator
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["AnnealResult", "anneal_mapping"]


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of an annealing run."""

    assignment: Assignment
    total_time: int
    evaluations: int
    reached_lower_bound: bool


def anneal_mapping(
    clustered: ClusteredGraph,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    initial: Assignment | None = None,
    lower_bound: int | None = None,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    moves_per_temperature: int | None = None,
    min_temperature: float = 0.1,
    quench: bool = False,
    reporter: AnytimeReporter | None = None,
) -> AnnealResult:
    """Anneal the assignment on the total-time objective.

    Parameters
    ----------
    initial:
        Starting assignment (random if omitted).
    lower_bound:
        Optional ideal-graph bound for early termination (Theorem 3).
    initial_temperature:
        Defaults to the initial total time / 10 — large enough to accept
        most early uphill moves on integer-time instances.
    cooling:
        Geometric cooling factor per temperature level.
    moves_per_temperature:
        Defaults to ``2 * ns`` swap proposals per level.
    quench:
        When True, temperature is ignored and only improvements are
        accepted (the "quenching" of ref [14]).
    reporter:
        Optional anytime hook: a checkpoint every eighth of a
        temperature level (reporting touches no randomness, so the
        proposal sequence is unchanged), and a graceful best-so-far
        return when it asks to stop.  The fine cadence keeps the stop
        reaction — and a racing controller's kill ordinals — cheap
        relative to a level.  A run that is never stopped is
        bit-identical to one without a reporter.
    """
    gen = as_rng(rng)
    n = system.num_nodes
    current = initial if initial is not None else Assignment.random(n, rng=gen)
    # The inner loop runs on the delta evaluator: probe the candidate swap
    # in O(affected region) and commit only on acceptance, instead of a
    # full O(V^2) re-evaluation per proposal.
    evaluator = DeltaEvaluator(clustered, system, current)
    current_time = evaluator.total_time
    best, best_time = current, current_time
    evaluations = 1

    if lower_bound is not None and best_time <= lower_bound:
        return AnnealResult(best, best_time, evaluations, True)
    if n < 2:
        return AnnealResult(best, best_time, evaluations, False)

    temp = (
        initial_temperature
        if initial_temperature is not None
        else max(1.0, current_time / 10.0)
    )
    moves = moves_per_temperature if moves_per_temperature is not None else 2 * n

    report_every = max(1, moves // 8)
    stopped = False
    while temp > min_temperature and not stopped:
        accepted_any = False
        for step in range(moves):
            a, b = gen.choice(n, size=2, replace=False)
            t = evaluator.probe_swap(int(a), int(b))
            evaluations += 1
            delta = t - current_time
            accept = delta <= 0 if quench else (
                delta <= 0 or gen.random() < math.exp(-delta / temp)
            )
            if accept:
                evaluator.swap(int(a), int(b))
                current_time = t
                accepted_any = True
                if current_time < best_time:
                    best, best_time = evaluator.assignment, current_time
                    if lower_bound is not None and best_time <= lower_bound:
                        return AnnealResult(best, best_time, evaluations, True)
            if reporter is not None and (step + 1) % report_every == 0:
                reporter.report(evaluations, best_time, best)
                if reporter.should_stop():
                    stopped = True
                    break
        temp *= cooling
        if quench and not accepted_any:
            break  # local optimum; cooling is irrelevant without temperature
    return AnnealResult(
        best,
        best_time,
        evaluations,
        lower_bound is not None and best_time <= lower_bound,
    )
