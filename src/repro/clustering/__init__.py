"""Clustering substrate: partitioning task graphs into ``na`` clusters.

Every clusterer here is also registered by name in the
:data:`repro.api.CLUSTERERS` registry (``random``, ``round_robin``,
``block``, ``band``, ``load_balance``, ``linear``, ``edge_zero``,
``dsc``), which is how scenario sweeps and the CLI select them.
"""

from .base import Clusterer, rebalance_empty_clusters, validate_request
from .dsc import DscClusterer
from .edge_zero import EdgeZeroClusterer
from .linear import LinearClusterer
from .load_balance import LoadBalanceClusterer
from .simple import (
    BandClusterer,
    BlockClusterer,
    RandomClusterer,
    RoundRobinClusterer,
)

__all__ = [
    "BandClusterer",
    "BlockClusterer",
    "Clusterer",
    "DscClusterer",
    "EdgeZeroClusterer",
    "LinearClusterer",
    "LoadBalanceClusterer",
    "RandomClusterer",
    "RoundRobinClusterer",
    "rebalance_empty_clusters",
    "validate_request",
]
