"""Clustering substrate: partitioning task graphs into ``na`` clusters."""

from .base import Clusterer, rebalance_empty_clusters, validate_request
from .dsc import DscClusterer
from .edge_zero import EdgeZeroClusterer
from .linear import LinearClusterer
from .load_balance import LoadBalanceClusterer
from .simple import (
    BandClusterer,
    BlockClusterer,
    RandomClusterer,
    RoundRobinClusterer,
)

__all__ = [
    "BandClusterer",
    "BlockClusterer",
    "Clusterer",
    "DscClusterer",
    "EdgeZeroClusterer",
    "LinearClusterer",
    "LoadBalanceClusterer",
    "RandomClusterer",
    "RoundRobinClusterer",
    "rebalance_empty_clusters",
    "validate_request",
]
