"""Simple clusterers: random (the paper's), round-robin, block, bands.

:class:`RandomClusterer` is what Sec. 5's experiments use ("a random
clustering program was developed"); it assigns tasks to clusters
uniformly at random, then repairs empties so every processor receives
work.  The others are cheap deterministic baselines.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import Clustering
from ..core.taskgraph import TaskGraph
from ..utils import as_rng
from .base import Clusterer, rebalance_empty_clusters, validate_request

__all__ = ["RandomClusterer", "RoundRobinClusterer", "BlockClusterer", "BandClusterer"]


class RandomClusterer(Clusterer):
    """Uniformly random cluster per task (the paper's experimental setup).

    Guaranteed non-empty: after the uniform draw, empty clusters steal
    the lightest task from the largest cluster.
    """

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        gen = as_rng(rng)
        labels = gen.integers(0, self.num_clusters, size=graph.num_tasks)
        labels = rebalance_empty_clusters(
            labels.astype(np.int64), self.num_clusters, graph, gen
        )
        return Clustering(labels, num_clusters=self.num_clusters)


class RoundRobinClusterer(Clusterer):
    """Task ``t`` goes to cluster ``t mod na`` — ignores all structure.

    A deliberately structure-blind baseline: consecutive (usually
    dependent) tasks land on *different* clusters, maximizing cut.
    """

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        labels = np.arange(graph.num_tasks) % self.num_clusters
        return Clustering(labels, num_clusters=self.num_clusters)


class BlockClusterer(Clusterer):
    """Contiguous blocks of task ids — the opposite bias to round-robin.

    When task ids follow generation order (layered generators emit
    breadth-first), blocks keep neighborhoods together.
    """

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n, k = graph.num_tasks, self.num_clusters
        # Split 0..n-1 into k blocks whose sizes differ by at most one.
        bounds = np.linspace(0, n, k + 1).astype(np.int64)
        labels = np.empty(n, dtype=np.int64)
        for c in range(k):
            labels[bounds[c] : bounds[c + 1]] = c
        return Clustering(labels, num_clusters=k)


class BandClusterer(Clusterer):
    """Topological bands: tasks at similar depth share a cluster.

    Depth = longest predecessor chain length.  Bands slice the DAG
    horizontally, so *every* dependence crosses clusters — a stress test
    for the mapping stage (maximal communication exposure with balanced
    per-band parallelism).
    """

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n, k = graph.num_tasks, self.num_clusters
        depth = np.zeros(n, dtype=np.int64)
        for t in graph.topological_order.tolist():
            preds = graph.predecessors(t)
            if preds.size:
                depth[t] = int(depth[preds].max()) + 1
        # Rank by (depth, id) and cut into k nearly equal bands; ranking
        # instead of raw depth keeps clusters non-empty even when the DAG
        # has fewer distinct depths than clusters.
        order = np.lexsort((np.arange(n), depth))
        bounds = np.linspace(0, n, k + 1).astype(np.int64)
        labels = np.empty(n, dtype=np.int64)
        for c in range(k):
            labels[order[bounds[c] : bounds[c + 1]]] = c
        return Clustering(labels, num_clusters=k)
