"""Dominant Sequence Clustering (DSC), Gerasoulis & Yang.

Reference [8] of the paper ("Clustering Task Graphs for Message Passing
Architectures") is the lineage that produced DSC: walk the tasks in a
priority order driven by the *dominant sequence* (the critical path of
the partially scheduled graph) and merge a task into the cluster of the
predecessor that minimizes its start time — zeroing that incoming edge —
whenever doing so does not delay the task.

This implementation follows the classic simplified DSC loop:

1. Compute ``blevel`` (longest path to an exit, inclusive) on the
   unclustered graph; priority of a free task = ``tlevel + blevel``.
2. Repeatedly take the highest-priority unexamined task whose
   predecessors are all examined; try placing it in the cluster of each
   predecessor (zeroing that edge) and keep the choice minimizing its
   start time (``tlevel``); a fresh singleton cluster is the fallback.
3. Update ``tlevel`` of successors incrementally.

DSC leaves the cluster count data-driven, so the driver then merges the
smallest-communication cluster pairs (same policy as the edge-zeroing
clusterer) until exactly ``num_clusters`` remain.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import ClusteredGraph, Clustering
from ..core.ideal import lower_bound
from ..core.taskgraph import TaskGraph
from ..utils import as_rng
from .base import Clusterer, validate_request

__all__ = ["DscClusterer"]


class DscClusterer(Clusterer):
    """Dominant Sequence Clustering down to exactly ``num_clusters``."""

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n = graph.num_tasks
        labels = self._dsc_pass(graph)
        labels = self._merge_to_target(graph, labels)
        return Clustering(labels, num_clusters=self.num_clusters)

    # ------------------------------------------------------------------
    def _dsc_pass(self, graph: TaskGraph) -> np.ndarray:
        n = graph.num_tasks
        sizes = graph.task_sizes
        prob = graph.prob_edge

        # blevel: longest path (nodes + edges) from each task to an exit.
        blevel = np.zeros(n, dtype=np.int64)
        for t in graph.topological_order[::-1].tolist():
            succs = graph.successors(t)
            tail = 0
            if succs.size:
                tail = int((prob[t, succs] + blevel[succs]).max())
            blevel[t] = sizes[t] + tail

        labels = np.arange(n, dtype=np.int64)  # singleton start
        # cluster_end[c]: finish time of the last task placed in cluster c
        # (DSC clusters are linear chains, so one running end per cluster).
        cluster_end = {}
        tlevel = np.zeros(n, dtype=np.int64)
        end = np.zeros(n, dtype=np.int64)
        examined = np.zeros(n, dtype=bool)

        # Tasks in priority order; recomputing priorities lazily per step
        # keeps the implementation simple at O(n^2) — the same order the
        # paper's own algorithms run at.
        while not examined.all():
            free = [
                t
                for t in range(n)
                if not examined[t] and all(examined[p] for p in graph.predecessors(t))
            ]
            t = max(free, key=lambda x: (tlevel[x] + blevel[x], -x))
            preds = graph.predecessors(t)
            # Default: stay a singleton; start = max over preds with comm.
            best_start = int((end[preds] + prob[preds, t]).max()) if preds.size else 0
            best_cluster = int(labels[t])
            for p in preds.tolist():
                c = int(labels[p])
                # Zero the edge (p, t): t joins p's cluster and runs after
                # the cluster's current last task; other preds still pay.
                others = preds[preds != p]
                arrive = 0
                if others.size:
                    arrive = int((end[others] + prob[others, t]).max())
                start = max(int(cluster_end.get(c, end[p])), int(end[p]), arrive)
                if start < best_start:
                    best_start, best_cluster = start, c
            labels[t] = best_cluster
            tlevel[t] = best_start
            end[t] = best_start + int(sizes[t])
            cluster_end[best_cluster] = max(
                int(cluster_end.get(best_cluster, 0)), int(end[t])
            )
            examined[t] = True
        return labels

    # ------------------------------------------------------------------
    def _merge_to_target(self, graph: TaskGraph, labels: np.ndarray) -> np.ndarray:
        """Least-regression merges until exactly ``num_clusters`` remain."""
        target = self.num_clusters

        def canonical(lbl: np.ndarray) -> np.ndarray:
            _, first = np.unique(lbl, return_index=True)
            mapping = {int(lbl[i]): r for r, i in enumerate(np.sort(first))}
            return np.asarray([mapping[int(x)] for x in lbl], dtype=np.int64)

        labels = canonical(labels)
        k = int(labels.max()) + 1
        while k > target:
            best_lbl, best_cost = None, None
            pairs = set()
            for e in graph.edges():
                a, b = int(labels[e.src]), int(labels[e.dst])
                if a != b:
                    pairs.add((min(a, b), max(a, b)))
            if not pairs:
                pairs = {(0, 1)}
            for a, b in sorted(pairs):
                trial = labels.copy()
                trial[trial == b] = a
                trial = canonical(trial)
                cost = lower_bound(
                    ClusteredGraph(
                        graph, Clustering(trial, num_clusters=int(trial.max()) + 1)
                    )
                )
                if best_cost is None or cost < best_cost:
                    best_lbl, best_cost = trial, cost
            assert best_lbl is not None
            labels = best_lbl
            k = int(labels.max()) + 1
        # If DSC produced fewer clusters than requested, split the largest.
        while k < target:
            counts = np.bincount(labels, minlength=k)
            donor = int(np.argmax(counts))
            members = np.flatnonzero(labels == donor)
            labels[members[: members.size // 2]] = k
            k += 1
        return labels
