"""Sarkar-style edge-zeroing clustering.

The classic internalization heuristic (Sarkar 1989; the paper's refs
[8]/[10] build on the same idea): visit edges in order of decreasing
weight and merge the two endpoint clusters ("zero the edge") whenever
doing so does not increase the critical-path estimate of the clustered
graph — communication on internal edges costs nothing, so heavy edges
want to be internal unless merging serializes too much work.

Because the mapping stage needs *exactly* ``num_clusters`` clusters, the
merge loop additionally stops dissolving below the target and, if the
zero-improvement condition leaves more clusters than requested, keeps
merging the cheapest pairs (smallest critical-path regression) until the
target is met.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import ClusteredGraph, Clustering
from ..core.ideal import lower_bound
from ..core.taskgraph import TaskGraph
from ..utils import as_rng
from .base import Clusterer, validate_request

__all__ = ["EdgeZeroClusterer"]


class EdgeZeroClusterer(Clusterer):
    """Edge zeroing down to exactly ``num_clusters`` clusters.

    The quality estimate for a candidate partition is the ideal-graph
    makespan (the same lower-bound machinery the mapper uses), which for
    a clustering equals Sarkar's "parallel time with zeroed edges"
    measure under the paper's execution model.
    """

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n, target = graph.num_tasks, self.num_clusters

        labels = np.arange(n, dtype=np.int64)  # singleton clusters

        def canonical(lbl: np.ndarray) -> np.ndarray:
            """Renumber labels to 0..k-1 in order of first appearance."""
            _, first = np.unique(lbl, return_index=True)
            mapping = {int(lbl[i]): rank for rank, i in enumerate(np.sort(first))}
            return np.asarray([mapping[int(x)] for x in lbl], dtype=np.int64)

        def estimate(lbl: np.ndarray) -> int:
            c = canonical(lbl)
            return lower_bound(
                ClusteredGraph(graph, Clustering(c, num_clusters=int(c.max()) + 1))
            )

        current_cost = estimate(labels)
        edges = sorted(graph.edges(), key=lambda e: (-e.weight, e.src, e.dst))

        # Pass 1: Sarkar's rule — zero heavy edges while the estimate does
        # not regress and the cluster count stays above the target.
        for e in edges:
            if len(set(labels.tolist())) <= target:
                break
            a, b = labels[e.src], labels[e.dst]
            if a == b:
                continue
            trial = labels.copy()
            trial[trial == b] = a
            cost = estimate(trial)
            if cost <= current_cost:
                labels, current_cost = trial, cost

        # Pass 2: force the target count with least-regression merges.
        while len(set(labels.tolist())) > target:
            uniq = sorted(set(labels.tolist()))
            best_trial, best_cost = None, None
            # Prefer merging along remaining cut edges (cheap local moves);
            # fall back to arbitrary pairs for disconnected graphs.
            candidates: list[tuple[int, int]] = []
            for e in edges:
                a, b = int(labels[e.src]), int(labels[e.dst])
                if a != b:
                    candidates.append((a, b))
            if not candidates:
                candidates = [(uniq[0], uniq[1])]
            seen: set[tuple[int, int]] = set()
            for a, b in candidates:
                key = (min(a, b), max(a, b))
                if key in seen:
                    continue
                seen.add(key)
                trial = labels.copy()
                trial[trial == b] = a
                cost = estimate(trial)
                if best_cost is None or cost < best_cost:
                    best_trial, best_cost = trial, cost
            assert best_trial is not None
            labels, current_cost = best_trial, int(best_cost)

        # Pass 3: if zeroing overshot below the target (cannot happen with
        # the pass-1 guard, but kept as a safety net for subclasses), split
        # the largest clusters.
        final = canonical(labels)
        k = int(final.max()) + 1
        while k < target:
            counts = np.bincount(final, minlength=k)
            donor = int(np.argmax(counts))
            members = np.flatnonzero(final == donor)
            final[members[: members.size // 2]] = k
            k += 1
        return Clustering(final, num_clusters=target)
