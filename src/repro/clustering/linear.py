"""Linear (critical-path) clustering.

Kim & Browne-style linear clustering, the other classic the paper's
survey points at: repeatedly peel off the current *longest path* of the
remaining DAG (node + edge weights) and make it one cluster.  Linear
clusters never put two independent tasks together, so cluster-internal
execution is genuinely sequential — the clustering under which the
paper's no-serialization model is exact even on real machines.

The peeling naturally yields an unpredictable number of clusters, so the
driver stops opening new clusters when ``num_clusters - 1`` exist and
dumps the remainder into the last one, then rebalances if any target
cluster stayed empty.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import Clustering
from ..core.taskgraph import TaskGraph
from ..utils import as_rng
from .base import Clusterer, rebalance_empty_clusters, validate_request

__all__ = ["LinearClusterer"]


class LinearClusterer(Clusterer):
    """Longest-path peeling into exactly ``num_clusters`` clusters."""

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n, target = graph.num_tasks, self.num_clusters
        labels = np.full(n, -1, dtype=np.int64)
        remaining = np.ones(n, dtype=bool)
        topo = graph.topological_order.tolist()

        cluster_id = 0
        while remaining.any():
            if cluster_id == target - 1:
                labels[remaining] = cluster_id  # dump the tail
                break
            path = self._longest_path(graph, remaining, topo)
            labels[path] = cluster_id
            remaining[path] = False
            cluster_id += 1

        gen = as_rng(rng) if rng is not None else None
        labels = rebalance_empty_clusters(labels, target, graph, gen)
        return Clustering(labels, num_clusters=target)

    @staticmethod
    def _longest_path(
        graph: TaskGraph, remaining: np.ndarray, topo: list[int]
    ) -> list[int]:
        """Longest (node+edge weight) path within the remaining subgraph."""
        dist = np.full(graph.num_tasks, np.iinfo(np.int64).min, dtype=np.int64)
        parent = np.full(graph.num_tasks, -1, dtype=np.int64)
        for t in topo:
            if not remaining[t]:
                continue
            if dist[t] == np.iinfo(np.int64).min:
                dist[t] = int(graph.task_sizes[t])
            for s in graph.successors(t).tolist():
                if not remaining[s]:
                    continue
                cand = dist[t] + graph.weight(t, s) + int(graph.task_sizes[s])
                if cand > dist[s]:
                    dist[s] = cand
                    parent[s] = t
        end = int(np.argmax(np.where(remaining, dist, np.iinfo(np.int64).min)))
        path = [end]
        while parent[path[-1]] != -1:
            path.append(int(parent[path[-1]]))
        return path[::-1]
