"""Greedy load-balancing clusterer (LPT-style with affinity bonus).

Tasks are taken in order of decreasing size (the classic longest-
processing-time heuristic) and each goes to the cluster where it fits
"best": the least-loaded cluster, with ties and near-ties broken toward
the cluster holding the most communication partners — so the clusterer
balances work like LPT while recovering some locality like list
clustering (refs [9] of the paper survey exactly this family).
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import Clustering
from ..core.taskgraph import TaskGraph
from ..utils import as_rng
from .base import Clusterer, validate_request

__all__ = ["LoadBalanceClusterer"]


class LoadBalanceClusterer(Clusterer):
    """LPT load balancing with a communication-affinity tie-break.

    Parameters
    ----------
    num_clusters:
        Target cluster count.
    affinity_weight:
        How many units of load imbalance one unit of co-located
        communication weight is worth (0 = pure LPT).
    """

    def __init__(self, num_clusters: int, affinity_weight: float = 0.5) -> None:
        super().__init__(num_clusters)
        if affinity_weight < 0:
            raise ValueError("affinity_weight must be >= 0")
        self.affinity_weight = affinity_weight

    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        validate_request(graph, self.num_clusters)
        n, k = graph.num_tasks, self.num_clusters
        sizes = graph.task_sizes
        undirected = graph.prob_edge + graph.prob_edge.T

        order = np.argsort(-sizes, kind="stable")
        labels = np.full(n, -1, dtype=np.int64)
        load = np.zeros(k, dtype=np.float64)

        # Seed the k largest tasks on distinct clusters so none stays empty.
        for c, t in enumerate(order[:k].tolist()):
            labels[t] = c
            load[c] += sizes[t]

        for t in order[k:].tolist():
            affinity = np.zeros(k, dtype=np.float64)
            partners = np.flatnonzero(undirected[t])
            for p in partners.tolist():
                if labels[p] >= 0:
                    affinity[labels[p]] += undirected[t, p]
            score = load - self.affinity_weight * affinity
            c = int(np.argmin(score))
            labels[t] = c
            load[c] += sizes[t]
        return Clustering(labels, num_clusters=k)
