"""Clusterer protocol and shared helpers.

The paper assumes "an existing technique is first applied to produce a
clustering" (Sec. 1) and its experiments use a *random* clustering
program (Sec. 5).  This package provides that plus the era's standard
alternatives (refs [8]-[11] motivate them): round-robin, topological
bands, greedy load balancing, Sarkar-style edge zeroing, and linear
(critical-path) clustering — so the mapping stage can be studied under
clusterings of very different quality.

Every clusterer produces a :class:`~repro.core.clustered.Clustering`
with exactly ``num_clusters`` non-empty clusters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.clustered import Clustering
from ..core.taskgraph import TaskGraph
from ..utils import GraphError, as_rng

__all__ = ["Clusterer", "validate_request", "rebalance_empty_clusters"]


class Clusterer(ABC):
    """Base class: configure the target cluster count, then ``cluster()``.

    Parameters
    ----------
    num_clusters:
        Target number of clusters ``na``.  Must not exceed the task count
        of the graphs later passed to :meth:`cluster` (each cluster must
        receive at least one task).
    """

    def __init__(self, num_clusters: int) -> None:
        if num_clusters < 1:
            raise GraphError("num_clusters must be >= 1")
        self.num_clusters = num_clusters

    @abstractmethod
    def cluster(
        self, graph: TaskGraph, rng: int | np.random.Generator | None = None
    ) -> Clustering:
        """Partition ``graph``'s tasks into ``num_clusters`` groups."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_clusters={self.num_clusters})"


def validate_request(graph: TaskGraph, num_clusters: int) -> None:
    """Common precondition: at least one task per cluster."""
    if num_clusters > graph.num_tasks:
        raise GraphError(
            f"cannot split {graph.num_tasks} tasks into {num_clusters} "
            f"non-empty clusters"
        )


def rebalance_empty_clusters(
    labels: np.ndarray, num_clusters: int, graph: TaskGraph,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Repair a label vector so every cluster id in range is used.

    Steals one task from the largest cluster for each empty one (ties:
    lowest id; random with ``rng``).  Used by clusterers whose natural
    output may leave clusters empty (e.g. edge zeroing collapses hard).
    """
    labels = labels.copy()
    counts = np.bincount(labels, minlength=num_clusters)
    for empty in np.flatnonzero(counts == 0).tolist():
        donors = np.flatnonzero(counts == counts.max())
        donor = int(donors[0]) if rng is None else int(donors[rng.integers(donors.size)])
        members = np.flatnonzero(labels == donor)
        # Move the lightest task: perturbs the donor cluster least.
        victim = int(members[np.argmin(graph.task_sizes[members])])
        labels[victim] = empty
        counts[donor] -= 1
        counts[empty] += 1
    return labels
