"""Event types and the event queue for the MIMD simulator.

A tiny, dependency-free discrete-event core: events are ordered by
``(time, sequence)`` so simultaneous events fire in insertion order,
which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum, auto

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """What happened (see :mod:`repro.sim.engine` for the semantics)."""

    TASK_READY = auto()      # all inputs of a task have arrived
    TASK_FINISH = auto()     # a task completed execution
    HOP_ARRIVE = auto()      # a message finished traversing one link
    LINK_FREE = auto()       # a link became available (contention mode)


@dataclass(order=True)
class Event:
    """One scheduled occurrence.

    ``payload`` is deliberately untyped (engine-internal records); only
    ``time``/``seq`` participate in ordering.
    """

    time: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: object = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of :class:`Event`."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: int, kind: EventKind, payload: object = None) -> None:
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, Event(time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
