"""Discrete-event MIMD simulator: the paper's model plus fidelity knobs."""

from .engine import SimConfig, SimResult, simulate
from .events import Event, EventKind, EventQueue
from .machine import MimdMachine
from .trace import SimTrace, TaskRecord, TransferRecord

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "MimdMachine",
    "SimConfig",
    "SimResult",
    "SimTrace",
    "TaskRecord",
    "TransferRecord",
    "simulate",
]
