"""Discrete-event MIMD simulator: the paper's model plus fidelity knobs."""

from .engine import SimConfig, SimResult, simulate
from .events import Event, EventKind, EventQueue
from .machine import LinkGrant, MimdMachine, RouteTable, route_between, routing_table
from .trace import (
    LoadedSimTrace,
    SimTrace,
    StallRecord,
    TaskRecord,
    TransferRecord,
    read_trace_jsonl,
    trace_records,
    write_trace_jsonl,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "LinkGrant",
    "LoadedSimTrace",
    "MimdMachine",
    "SimConfig",
    "SimResult",
    "SimTrace",
    "StallRecord",
    "TaskRecord",
    "TransferRecord",
    "read_trace_jsonl",
    "RouteTable",
    "route_between",
    "routing_table",
    "simulate",
    "trace_records",
    "write_trace_jsonl",
]
