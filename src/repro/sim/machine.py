"""Machine model for the simulator: routing tables and link registry.

Wraps a :class:`~repro.topology.base.SystemGraph` with the artifacts the
discrete-event engine needs:

* cached shortest *paths* (not just hop counts) for deterministic
  store-and-forward routing — ties are broken by the BFS order of
  :meth:`SystemGraph.shortest_path`, so routes are stable across runs;
* a directed-link table for the contention model (each physical link is
  two directed channels, full duplex, one message at a time each).
"""

from __future__ import annotations

import numpy as np

from ..topology.base import SystemGraph

__all__ = ["MimdMachine"]


class MimdMachine:
    """Routing and link bookkeeping for one system graph."""

    def __init__(self, system: SystemGraph) -> None:
        self.system = system
        self._paths: dict[tuple[int, int], tuple[int, ...]] = {}
        # busy-until time per directed link; populated lazily.
        self._link_free: dict[tuple[int, int], int] = {}
        self._link_busy_total: dict[tuple[int, int], int] = {}

    @property
    def num_nodes(self) -> int:
        return self.system.num_nodes

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """The (cached) node sequence a message follows, endpoints included."""
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            path = tuple(self.system.shortest_path(src, dst))
            self._paths[key] = path
        return path

    def reset_links(self) -> None:
        """Forget all link occupancy (start of a simulation run)."""
        self._link_free.clear()
        self._link_busy_total.clear()

    def acquire_link(self, a: int, b: int, request_time: int, duration: int) -> int:
        """Reserve directed link ``a -> b``; returns the transfer *start* time.

        The transfer occupies the link during ``[start, start + duration)``.
        """
        free_at = self._link_free.get((a, b), 0)
        start = max(request_time, free_at)
        self._link_free[(a, b)] = start + duration
        self._link_busy_total[(a, b)] = (
            self._link_busy_total.get((a, b), 0) + duration
        )
        return start

    def link_busy_time(self) -> dict[tuple[int, int], int]:
        """Total busy time per directed link over the last run."""
        return dict(self._link_busy_total)

    def max_link_utilization(self, makespan: int) -> float:
        """Peak directed-link utilization (busy / makespan) of the last run."""
        if makespan <= 0 or not self._link_busy_total:
            return 0.0
        return max(self._link_busy_total.values()) / makespan
