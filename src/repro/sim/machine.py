"""Machine model for the simulator: routing tables and link registry.

Wraps a :class:`~repro.topology.base.SystemGraph` with the artifacts the
discrete-event engine needs:

* deterministic shortest *paths* (not just hop counts) for
  store-and-forward routing — ties are broken by the BFS order of
  :meth:`SystemGraph.shortest_path`, so routes are stable across runs.
  The tables are cached **per SystemGraph** in a process-wide weak map
  (:func:`routing_table`), so every machine, metric, and simulation run
  touching the same system object shares one table instead of
  re-deriving routes;
* a directed-link table for the contention model (each physical link is
  two directed channels, full duplex, one message at a time each);
* finite per-link FIFO bookkeeping for the backpressure model: with
  ``fifo_depth = D`` at most ``D`` messages may hold a slot on a
  directed link (queued or transmitting) at any time, and a message
  arriving at a full link *stalls at the sending node* until the oldest
  slot-holder finishes.  Stalled messages wait in the node's (infinite)
  buffer rather than holding upstream links, so backpressure never
  propagates and the store-and-forward deadlock of credit-based
  wormhole models cannot occur — every stall ends when a transmission
  ends, and started transmissions always finish.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple
from weakref import WeakKeyDictionary

import numpy as np

from ..core.taskgraph import _expand
from ..topology.base import SystemGraph
from ..utils import GraphError

__all__ = ["LinkGrant", "MimdMachine", "RouteTable", "route_between", "routing_table"]

#: Process-wide route cache, one table per SystemGraph *object* (the
#: graph's hash is identity-based, so equal-but-distinct systems keep
#: separate tables and dropping a system drops its table).
_ROUTE_TABLES: "WeakKeyDictionary[SystemGraph, RouteTable]" = WeakKeyDictionary()


class RouteTable:
    """Array-native routing table of one system graph.

    The canonical representation is the dense **predecessor matrix**
    ``prev`` (``ns x ns`` int64, read-only): ``prev[s, v]`` is the node
    preceding ``v`` on the deterministic shortest route from ``s``
    (``prev[s, s] == s``; ``-1`` marks unreachable).  It is built in one
    vectorized pass per source and reproduces
    :meth:`SystemGraph.shortest_path` bit for bit — BFS discovery order
    on unit-weight machines, lowest-id backtracking on weighted ones —
    so every concrete route equals the historical per-pair computation.
    Route tuples are materialized (and memoized) on demand by walking
    ``prev``.
    """

    def __init__(self, system: SystemGraph) -> None:
        self.system = system
        self.prev = _predecessor_matrix(system)
        self.prev.flags.writeable = False
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """The route ``src -> dst``, endpoints included (memoized)."""
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            if self.prev[src, dst] == -1:
                raise GraphError(f"no path from {src} to {dst}")
            hops = [dst]
            row = self.prev[src]
            while hops[-1] != src:
                hops.append(int(row[hops[-1]]))
            path = tuple(reversed(hops))
            self._routes[key] = path
        return path


def _predecessor_matrix(system: SystemGraph) -> np.ndarray:
    """Build :attr:`RouteTable.prev` for every source at once."""
    n = system.num_nodes
    prev = np.full((n, n), -1, dtype=np.int64)
    if system.is_weighted:
        # Weighted: ``shortest_path`` backtracks from dst to the first
        # (lowest-id) neighbor u with dist[s, u] + w[u, v] == dist[s, v].
        adj = system.sys_edge > 0
        w = system.link_weights
        dist = system.shortest
        for s in range(n):
            row = dist[s]
            ok = adj & (row[:, None] + w == row[None, :])
            ok &= (row >= 0)[:, None] & (row >= 0)[None, :]
            has = ok.any(axis=0)
            prev[s, has] = np.argmax(ok[:, has], axis=0)
            prev[s, s] = s
        return prev
    # Unit weights: replicate the BFS of ``shortest_path`` exactly —
    # each level's candidates in frontier order (neighbors ascending
    # within a node), first discovery wins, and the next frontier keeps
    # discovery order.
    rows = [system.neighbors(u) for u in range(n)]
    ptr = np.concatenate(([0], np.cumsum([r.size for r in rows]))).astype(np.int64)
    idx = (
        np.concatenate(rows).astype(np.int64) if n else np.empty(0, np.int64)
    )
    counts = np.diff(ptr)
    for s in range(n):
        row = prev[s]
        row[s] = s
        frontier = np.array([s], dtype=np.int64)
        while frontier.size:
            cand_u = np.repeat(frontier, counts[frontier])
            cand_v = idx[_expand(ptr[frontier], ptr[frontier + 1])]
            fresh = row[cand_v] == -1
            cand_u, cand_v = cand_u[fresh], cand_v[fresh]
            if not cand_v.size:
                break
            new_v, first = np.unique(cand_v, return_index=True)
            row[new_v] = cand_u[first]
            frontier = new_v[np.argsort(first, kind="stable")]
    return prev


def routing_table(system: SystemGraph) -> RouteTable:
    """The shared :class:`RouteTable` of ``system`` (built on first use)."""
    table = _ROUTE_TABLES.get(system)
    if table is None:
        table = RouteTable(system)
        _ROUTE_TABLES[system] = table
    return table


def route_between(system: SystemGraph, src: int, dst: int) -> tuple[int, ...]:
    """The deterministic shortest route ``src -> dst``, endpoints included.

    Backed by the system's shared :class:`RouteTable`, so the analytic
    congestion metrics and the simulator always agree on which links a
    message crosses.
    """
    return routing_table(system).route(src, dst)


class LinkGrant(NamedTuple):
    """Outcome of one directed-link acquisition.

    ``enqueue`` is when the message obtained a FIFO slot (equals the
    request time unless the link's FIFO was full), ``start``/``end``
    bound the transmission itself, and ``stall = enqueue - request``
    is the backpressure wait spent in the sender's node buffer.
    """

    enqueue: int
    start: int
    end: int
    stall: int


class MimdMachine:
    """Routing and link bookkeeping for one system graph.

    ``fifo_depth=None`` (the default) models unbounded link queues —
    the historical behavior; an integer ``D >= 1`` bounds each directed
    link to ``D`` in-flight messages with backpressure stalls.  Queue
    and stall statistics are meaningful only under the engine's
    contention mode, where grants serialize transmissions.
    """

    def __init__(self, system: SystemGraph, fifo_depth: int | None = None) -> None:
        if fifo_depth is not None and fifo_depth < 1:
            raise ValueError(f"fifo_depth must be >= 1, got {fifo_depth}")
        self.system = system
        self.fifo_depth = fifo_depth
        self._paths = routing_table(system)
        # busy-until time per directed link; populated lazily.
        self._link_free: dict[tuple[int, int], int] = {}
        self._link_busy_total: dict[tuple[int, int], int] = {}
        # FIFO state: finish times of slot-holding messages (ascending),
        # cumulative stall per link, and the peak observed occupancy.
        self._link_active: dict[tuple[int, int], deque[int]] = {}
        self._link_stall_total: dict[tuple[int, int], int] = {}
        self._link_peak_queue: dict[tuple[int, int], int] = {}

    @property
    def num_nodes(self) -> int:
        return self.system.num_nodes

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """The (cached) node sequence a message follows, endpoints included."""
        return route_between(self.system, src, dst)

    def reset_links(self) -> None:
        """Forget all link occupancy (start of a simulation run)."""
        self._link_free.clear()
        self._link_busy_total.clear()
        self._link_active.clear()
        self._link_stall_total.clear()
        self._link_peak_queue.clear()

    def acquire(
        self, a: int, b: int, request_time: int, duration: int
    ) -> LinkGrant:
        """Reserve directed link ``a -> b``; returns the full grant.

        The transfer occupies the link during ``[start, start +
        duration)``.  With a finite FIFO the message first waits for a
        slot: it enters the queue when the occupancy drops below
        ``fifo_depth`` (finish times are monotone, so the wait is the
        ``depth``-th most recent slot-holder's finish) and the stall is
        charged to the sender.  Stalls only ever *delay* the start, so
        every relaxation remains monotone versus the analytic model.
        """
        link = (a, b)
        active = self._link_active.get(link)
        if active is None:
            active = deque()
            self._link_active[link] = active
        while active and active[0] <= request_time:
            active.popleft()
        enqueue = request_time
        if self.fifo_depth is not None and len(active) >= self.fifo_depth:
            enqueue = active[len(active) - self.fifo_depth]
        stall = enqueue - request_time
        start = max(enqueue, self._link_free.get(link, 0))
        end = start + duration
        active.append(end)
        occupancy = sum(1 for finish in active if finish > enqueue)
        if occupancy > self._link_peak_queue.get(link, 0):
            self._link_peak_queue[link] = occupancy
        self._link_free[link] = end
        self._link_busy_total[link] = self._link_busy_total.get(link, 0) + duration
        if stall:
            self._link_stall_total[link] = (
                self._link_stall_total.get(link, 0) + stall
            )
        return LinkGrant(enqueue=enqueue, start=start, end=end, stall=stall)

    def acquire_link(self, a: int, b: int, request_time: int, duration: int) -> int:
        """Reserve directed link ``a -> b``; returns the transfer *start* time.

        Thin historical wrapper over :meth:`acquire`.
        """
        return self.acquire(a, b, request_time, duration).start

    def link_busy_time(self) -> dict[tuple[int, int], int]:
        """Total busy time per directed link over the last run."""
        return dict(self._link_busy_total)

    def max_link_utilization(self, makespan: int) -> float:
        """Peak directed-link utilization (busy / makespan) of the last run."""
        if makespan <= 0 or not self._link_busy_total:
            return 0.0
        return max(self._link_busy_total.values()) / makespan

    def link_stall_time(self) -> dict[tuple[int, int], int]:
        """Backpressure stall time charged per directed link."""
        return dict(self._link_stall_total)

    def fifo_stall_time(self) -> int:
        """Total backpressure stall time across all links (0 without FIFOs)."""
        return sum(self._link_stall_total.values())

    def peak_queue_depth(self) -> dict[tuple[int, int], int]:
        """Peak simultaneous slot occupancy observed per directed link."""
        return dict(self._link_peak_queue)

    def max_queue_depth(self) -> int:
        """Peak slot occupancy across all links (<= ``fifo_depth`` when set)."""
        return max(self._link_peak_queue.values(), default=0)
