"""Execution traces produced by the simulator.

Plain records — one per task execution, one per link traversal, one per
backpressure stall — that downstream tooling (Gantt rendering,
utilization stats, debugging) can consume without touching engine
internals.

Traces also round-trip through canonical JSONL (:mod:`repro.io.jsonl`):
:func:`write_trace_jsonl` serializes a :class:`~repro.sim.engine.SimResult`
as a header record plus one record per trace row, and
:func:`read_trace_jsonl` loads it back as a :class:`LoadedSimTrace` —
duck-type compatible with :func:`repro.analysis.gantt.render_sim_gantt`,
so an exported simulated schedule renders identically to a live one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..utils import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import SimResult

__all__ = [
    "LoadedSimTrace",
    "SimTrace",
    "StallRecord",
    "TaskRecord",
    "TransferRecord",
    "read_trace_jsonl",
    "trace_records",
    "write_trace_jsonl",
]


@dataclass(frozen=True)
class TaskRecord:
    """One task execution interval on one processor."""

    task: int
    processor: int
    start: int
    end: int


@dataclass(frozen=True)
class TransferRecord:
    """One message occupying one directed link for one hop."""

    src_task: int
    dst_task: int
    link: tuple[int, int]
    start: int
    end: int


@dataclass(frozen=True)
class StallRecord:
    """One backpressure wait at a full link FIFO.

    The message for ``src_task -> dst_task`` wanted ``link`` at ``start``
    but only obtained a FIFO slot at ``end``; the difference is the stall
    charged to the sending node.
    """

    src_task: int
    dst_task: int
    link: tuple[int, int]
    start: int
    end: int


@dataclass
class SimTrace:
    """Everything that happened during a run, in completion order."""

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    stalls: list[StallRecord] = field(default_factory=list)

    def tasks_by_processor(self) -> dict[int, list[TaskRecord]]:
        """Task records grouped by processor, ordered by start time."""
        out: dict[int, list[TaskRecord]] = {}
        for rec in self.tasks:
            out.setdefault(rec.processor, []).append(rec)
        for records in out.values():
            records.sort(key=lambda r: (r.start, r.task))
        return out

    def busiest_link(self) -> tuple[tuple[int, int], int] | None:
        """The directed link with the most cumulative transfer time."""
        if not self.transfers:
            return None
        totals = self.link_busy_time()
        link = max(totals, key=lambda k: (totals[k], k))
        return link, totals[link]

    def link_busy_time(self) -> dict[tuple[int, int], int]:
        """Cumulative transfer time per directed link."""
        totals: dict[tuple[int, int], int] = {}
        for rec in self.transfers:
            totals[rec.link] = totals.get(rec.link, 0) + (rec.end - rec.start)
        return totals

    def total_transfer_time(self) -> int:
        """Sum of all per-hop transfer durations (hop-weighted volume)."""
        return sum(rec.end - rec.start for rec in self.transfers)

    def total_stall_time(self) -> int:
        """Sum of all backpressure stall durations."""
        return sum(rec.end - rec.start for rec in self.stalls)


# ----------------------------------------------------------------------
# JSONL export / import


@dataclass(frozen=True)
class LoadedSimTrace:
    """A simulation result reloaded from its JSONL trace.

    Carries the summary fields of the originating
    :class:`~repro.sim.engine.SimResult` (the config only as its
    ``describe()`` string) plus the full trace; exposes ``.trace`` and
    ``.makespan``, the two attributes the Gantt renderer consumes, so a
    loaded trace renders exactly like the live result it was dumped from.
    """

    config: str
    makespan: int
    max_link_utilization: float
    fifo_stall_time: int
    max_queue_depth: int
    trace: SimTrace


def trace_records(result: "SimResult") -> list[dict[str, Any]]:
    """The canonical JSONL records of ``result``: header, then trace rows.

    Rows are emitted in trace order (completion order), one object per
    task/transfer/stall record, each tagged with a ``"record"`` kind.
    """
    records: list[dict[str, Any]] = [
        {
            "record": "header",
            "config": result.config.describe(),
            "makespan": int(result.makespan),
            "max_link_utilization": float(result.max_link_utilization),
            "fifo_stall_time": int(result.fifo_stall_time),
            "max_queue_depth": int(result.max_queue_depth),
        }
    ]
    for task in result.trace.tasks:
        records.append(
            {
                "record": "task",
                "task": task.task,
                "processor": task.processor,
                "start": task.start,
                "end": task.end,
            }
        )
    for xfer in result.trace.transfers:
        records.append(
            {
                "record": "transfer",
                "src_task": xfer.src_task,
                "dst_task": xfer.dst_task,
                "link": list(xfer.link),
                "start": xfer.start,
                "end": xfer.end,
            }
        )
    for stall in result.trace.stalls:
        records.append(
            {
                "record": "stall",
                "src_task": stall.src_task,
                "dst_task": stall.dst_task,
                "link": list(stall.link),
                "start": stall.start,
                "end": stall.end,
            }
        )
    return records


def write_trace_jsonl(result: "SimResult", path: str | Path) -> int:
    """Dump ``result`` to ``path`` as canonical JSONL; returns record count."""
    from ..io.jsonl import write_record

    records = trace_records(result)
    with Path(path).open("w") as fh:
        for record in records:
            write_record(fh, record)
    return len(records)


def read_trace_jsonl(path: str | Path) -> LoadedSimTrace:
    """Load a trace dumped by :func:`write_trace_jsonl`.

    Raises :class:`GraphError` on files that are not a trace stream
    (missing/duplicate header, unknown record kind, missing fields).
    """
    from ..io.jsonl import read_jsonl

    try:
        records = read_jsonl(path)
    except OSError as exc:
        raise GraphError(f"cannot read trace file {path}: {exc}") from None
    if not records or records[0].get("record") != "header":
        raise GraphError(f"{path}: not a simulation trace (missing header record)")
    header = records[0]
    trace = SimTrace()
    try:
        for record in records[1:]:
            kind = record.get("record")
            if kind == "task":
                trace.tasks.append(
                    TaskRecord(
                        task=int(record["task"]),
                        processor=int(record["processor"]),
                        start=int(record["start"]),
                        end=int(record["end"]),
                    )
                )
            elif kind == "transfer":
                a, b = record["link"]
                trace.transfers.append(
                    TransferRecord(
                        src_task=int(record["src_task"]),
                        dst_task=int(record["dst_task"]),
                        link=(int(a), int(b)),
                        start=int(record["start"]),
                        end=int(record["end"]),
                    )
                )
            elif kind == "stall":
                a, b = record["link"]
                trace.stalls.append(
                    StallRecord(
                        src_task=int(record["src_task"]),
                        dst_task=int(record["dst_task"]),
                        link=(int(a), int(b)),
                        start=int(record["start"]),
                        end=int(record["end"]),
                    )
                )
            elif kind == "header":
                raise GraphError(f"{path}: duplicate header record")
            else:
                raise GraphError(f"{path}: unknown trace record kind {kind!r}")
        return LoadedSimTrace(
            config=str(header["config"]),
            makespan=int(header["makespan"]),
            max_link_utilization=float(header["max_link_utilization"]),
            fifo_stall_time=int(header.get("fifo_stall_time", 0)),
            max_queue_depth=int(header.get("max_queue_depth", 0)),
            trace=trace,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"{path}: malformed trace record: {exc}") from exc
