"""Execution traces produced by the simulator.

Plain records — one per task execution and one per link traversal — that
downstream tooling (Gantt rendering, utilization stats, debugging) can
consume without touching engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskRecord", "TransferRecord", "SimTrace"]


@dataclass(frozen=True)
class TaskRecord:
    """One task execution interval on one processor."""

    task: int
    processor: int
    start: int
    end: int


@dataclass(frozen=True)
class TransferRecord:
    """One message occupying one directed link for one hop."""

    src_task: int
    dst_task: int
    link: tuple[int, int]
    start: int
    end: int


@dataclass
class SimTrace:
    """Everything that happened during a run, in completion order."""

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)

    def tasks_by_processor(self) -> dict[int, list[TaskRecord]]:
        """Task records grouped by processor, ordered by start time."""
        out: dict[int, list[TaskRecord]] = {}
        for rec in self.tasks:
            out.setdefault(rec.processor, []).append(rec)
        for records in out.values():
            records.sort(key=lambda r: (r.start, r.task))
        return out

    def busiest_link(self) -> tuple[tuple[int, int], int] | None:
        """The directed link with the most cumulative transfer time."""
        if not self.transfers:
            return None
        totals: dict[tuple[int, int], int] = {}
        for rec in self.transfers:
            totals[rec.link] = totals.get(rec.link, 0) + (rec.end - rec.start)
        link = max(totals, key=lambda k: (totals[k], k))
        return link, totals[link]

    def total_transfer_time(self) -> int:
        """Sum of all per-hop transfer durations (hop-weighted volume)."""
        return sum(rec.end - rec.start for rec in self.transfers)
