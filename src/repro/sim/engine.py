"""Discrete-event simulation of a mapped program on a MIMD machine.

The analytic evaluator (:mod:`repro.core.evaluate`) *is* the paper's
model; this engine re-executes the mapped program event by event so the
model's assumptions can be relaxed one at a time:

* ``SimConfig()`` (defaults) — the **paper model**: infinitely wide
  processors (independent tasks on one processor overlap) and
  contention-free links (a message takes ``weight x hops`` regardless of
  traffic).  In this mode the simulation provably reproduces the
  analytic schedule exactly, and the test suite asserts it.
* ``serialize_processors=True`` — each processor executes one task at a
  time; ready tasks queue FIFO by ready time (ties by task id) — plain
  list scheduling.
* ``link_contention=True`` — each *directed* link carries one message at
  a time (store-and-forward, full-duplex physical links); messages wait
  for the next channel on their fixed shortest-path route.
* ``link_setup > 0`` — the classic alpha-beta cost model: every hop pays
  a fixed startup latency on top of the weight-proportional transfer
  time (``hop time = link_setup + weight``).  The paper's model is
  ``link_setup == 0``.
* ``fifo_depth=D`` (requires ``link_contention``) — each directed link
  owns a finite FIFO of ``D`` slots shared by queued and transmitting
  messages; a message arriving at a full FIFO *stalls at the sending
  node* (backpressure) until the oldest slot-holder drains.  Stall time
  is accounted per link and totalled in ``SimResult.fifo_stall_time``.

All relaxations can only delay events, so the simulated makespan is
always >= the analytic one — another tested invariant.  Ablation A4
measures how far the 1991 model drifts from these higher-fidelity
machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import MappingError
from .events import EventKind, EventQueue
from .machine import MimdMachine
from .trace import SimTrace, StallRecord, TaskRecord, TransferRecord

__all__ = ["SimConfig", "SimResult", "simulate"]


@dataclass(frozen=True)
class SimConfig:
    """Fidelity knobs; defaults reproduce the paper's analytic model."""

    serialize_processors: bool = False
    link_contention: bool = False
    link_setup: int = 0
    fifo_depth: int | None = None

    def __post_init__(self) -> None:
        if self.link_setup < 0:
            raise ValueError("link_setup must be >= 0")
        if self.fifo_depth is not None:
            if self.fifo_depth < 1:
                raise ValueError("fifo_depth must be >= 1")
            if not self.link_contention:
                raise ValueError("fifo_depth requires link_contention=True")

    def describe(self) -> str:
        parts = []
        parts.append("serialized" if self.serialize_processors else "overlapping")
        parts.append("contention" if self.link_contention else "contention-free")
        if self.link_setup:
            parts.append(f"setup={self.link_setup}")
        if self.fifo_depth is not None:
            parts.append(f"fifo={self.fifo_depth}")
        return "+".join(parts)


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution."""

    config: SimConfig
    start: np.ndarray
    end: np.ndarray
    makespan: int
    trace: SimTrace
    max_link_utilization: float
    fifo_stall_time: int = 0
    max_queue_depth: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimResult(makespan={self.makespan}, "
            f"config={self.config.describe()!r})"
        )


@dataclass
class _Message:
    """A payload in flight along its fixed route."""

    src_task: int
    dst_task: int
    route: tuple[int, ...]
    hop_index: int  # next link to traverse is route[hop_index] -> route[hop_index+1]
    weight: int     # clustered edge weight (message size in time units/link-cost)


def simulate(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment,
    config: SimConfig = SimConfig(),
) -> SimResult:
    """Run the mapped program to completion and return the schedule."""
    graph = clustered.graph
    if clustered.num_clusters != system.num_nodes:
        raise MappingError("na must equal ns for simulation")
    n = graph.num_tasks
    labels = clustered.clustering.labels
    host = assignment.placement[labels]  # processor per task
    machine = MimdMachine(system, fifo_depth=config.fifo_depth)
    machine.reset_links()

    queue = EventQueue()
    trace = SimTrace()

    start = np.full(n, -1, dtype=np.int64)
    end = np.full(n, -1, dtype=np.int64)
    pending_inputs = np.asarray(
        [graph.predecessors(t).size for t in range(n)], dtype=np.int64
    )
    # Per-processor run state (serialization mode).
    proc_busy = np.zeros(system.num_nodes, dtype=bool)
    proc_queue: list[list[tuple[int, int]]] = [[] for _ in range(system.num_nodes)]

    def start_task(task: int, time: int) -> None:
        start[task] = time
        queue.push(time + int(graph.task_sizes[task]), EventKind.TASK_FINISH, task)

    def on_ready(task: int, time: int) -> None:
        p = int(host[task])
        if not config.serialize_processors:
            start_task(task, time)
            return
        if proc_busy[p]:
            proc_queue[p].append((time, task))
        else:
            proc_busy[p] = True
            start_task(task, time)

    def deliver(task: int, time: int) -> None:
        pending_inputs[task] -= 1
        if pending_inputs[task] == 0:
            queue.push(time, EventKind.TASK_READY, task)

    def launch_message(msg: _Message, time: int) -> None:
        """Send ``msg`` across its next link (or deliver at the end)."""
        if msg.hop_index >= len(msg.route) - 1:
            deliver(msg.dst_task, time)
            return
        a = msg.route[msg.hop_index]
        b = msg.route[msg.hop_index + 1]
        duration = config.link_setup + msg.weight * int(system.link_weights[a, b])
        if config.link_contention:
            grant = machine.acquire(a, b, time, duration)
            begin = grant.start
            if grant.stall:
                trace.stalls.append(
                    StallRecord(
                        src_task=msg.src_task,
                        dst_task=msg.dst_task,
                        link=(a, b),
                        start=time,
                        end=grant.enqueue,
                    )
                )
        else:
            begin = time
            machine.acquire_link(a, b, time, duration)  # stats only
        arrive = begin + duration
        trace.transfers.append(
            TransferRecord(
                src_task=msg.src_task,
                dst_task=msg.dst_task,
                link=(a, b),
                start=begin,
                end=arrive,
            )
        )
        msg.hop_index += 1
        queue.push(arrive, EventKind.HOP_ARRIVE, msg)

    for t in range(n):
        if pending_inputs[t] == 0:
            queue.push(0, EventKind.TASK_READY, t)

    makespan = 0
    while queue:
        event = queue.pop()
        time = event.time
        if event.kind is EventKind.TASK_READY:
            on_ready(int(event.payload), time)
        elif event.kind is EventKind.TASK_FINISH:
            task = int(event.payload)
            end[task] = time
            makespan = max(makespan, time)
            p = int(host[task])
            trace.tasks.append(
                TaskRecord(task=task, processor=p, start=int(start[task]), end=time)
            )
            if config.serialize_processors:
                if proc_queue[p]:
                    proc_queue[p].sort()  # FIFO by ready time, tie by task id
                    _, nxt = proc_queue[p].pop(0)
                    start_task(nxt, time)
                else:
                    proc_busy[p] = False
            for succ in graph.successors(task).tolist():
                if host[succ] == p:
                    deliver(succ, time)
                    continue
                weight = int(clustered.clus_edge[task, succ])
                route = machine.route(p, int(host[succ]))
                launch_message(
                    _Message(task, succ, route, hop_index=0, weight=weight),
                    time,
                )
        elif event.kind is EventKind.HOP_ARRIVE:
            launch_message(event.payload, time)  # type: ignore[arg-type]

    if (end < 0).any():  # pragma: no cover - defensive
        stuck = np.flatnonzero(end < 0).tolist()
        raise RuntimeError(f"simulation deadlocked; tasks never finished: {stuck}")

    start.flags.writeable = False
    end.flags.writeable = False
    return SimResult(
        config=config,
        start=start,
        end=end,
        makespan=makespan,
        trace=trace,
        max_link_utilization=machine.max_link_utilization(makespan),
        fifo_stall_time=machine.fifo_stall_time(),
        max_queue_depth=machine.max_queue_depth(),
    )
