"""Workload substrate: task-graph generators for experiments and examples.

The general-purpose generators are also registered by name in the
:data:`repro.api.WORKLOADS` registry (``layered_random``, ``gnp``,
``fft``, ``cholesky``, ``lu``, ...; see ``mimdmap list workloads``),
which is how scenario sweeps select them.  The paper-example fixtures
stay import-only.
"""

from .classic import (
    divide_conquer_dag,
    fft_dag,
    fork_join_dag,
    map_reduce_dag,
    pipeline_dag,
    stencil_sweep_dag,
)
from .linalg import (
    cholesky_dag,
    gaussian_elimination_dag,
    lu_dag,
    triangular_solve_dag,
    wavefront_dag,
)
from .paper_examples import (
    RUNNING_EXAMPLE_I_END,
    RUNNING_EXAMPLE_I_START,
    RUNNING_EXAMPLE_LOWER_BOUND,
    bokhari_counterexample_system,
    bokhari_counterexample_task_graph,
    lee_counterexample_phases,
    lee_counterexample_system,
    lee_counterexample_task_graph,
    running_example_assignment_vector,
    running_example_clustered,
    running_example_clustering,
    running_example_system,
    running_example_task_graph,
    singleton_clustering,
)
from .random_dag import gnp_dag, layered_random_dag, series_parallel_dag
from .trees import broadcast_tree, diamond_lattice, reduction_tree

__all__ = [
    "RUNNING_EXAMPLE_I_END",
    "RUNNING_EXAMPLE_I_START",
    "RUNNING_EXAMPLE_LOWER_BOUND",
    "bokhari_counterexample_system",
    "bokhari_counterexample_task_graph",
    "broadcast_tree",
    "cholesky_dag",
    "diamond_lattice",
    "divide_conquer_dag",
    "fft_dag",
    "fork_join_dag",
    "gaussian_elimination_dag",
    "gnp_dag",
    "layered_random_dag",
    "lu_dag",
    "lee_counterexample_phases",
    "lee_counterexample_system",
    "lee_counterexample_task_graph",
    "map_reduce_dag",
    "pipeline_dag",
    "reduction_tree",
    "running_example_assignment_vector",
    "running_example_clustered",
    "running_example_clustering",
    "running_example_system",
    "running_example_task_graph",
    "series_parallel_dag",
    "singleton_clustering",
    "stencil_sweep_dag",
    "triangular_solve_dag",
    "wavefront_dag",
]
