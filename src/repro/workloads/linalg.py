"""Linear-algebra task DAGs (the paper's motivating applications).

Reference [11] of the paper (Cosnard et al., "Parallel Gaussian
Elimination on an MIMD Computer") and [10] (Gerasoulis & Nelken, "Static
Scheduling for Linear Algebra DAGs") are the workloads the clustering
literature of the era targeted.  These generators build the standard
dependence DAGs:

* :func:`gaussian_elimination_dag` — the kji Gaussian elimination DAG:
  for each pivot step ``k`` a pivot task ``T(k,k)`` produces the
  multipliers, then one update task ``T(k,j)`` per remaining column ``j``
  consumes them and feeds step ``k+1``.
* :func:`cholesky_dag` — the right-looking tiled Cholesky factorization
  DAG (POTRF/TRSM/SYRK/GEMM tasks).
* :func:`wavefront_dag` — the classic 2-D wavefront (Gauss-Seidel-style
  sweep) dependence grid.

Task sizes scale with the amount of arithmetic each task performs (so
later elimination steps are cheaper), and edge weights scale with the
data volume transferred — both with tunable unit costs.
"""

from __future__ import annotations

from ..core.taskgraph import TaskGraph
from ..utils import GraphError

__all__ = [
    "gaussian_elimination_dag",
    "cholesky_dag",
    "wavefront_dag",
    "lu_dag",
    "triangular_solve_dag",
]


def gaussian_elimination_dag(
    matrix_size: int, flop_cost: int = 1, word_cost: int = 1
) -> TaskGraph:
    """Gaussian elimination on an ``n x n`` matrix, one task per (k, j) update.

    Tasks: for ``k = 0..n-2``, a pivot task ``P_k`` (compute multipliers of
    column ``k``) and update tasks ``U_{k,j}`` for ``j = k+1..n-1`` (apply
    the multipliers to column ``j``).  Dependencies:

    * ``P_k -> U_{k,j}``      (multipliers broadcast to every column update)
    * ``U_{k,k+1} -> P_{k+1}`` (next pivot column must be updated first)
    * ``U_{k,j} -> U_{k+1,j}`` (same column, next step)

    Sizes: pivot ``(n-1-k) * flop_cost`` (one division per row below the
    diagonal), update ``2 * (n-1-k) * flop_cost``; edges carry
    ``(n-1-k) * word_cost`` words (the multiplier / column segment).
    """
    n = matrix_size
    if n < 2:
        raise GraphError("matrix_size must be >= 2")

    ids: dict[tuple[str, int, int], int] = {}
    sizes: list[int] = []

    def add(kind: str, k: int, j: int, size: int) -> int:
        ids[(kind, k, j)] = len(sizes)
        sizes.append(max(1, size))
        return len(sizes) - 1

    for k in range(n - 1):
        rows_below = n - 1 - k
        add("P", k, k, rows_below * flop_cost)
        for j in range(k + 1, n):
            add("U", k, j, 2 * rows_below * flop_cost)

    edges: list[tuple[int, int, int]] = []
    for k in range(n - 1):
        volume = max(1, (n - 1 - k) * word_cost)
        pivot = ids[("P", k, k)]
        for j in range(k + 1, n):
            edges.append((pivot, ids[("U", k, j)], volume))
        if k + 1 < n - 1:
            edges.append((ids[("U", k, k + 1)], ids[("P", k + 1, k + 1)], volume))
            for j in range(k + 2, n):
                edges.append((ids[("U", k, j)], ids[("U", k + 1, j)], volume))
    return TaskGraph(sizes, edges, name=f"gauss-{n}")


def cholesky_dag(tiles: int, flop_cost: int = 1, word_cost: int = 1) -> TaskGraph:
    """Tiled right-looking Cholesky: POTRF/TRSM/SYRK/GEMM task DAG.

    ``tiles`` is the tile-grid dimension; the task count grows as
    ``O(tiles^3)``.  Standard dependence pattern:

    * ``POTRF(k) -> TRSM(k, i)`` for ``i > k``
    * ``TRSM(k, i) -> SYRK(k, i)`` and ``-> GEMM(k, i, j)``
    * ``SYRK(k, i) -> POTRF(i)`` chain via the next step's diagonal
    * ``GEMM(k, i, j) -> TRSM(k+1, ...)`` via the updated tile
    """
    t = tiles
    if t < 1:
        raise GraphError("tiles must be >= 1")

    ids: dict[tuple, int] = {}
    sizes: list[int] = []

    def add(key: tuple, size: int) -> int:
        ids[key] = len(sizes)
        sizes.append(max(1, size))
        return len(sizes) - 1

    # Tile (i, j) with i >= j; writer[(i, j)] is the last task updating it.
    writer: dict[tuple[int, int], int] = {}
    edges: list[tuple[int, int, int]] = []
    tile_words = max(1, word_cost)

    def depend(task: int, tile: tuple[int, int]) -> None:
        if tile in writer:
            edges.append((writer[tile], task, tile_words))

    for k in range(t):
        potrf = add(("POTRF", k), flop_cost)
        depend(potrf, (k, k))
        writer[(k, k)] = potrf
        for i in range(k + 1, t):
            trsm = add(("TRSM", k, i), 2 * flop_cost)
            depend(trsm, (i, k))
            edges.append((potrf, trsm, tile_words))
            writer[(i, k)] = trsm
        for i in range(k + 1, t):
            syrk = add(("SYRK", k, i), 2 * flop_cost)
            depend(syrk, (i, i))
            edges.append((writer[(i, k)], syrk, tile_words))
            writer[(i, i)] = syrk
            for j in range(k + 1, i):
                gemm = add(("GEMM", k, i, j), 4 * flop_cost)
                depend(gemm, (i, j))
                edges.append((writer[(i, k)], gemm, tile_words))
                edges.append((writer[(j, k)], gemm, tile_words))
                writer[(i, j)] = gemm
    # De-duplicate parallel edges (keep max weight) — GEMM deps can repeat.
    dedup: dict[tuple[int, int], int] = {}
    for u, v, w in edges:
        if u != v:
            dedup[(u, v)] = max(dedup.get((u, v), 0), w)
    triples = [(u, v, w) for (u, v), w in sorted(dedup.items())]
    return TaskGraph(sizes, triples, name=f"cholesky-{t}")


def lu_dag(tiles: int, flop_cost: int = 1, word_cost: int = 1) -> TaskGraph:
    """Tiled LU factorization without pivoting: GETRF/TRSM/GEMM tasks.

    For each step ``k``: ``GETRF(k)`` factors the diagonal tile, feeding
    row-TRSMs (``k, j``) and column-TRSMs (``i, k``), whose outputs meet
    in the trailing GEMM updates (``i, j``); the updated tiles feed step
    ``k + 1``.
    """
    t = tiles
    if t < 1:
        raise GraphError("tiles must be >= 1")
    sizes: list[int] = []
    edges: list[tuple[int, int, int]] = []
    writer: dict[tuple[int, int], int] = {}
    words = max(1, word_cost)

    def add(size: int) -> int:
        sizes.append(max(1, size))
        return len(sizes) - 1

    def depend(task: int, tile: tuple[int, int]) -> None:
        if tile in writer:
            edges.append((writer[tile], task, words))

    for k in range(t):
        getrf = add(2 * flop_cost)
        depend(getrf, (k, k))
        writer[(k, k)] = getrf
        row_trsm: dict[int, int] = {}
        col_trsm: dict[int, int] = {}
        for j in range(k + 1, t):
            trsm = add(2 * flop_cost)
            depend(trsm, (k, j))
            edges.append((getrf, trsm, words))
            writer[(k, j)] = trsm
            row_trsm[j] = trsm
        for i in range(k + 1, t):
            trsm = add(2 * flop_cost)
            depend(trsm, (i, k))
            edges.append((getrf, trsm, words))
            writer[(i, k)] = trsm
            col_trsm[i] = trsm
        for i in range(k + 1, t):
            for j in range(k + 1, t):
                gemm = add(4 * flop_cost)
                depend(gemm, (i, j))
                edges.append((col_trsm[i], gemm, words))
                edges.append((row_trsm[j], gemm, words))
                writer[(i, j)] = gemm
    dedup: dict[tuple[int, int], int] = {}
    for u, v, w in edges:
        if u != v:
            dedup[(u, v)] = max(dedup.get((u, v), 0), w)
    triples = [(u, v, w) for (u, v), w in sorted(dedup.items())]
    return TaskGraph(sizes, triples, name=f"lu-{t}")


def triangular_solve_dag(
    size: int, flop_cost: int = 1, word_cost: int = 1
) -> TaskGraph:
    """Forward substitution ``Lx = b``: solve task per row, chained updates.

    Row ``i`` solves after receiving every ``x_j`` (``j < i``) — the
    densest sequential-looking DAG in the kit; its lower bound is nearly
    serial, which makes it a good stress test for the termination
    condition (mappings reach the bound easily).
    """
    n = size
    if n < 1:
        raise GraphError("size must be >= 1")
    sizes = [max(1, (i + 1) * flop_cost) for i in range(n)]
    edges = []
    for j in range(n):
        for i in range(j + 1, n):
            edges.append((j, i, max(1, word_cost)))
    return TaskGraph(sizes, edges, name=f"trisolve-{n}")


def wavefront_dag(
    rows: int, cols: int, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """A 2-D wavefront: cell (r, c) depends on (r-1, c) and (r, c-1).

    The canonical dependence structure of triangular solves, dynamic
    programming tables, and Gauss-Seidel sweeps.
    """
    if rows < 1 or cols < 1:
        raise GraphError("wavefront dimensions must be >= 1")
    if task_size < 1 or comm < 1:
        raise GraphError("task_size and comm must be >= 1")
    sizes = [task_size] * (rows * cols)
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if r + 1 < rows:
                edges.append((u, u + cols, comm))
            if c + 1 < cols:
                edges.append((u, u + 1, comm))
    return TaskGraph(sizes, edges, name=f"wavefront-{rows}x{cols}")
