"""Random problem-graph generators (paper Sec. 5).

The paper evaluates on "random problem graphs" with 30-300 nodes whose
node and edge weights are "produced randomly"; no further parameters are
published.  :func:`layered_random_dag` is our reconstruction of the usual
1990s random-task-graph recipe (and what the experiment harness uses):
tasks are arranged in layers, every task gets at least one predecessor in
an earlier layer (so the DAG is connected and has real precedence
chains), and extra forward edges are sprinkled with a density knob.

:func:`gnp_dag` (Erdős–Rényi over a random topological order) and
:func:`series_parallel_dag` round out the family for tests and ablations:
G(n,p) DAGs stress wide graphs with little structure, series-parallel
DAGs stress deep dependency chains.
"""

from __future__ import annotations

import numpy as np

from ..core.taskgraph import TaskGraph
from ..utils import GraphError, as_rng

__all__ = ["layered_random_dag", "gnp_dag", "series_parallel_dag"]

#: Task count at which :func:`layered_random_dag` switches from the
#: per-pair reference sampler to the vectorized pair-index sampler.  Below
#: the threshold the historical RNG stream is preserved bit for bit.
_VECTOR_THRESHOLD = 10_000


def layered_random_dag(
    num_tasks: int,
    num_layers: int | None = None,
    extra_edge_prob: float | None = None,
    extra_edges_per_task: float = 1.5,
    task_size_range: tuple[int, int] = (1, 10),
    comm_range: tuple[int, int] = (1, 10),
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> TaskGraph:
    """A layered random task DAG (the experiments' problem-graph generator).

    Parameters
    ----------
    num_tasks:
        Number of tasks (the paper uses 30-300).
    num_layers:
        Number of precedence layers; defaults to ``round(sqrt(num_tasks))``
        which keeps width and depth balanced.
    extra_edge_prob:
        Probability of each additional forward (layer-skipping allowed)
        edge beyond the spanning edges that tie every non-entry task to an
        earlier layer.  Default ``None`` derives it from
        ``extra_edges_per_task`` so the *mean degree stays constant* as
        graphs grow — a fixed probability over the O(n^2) forward pairs
        would make 300-task graphs an order of magnitude denser than
        30-task ones, which is neither realistic for compiler-generated
        task graphs nor consistent with the paper's reported mapping
        quality (see DESIGN.md Sec. 4).
    extra_edges_per_task:
        Expected number of extra edges per task when ``extra_edge_prob``
        is derived; the default 1.5 plus one spanning edge per non-entry
        task yields a mean undirected degree around 3-5.
    task_size_range, comm_range:
        Inclusive integer ranges for node and edge weights.
    """
    if num_tasks < 1:
        raise GraphError("num_tasks must be >= 1")
    if extra_edges_per_task < 0:
        raise GraphError("extra_edges_per_task must be >= 0")
    gen = as_rng(rng)
    layers = _partition_layers(num_tasks, num_layers, gen)
    if extra_edge_prob is None:
        layer_of_tmp = np.empty(num_tasks, dtype=np.int64)
        for li, layer in enumerate(layers):
            layer_of_tmp[layer] = li
        widths = np.asarray([layer.size for layer in layers], dtype=np.int64)
        later = np.concatenate(([0], np.cumsum(widths[::-1])[:-1]))[::-1]
        forward_pairs = int((widths * (later)).sum())
        extra_edge_prob = (
            min(1.0, extra_edges_per_task * num_tasks / forward_pairs)
            if forward_pairs
            else 0.0
        )
    lo_w, hi_w = task_size_range
    lo_c, hi_c = comm_range
    if lo_w < 1 or hi_w < lo_w or lo_c < 1 or hi_c < lo_c:
        raise GraphError("weight ranges must satisfy 1 <= lo <= hi")

    sizes = gen.integers(lo_w, hi_w + 1, size=num_tasks)
    edges: dict[tuple[int, int], int] = {}

    layer_of = np.empty(num_tasks, dtype=np.int64)
    for li, layer in enumerate(layers):
        layer_of[layer] = li

    # Spanning edges: every non-entry task depends on someone earlier.
    for li in range(1, len(layers)):
        earlier = np.concatenate(layers[:li])
        for t in layers[li].tolist():
            src = int(earlier[gen.integers(0, earlier.size)])
            edges[(src, t)] = int(gen.integers(lo_c, hi_c + 1))

    # Extra forward edges between any pair in strictly increasing layers.
    if num_tasks < _VECTOR_THRESHOLD:
        # Reference sampler: one Bernoulli draw per forward pair.  Kept
        # verbatim below the threshold so every recorded small-instance
        # RNG stream (pinned test values, benchmark baselines) is
        # reproduced bit for bit.
        for u in range(num_tasks):
            for v in range(num_tasks):
                if layer_of[u] < layer_of[v] and (u, v) not in edges:
                    if gen.random() < extra_edge_prob:
                        edges[(u, v)] = int(gen.integers(lo_c, hi_c + 1))
        triples = [(u, v, w) for (u, v), w in sorted(edges.items())]
        return TaskGraph(sizes, triples, name=name or f"layered-{num_tasks}")

    # Scale sampler: iterating the O(n^2) forward-pair space is infeasible
    # at 100k tasks (5e9 pairs), so draw the *number* of extra edges from
    # the matching binomial and sample pair indices directly.  Layers are
    # consecutive id ranges, so pair index -> (u, v) is a searchsorted over
    # per-source counts.  Collisions are removed rather than re-drawn
    # (expected collisions ~k^2/2P, i.e. a handful out of ~1.5 per task);
    # the RNG stream differs from the reference sampler, which only
    # matters below the threshold where results are pinned.
    bounds = np.concatenate(
        ([0], np.cumsum([layer.size for layer in layers]))
    ).astype(np.int64)
    first_later = bounds[layer_of + 1]  # per task: first id in a later layer
    cnt = num_tasks - first_later  # forward-pair count per source task
    cum = np.cumsum(cnt)
    total_pairs = int(cum[-1]) if cnt.size else 0
    span_src = np.fromiter((u for (u, _) in edges), dtype=np.int64, count=len(edges))
    span_dst = np.fromiter((v for (_, v) in edges), dtype=np.int64, count=len(edges))
    span_w = np.fromiter(edges.values(), dtype=np.int64, count=len(edges))
    extra_src = np.empty(0, dtype=np.int64)
    extra_dst = np.empty(0, dtype=np.int64)
    if total_pairs and extra_edge_prob > 0.0:
        k = int(gen.binomial(total_pairs, min(1.0, extra_edge_prob)))
        if k:
            draws = np.unique(gen.integers(0, total_pairs, size=k))
            u = np.searchsorted(cum, draws, side="right")
            v = first_later[u] + (draws - (cum[u] - cnt[u]))
            keys = u * np.int64(num_tasks) + v
            span_keys = span_src * np.int64(num_tasks) + span_dst
            fresh = ~np.isin(keys, span_keys)
            extra_src, extra_dst = u[fresh], v[fresh]
    extra_w = gen.integers(lo_c, hi_c + 1, size=extra_src.size)
    return TaskGraph.from_edge_arrays(
        sizes,
        np.concatenate((span_src, extra_src)),
        np.concatenate((span_dst, extra_dst)),
        np.concatenate((span_w, extra_w)),
        name=name or f"layered-{num_tasks}",
    )


def gnp_dag(
    num_tasks: int,
    edge_prob: float = 0.1,
    task_size_range: tuple[int, int] = (1, 10),
    comm_range: tuple[int, int] = (1, 10),
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> TaskGraph:
    """G(n, p) DAG: each forward pair (in a random order) is an edge w.p. ``p``.

    Isolated tasks are possible (and legitimate — independent jobs); use
    :func:`layered_random_dag` when connectivity is required.
    """
    if num_tasks < 1:
        raise GraphError("num_tasks must be >= 1")
    if not 0.0 <= edge_prob <= 1.0:
        raise GraphError("edge_prob must be in [0, 1]")
    gen = as_rng(rng)
    order = gen.permutation(num_tasks)
    lo_w, hi_w = task_size_range
    lo_c, hi_c = comm_range
    sizes = gen.integers(lo_w, hi_w + 1, size=num_tasks)
    edges = []
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if gen.random() < edge_prob:
                edges.append(
                    (int(order[i]), int(order[j]), int(gen.integers(lo_c, hi_c + 1)))
                )
    return TaskGraph(sizes, edges, name=name or f"gnp-{num_tasks}")


def series_parallel_dag(
    depth: int,
    branching: int = 2,
    task_size_range: tuple[int, int] = (1, 10),
    comm_range: tuple[int, int] = (1, 10),
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> TaskGraph:
    """Recursive series-parallel DAG: fork ``branching`` ways, then join.

    ``depth`` levels of fork/join produce ``2 + branching * (size(depth-1))``
    tasks; at depth 0 a single task.  Models divide-and-conquer workloads
    with explicit join synchronization points.
    """
    if depth < 0 or branching < 1:
        raise GraphError("depth must be >= 0 and branching >= 1")
    gen = as_rng(rng)
    lo_w, hi_w = task_size_range
    lo_c, hi_c = comm_range

    sizes: list[int] = []
    edges: list[tuple[int, int, int]] = []

    def new_task() -> int:
        sizes.append(int(gen.integers(lo_w, hi_w + 1)))
        return len(sizes) - 1

    def weight() -> int:
        return int(gen.integers(lo_c, hi_c + 1))

    def build(d: int) -> tuple[int, int]:
        """Return (entry, exit) task ids of a depth-``d`` block."""
        if d == 0:
            t = new_task()
            return t, t
        fork = new_task()
        join = new_task()
        for _ in range(branching):
            entry, exit_ = build(d - 1)
            edges.append((fork, entry, weight()))
            edges.append((exit_, join, weight()))
        return fork, join

    build(depth)
    return TaskGraph(sizes, edges, name=name or f"sp-{depth}x{branching}")


def _partition_layers(
    num_tasks: int, num_layers: int | None, gen: np.random.Generator
) -> list[np.ndarray]:
    """Split ``0..num_tasks-1`` into non-empty consecutive layers."""
    if num_layers is None:
        num_layers = max(1, int(round(num_tasks**0.5)))
    num_layers = min(num_layers, num_tasks)
    if num_layers < 1:
        raise GraphError("num_layers must be >= 1")
    # Random cut points give variable layer widths, min width 1.
    cuts = np.sort(gen.choice(np.arange(1, num_tasks), size=num_layers - 1, replace=False))
    bounds = np.concatenate(([0], cuts, [num_tasks]))
    ids = np.arange(num_tasks)
    return [ids[bounds[i] : bounds[i + 1]] for i in range(num_layers)]
