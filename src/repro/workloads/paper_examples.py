"""Reconstructions of the paper's concrete example instances.

The scanned source garbles several figure matrices, so these are
*reconstructions*: instances engineered to satisfy every fact the paper's
prose and legible figure fragments state (DESIGN.md Sec. 4 lists the
policy).  The running example reproduces, exactly:

* task weights ``(1,1,2,3,3,1,3,2,2,3,1)`` and the full ideal start/end
  time vectors of Fig. 22-b (``i_start = 0,2,3,1,6,7,7,7,12,10,13``,
  ``i_end = 1,3,5,4,9,8,10,9,14,13,14`` — 1-based task order),
* lower bound 14 with latest tasks {9, 11},
* tasks 1 and 4 sharing a cluster (Sec. 4.1's worked derivation),
* problem edge weights the text quotes: (1,2)=1, (1,3)=2, (1,4)=2,
  (5,9)=1 with slack 2, (6,11)=1, and the critical edge (7,9)=2,
* the critical abstract edge matrix of Fig. 20-b: edges (0,1) weight 3
  and (0,2) weight 6, critical degree 9 for abstract node 0,
* ``mca[1] = 11`` (Fig. 20-c reads ``mca = [13, 11, 13, 3]``; the
  reconstruction gives ``[14, 11, 16, 7]`` — the ideal schedule and the
  critical structure pin the instance down, ``mca`` does not, and only
  entry 1 could be matched simultaneously),
* the 4-node ring system graph of Fig. 5-a / Fig. 21 (degrees all 2,
  shortest-path row (0,1,2,1)),
* the assignment of Fig. 23 (``assi = [0, 1, 3, 2]``) achieving total
  time 14 — i.e. hitting the lower bound, so the mapping is optimal and
  refinement terminates immediately (Fig. 24 and Sec. 4.3.4's closing
  remark).

The Sec. 2.2 counterexample instances (Figs. 7-17) are reconstructed to
*exhibit the phenomena* — a cardinality-optimal assignment that is not
time-optimal, and a (Lee) communication-cost-optimal assignment that is
not time-optimal — which the experiments verify by exhaustive search
rather than by trusting unreadable digits.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import ClusteredGraph, Clustering
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from ..topology.generators import hypercube, ring

__all__ = [
    "running_example_task_graph",
    "running_example_clustering",
    "running_example_clustered",
    "running_example_system",
    "running_example_assignment_vector",
    "RUNNING_EXAMPLE_LOWER_BOUND",
    "RUNNING_EXAMPLE_I_START",
    "RUNNING_EXAMPLE_I_END",
    "bokhari_counterexample_task_graph",
    "bokhari_counterexample_system",
    "lee_counterexample_task_graph",
    "lee_counterexample_phases",
    "lee_counterexample_system",
    "singleton_clustering",
]

#: Lower bound (ideal makespan) of the running example — paper Fig. 6/22-b.
RUNNING_EXAMPLE_LOWER_BOUND = 14

#: Ideal start times, 0-based task order (paper Fig. 22-b, 1-based there).
RUNNING_EXAMPLE_I_START = (0, 2, 3, 1, 6, 7, 7, 7, 12, 10, 13)

#: Ideal end times, 0-based task order (paper Fig. 22-b).
RUNNING_EXAMPLE_I_END = (1, 3, 5, 4, 9, 8, 10, 9, 14, 13, 14)


def running_example_task_graph() -> TaskGraph:
    """The 11-task problem graph of Fig. 2 (reconstruction).

    Edges are written 1-based as in the paper, converted to 0-based ids.
    """
    sizes = [1, 1, 2, 3, 3, 1, 3, 2, 2, 3, 1]
    edges_1based = [
        (1, 2, 1),
        (1, 3, 2),
        (1, 4, 2),   # intra-cluster in Fig. 3 (tasks 1 and 4 share cluster 0)
        (2, 5, 1),
        (2, 6, 2),
        (2, 8, 4),
        (3, 6, 1),
        (3, 7, 2),
        (3, 8, 2),
        (4, 5, 2),
        (4, 6, 3),
        (4, 7, 2),
        (5, 9, 1),   # slack 2 in the ideal graph, exactly as Sec. 2.1 argues
        (5, 10, 1),
        (6, 9, 2),
        (6, 11, 1),  # quoted in Sec. 2.1's discussion of stretched edges
        (7, 9, 2),   # THE critical edge e79 of Sec. 2.1
        (7, 10, 2),
        (8, 9, 1),
        (10, 11, 1),
    ]
    edges = [(u - 1, v - 1, w) for u, v, w in edges_1based]
    return TaskGraph(sizes, edges, name="paper-fig2")


def running_example_clustering() -> Clustering:
    """The 4-cluster partition of Fig. 3/19-b (reconstruction).

    Cluster 0 = {1, 4, 7, 10, 11}, 1 = {2, 5}, 2 = {3, 6, 9}, 3 = {8}
    (1-based task ids).
    """
    groups_1based = [[1, 4, 7, 10, 11], [2, 5], [3, 6, 9], [8]]
    groups = [[t - 1 for t in g] for g in groups_1based]
    return Clustering.from_groups(groups, num_tasks=11)


def running_example_clustered() -> ClusteredGraph:
    """Fig. 3's clustered problem graph, ready for the mapping pipeline."""
    return ClusteredGraph(running_example_task_graph(), running_example_clustering())


def running_example_system() -> SystemGraph:
    """The 4-node ring of Fig. 5-a (adjacency matrix of Fig. 21-a)."""
    g = ring(4)
    g.name = "paper-fig5a"
    return g


def running_example_assignment_vector() -> np.ndarray:
    """The paper's Fig. 23-b assignment: ``assi = [0, 1, 3, 2]``.

    (System node -> abstract node; achieves the lower bound of 14.)
    """
    return np.asarray([0, 1, 3, 2], dtype=np.int64)


# ----------------------------------------------------------------------
# Sec. 2.2 counterexamples
# ----------------------------------------------------------------------

def bokhari_counterexample_task_graph() -> TaskGraph:
    """An 8-task DAG in the mould of Fig. 7 (reconstruction).

    Nine edges; task 3 (1-based) has undirected degree 4, so — exactly as
    the paper argues — on the degree-3 system graph at least one of its
    edges must span two system edges.  The structure makes the phenomenon
    *provable*, not accidental:

    * the underlying undirected graph contains two odd cycles, the
      triangle {3,4,5} and the 5-cycle {3,5,7,2,6}; the 3-cube is
      bipartite, so any assignment of cardinality 8 (a single non-adjacent
      edge) must stretch an edge lying on *both* cycles — and their only
      common edge is (3,5);
    * (3,5) carries weight 7 with zero slack in the ideal schedule, so
      every cardinality-optimal assignment pays +7 on the makespan;
    * the slack-rich edges (3,6), (4,5), (2,6) and (2,7) can be stretched
      for free, so a cardinality-7 assignment reaches the lower bound.

    Experiment E4 certifies all of this by exhaustive search over the
    8! assignments.
    """
    sizes = [1, 6, 3, 2, 3, 2, 3, 3]
    edges_1based = [
        (1, 3, 2),
        (2, 6, 3),
        (2, 7, 2),
        (3, 4, 3),
        (3, 5, 7),  # the critical edge all cardinality-8 assignments stretch
        (3, 6, 1),
        (4, 5, 1),
        (4, 8, 3),
        (5, 7, 3),
    ]
    edges = [(u - 1, v - 1, w) for u, v, w in edges_1based]
    return TaskGraph(sizes, edges, name="paper-fig7")


def bokhari_counterexample_system() -> SystemGraph:
    """The 8-node, degree-3 system graph of Fig. 8 (a 3-cube)."""
    g = hypercube(3)
    g.name = "paper-fig8"
    return g


def lee_counterexample_task_graph() -> TaskGraph:
    """The 8-task DAG of Fig. 13 (reconstruction).

    Edge weights recovered from the phase tables of Figs. 15/17 (cost =
    weight x hop count, so weights are identifiable from the two
    assignments): (1,3)=3, (2,3)=3, (2,7)=2, (3,4)=4, (3,5)=2, (4,6)=1,
    (5,8)=3.  Task sizes are chosen so the phenomenon is structural:
    task 3 has degree 4, so one of its edges must stretch; the minimum
    phase cost (11, matching the paper's Fig. 15) is achievable only by
    stretching (3,5), which sits on the zero-slack chain 3 -> 5 -> 8 and
    costs +2 on the makespan, while stretching (1,3) instead is free
    (task 2 is the late predecessor of task 3) but raises the phase cost.
    """
    sizes = [1, 4, 3, 3, 3, 2, 2, 4]
    edges_1based = [
        (1, 3, 3),
        (2, 3, 3),
        (2, 7, 2),
        (3, 4, 4),
        (3, 5, 2),
        (4, 6, 1),
        (5, 8, 3),
    ]
    edges = [(u - 1, v - 1, w) for u, v, w in edges_1based]
    return TaskGraph(sizes, edges, name="paper-fig13")


def lee_counterexample_phases() -> list[list[tuple[int, int]]]:
    """The paper's four communication phases for Fig. 13 (0-based edges).

    Phase 1: (1,3), (2,3), (2,7); phase 2: (3,4), (3,5); phase 3: (4,6);
    phase 4: (5,8) — as tabulated in Fig. 15.
    """
    phases_1based = [
        [(1, 3), (2, 3), (2, 7)],
        [(3, 4), (3, 5)],
        [(4, 6)],
        [(5, 8)],
    ]
    return [[(u - 1, v - 1) for u, v in phase] for phase in phases_1based]


def lee_counterexample_system() -> SystemGraph:
    """Same machine as the Bokhari example (Fig. 8's degree-3 graph)."""
    return bokhari_counterexample_system()


def singleton_clustering(graph: TaskGraph) -> Clustering:
    """Each task in its own cluster (``np == na``), as in both Sec. 2.2
    examples where the clustered problem graph equals the problem graph."""
    return Clustering(np.arange(graph.num_tasks), num_clusters=graph.num_tasks)
