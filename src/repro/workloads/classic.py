"""Classic parallel-program DAG shapes.

The structures every mapping paper of the era exercised: FFT butterflies,
fork-join, divide-and-conquer trees, software pipelines, and map-reduce.
All generators produce plain :class:`~repro.core.taskgraph.TaskGraph`
instances with tunable node/edge weights.
"""

from __future__ import annotations

from ..core.taskgraph import TaskGraph
from ..utils import GraphError

__all__ = [
    "fft_dag",
    "fork_join_dag",
    "divide_conquer_dag",
    "pipeline_dag",
    "map_reduce_dag",
    "stencil_sweep_dag",
]


def fft_dag(points_log2: int, task_size: int = 2, comm: int = 1) -> TaskGraph:
    """An FFT butterfly DAG: ``log2(n)+1`` stages of ``n`` tasks.

    Task ``(stage, i)`` feeds ``(stage+1, i)`` and ``(stage+1, i ^ bit)``,
    the classic butterfly exchange.
    """
    if points_log2 < 1:
        raise GraphError("points_log2 must be >= 1")
    n = 1 << points_log2
    stages = points_log2 + 1
    sizes = [task_size] * (stages * n)
    edges = []
    for s in range(points_log2):
        bit = 1 << s
        for i in range(n):
            u = s * n + i
            edges.append((u, (s + 1) * n + i, comm))
            edges.append((u, (s + 1) * n + (i ^ bit), comm))
    return TaskGraph(sizes, edges, name=f"fft-{n}")


def fork_join_dag(
    width: int, stages: int = 1, task_size: int = 3, comm: int = 1
) -> TaskGraph:
    """``stages`` rounds of fork into ``width`` workers and join back.

    Models bulk-synchronous phases: source -> workers -> barrier ->
    workers -> ... -> sink.
    """
    if width < 1 or stages < 1:
        raise GraphError("width and stages must be >= 1")
    sizes: list[int] = []
    edges: list[tuple[int, int, int]] = []

    def task(size: int) -> int:
        sizes.append(size)
        return len(sizes) - 1

    prev_join = task(1)
    for _ in range(stages):
        workers = [task(task_size) for _ in range(width)]
        join = task(1)
        for w in workers:
            edges.append((prev_join, w, comm))
            edges.append((w, join, comm))
        prev_join = join
    return TaskGraph(sizes, edges, name=f"forkjoin-{width}x{stages}")


def divide_conquer_dag(
    levels: int, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """Binary divide phase followed by a mirrored conquer (merge) phase.

    ``levels`` levels of splitting produce ``2**levels`` leaf tasks; the
    merge tree joins them back.  Total ``3 * 2**levels - 2`` tasks.
    """
    if levels < 1:
        raise GraphError("levels must be >= 1")
    sizes: list[int] = []
    edges: list[tuple[int, int, int]] = []

    def task(size: int) -> int:
        sizes.append(size)
        return len(sizes) - 1

    def divide(level: int) -> tuple[int, int]:
        """Return (divide_root, merge_root) of the sub-problem."""
        if level == 0:
            leaf = task(task_size)
            return leaf, leaf
        split = task(1)
        merge = task(1)
        for _ in range(2):
            d, m = divide(level - 1)
            edges.append((split, d, comm))
            edges.append((m, merge, comm))
        return split, merge

    divide(levels)
    return TaskGraph(sizes, edges, name=f"dandc-{levels}")


def pipeline_dag(
    stages: int, items: int, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """A software pipeline: ``items`` flow through ``stages`` stage tasks.

    Task ``(stage, item)`` depends on ``(stage-1, item)`` (dataflow) and
    ``(stage, item-1)`` (stage occupancy), the standard pipeline DAG.
    """
    if stages < 1 or items < 1:
        raise GraphError("stages and items must be >= 1")
    sizes = [task_size] * (stages * items)
    edges = []
    for s in range(stages):
        for i in range(items):
            u = s * items + i
            if s + 1 < stages:
                edges.append((u, u + items, comm))
            if i + 1 < items:
                edges.append((u, u + 1, comm))
    return TaskGraph(sizes, edges, name=f"pipeline-{stages}x{items}")


def map_reduce_dag(
    mappers: int, reducers: int, map_size: int = 4, reduce_size: int = 2, comm: int = 1
) -> TaskGraph:
    """Source -> mappers -> all-to-all shuffle -> reducers -> sink."""
    if mappers < 1 or reducers < 1:
        raise GraphError("mappers and reducers must be >= 1")
    sizes = [1] + [map_size] * mappers + [reduce_size] * reducers + [1]
    source = 0
    first_map = 1
    first_reduce = 1 + mappers
    sink = 1 + mappers + reducers
    edges = []
    for m in range(mappers):
        edges.append((source, first_map + m, comm))
        for r in range(reducers):
            edges.append((first_map + m, first_reduce + r, comm))
    for r in range(reducers):
        edges.append((first_reduce + r, sink, comm))
    return TaskGraph(sizes, edges, name=f"mapreduce-{mappers}x{reducers}")


def stencil_sweep_dag(
    grid: int, sweeps: int, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """``sweeps`` Jacobi iterations over a ``grid x grid`` domain, unrolled.

    Cell ``(s, r, c)`` depends on its own and von-Neumann-neighbor values
    from sweep ``s-1`` — the space-time DAG of an iterative stencil.
    """
    if grid < 1 or sweeps < 1:
        raise GraphError("grid and sweeps must be >= 1")
    n = grid * grid
    sizes = [task_size] * (sweeps * n)
    edges = []
    for s in range(sweeps - 1):
        for r in range(grid):
            for c in range(grid):
                u = s * n + r * grid + c
                for dr, dc in ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < grid and 0 <= cc < grid:
                        edges.append((u, (s + 1) * n + rr * grid + cc, comm))
    return TaskGraph(sizes, edges, name=f"stencil-{grid}x{sweeps}")
