"""Tree-shaped task DAGs: reductions, broadcasts, and lattices.

The remaining canonical shapes of the scheduling literature:

* :func:`reduction_tree` — an in-tree: leaves combine pairwise (or
  k-wise) up to a single root, the skeleton of every parallel reduction.
* :func:`broadcast_tree` — an out-tree: one root fans data out to all
  leaves, the dual of the reduction.
* :func:`diamond_lattice` — the diamond DAG of dynamic-programming
  dependence studies: out-fan to a middle layer, then in-fan; stresses
  mappings with one wide synchronization-free phase.
"""

from __future__ import annotations

from ..core.taskgraph import TaskGraph
from ..utils import GraphError

__all__ = ["reduction_tree", "broadcast_tree", "diamond_lattice"]


def reduction_tree(
    leaves: int, arity: int = 2, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """An in-tree reduction of ``leaves`` inputs with the given arity.

    Internal combine nodes are created level by level until one root
    remains; a final level may combine fewer than ``arity`` children.
    """
    if leaves < 1 or arity < 2:
        raise GraphError("need leaves >= 1 and arity >= 2")
    if task_size < 1 or comm < 1:
        raise GraphError("task_size and comm must be >= 1")
    sizes: list[int] = [task_size] * leaves
    edges: list[tuple[int, int, int]] = []
    frontier = list(range(leaves))
    while len(frontier) > 1:
        nxt: list[int] = []
        for i in range(0, len(frontier), arity):
            group = frontier[i : i + arity]
            if len(group) == 1:
                nxt.extend(group)
                continue
            parent = len(sizes)
            sizes.append(task_size)
            for child in group:
                edges.append((child, parent, comm))
            nxt.append(parent)
        frontier = nxt
    return TaskGraph(sizes, edges, name=f"reduce-{leaves}x{arity}")


def broadcast_tree(
    leaves: int, arity: int = 2, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """An out-tree broadcast to ``leaves`` receivers (dual of the reduction)."""
    reduction = reduction_tree(leaves, arity, task_size, comm)
    n = reduction.num_tasks
    # Reverse every edge and renumber so the (old) root becomes task 0.
    order = list(range(n))[::-1]
    reversed_edges = [
        (n - 1 - e.dst, n - 1 - e.src, e.weight) for e in reduction.edges()
    ]
    sizes = reduction.task_sizes[::-1].copy()
    g = TaskGraph(sizes, reversed_edges, name=f"broadcast-{leaves}x{arity}")
    return g


def diamond_lattice(
    width: int, task_size: int = 2, comm: int = 1
) -> TaskGraph:
    """source -> ``width`` parallel middles -> sink (a 1-level diamond)."""
    if width < 1:
        raise GraphError("width must be >= 1")
    if task_size < 1 or comm < 1:
        raise GraphError("task_size and comm must be >= 1")
    sizes = [1] + [task_size] * width + [1]
    edges = []
    for m in range(width):
        edges.append((0, 1 + m, comm))
        edges.append((1 + m, width + 1, comm))
    return TaskGraph(sizes, edges, name=f"diamond-{width}")
