"""Consolidated mapping report: everything about one result in one string.

Bundles the bound/quality summary, parallel metrics, embedding quality,
and (optionally) the Gantt chart for a
:class:`~repro.core.mapper.MappingResult` — the "show me everything"
call for interactive use and the CLI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..topology.embedding import analyze_embedding
from .gantt import render_gantt
from .metrics import compute_metrics, format_metrics

if TYPE_CHECKING:
    from ..core.mapper import MappingResult

__all__ = ["mapping_report"]


def mapping_report(result: "MappingResult", include_gantt: bool = False) -> str:
    """Render the full report for one mapping result."""
    lines = [
        "=== Mapping report ===",
        f"workload        : {result.clustered.graph.name} "
        f"({result.clustered.num_tasks} tasks, "
        f"{result.clustered.graph.num_edges} edges)",
        f"clusters        : {result.clustered.num_clusters} "
        f"(cut weight {result.clustered.cut_weight()})",
        f"machine         : {result.system.name} "
        f"({result.system.num_nodes} nodes, diameter {result.system.diameter()})",
        "",
        f"lower bound     : {result.lower_bound}",
        f"initial mapping : {result.initial_total_time}",
        f"final mapping   : {result.total_time} "
        f"({result.percent_over_lower_bound():.1f}% of the bound)",
        f"refinement      : {result.refinement.trials} trials, "
        f"improved: {result.refinement.improved}",
        f"provably optimal: {result.is_provably_optimal}",
        f"assignment      : {result.assignment.assi.tolist()}",
        "",
        "--- parallel metrics (paper model) ---",
        format_metrics(compute_metrics(result.schedule)),
        "",
        "--- embedding quality ---",
        str(analyze_embedding(result.abstract, result.system, result.assignment)),
        "",
        "--- critical structure ---",
        f"critical abstract edges : "
        f"{result.analysis.critical_abstract_edges()}",
        f"critical degrees        : "
        f"{result.analysis.critical_degree.tolist()}",
    ]
    if include_gantt:
        lines += ["", "--- schedule ---", render_gantt(result.schedule, max_rows=60)]
    return "\n".join(lines)
