"""Schedule quality metrics beyond the paper's single total-time number.

The paper reports only the makespan ratio; downstream users of a mapping
library want the standard parallel-performance vocabulary too.  All
metrics are derived from a :class:`~repro.core.evaluate.Schedule` (the
paper's model) and are exact under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.evaluate import Schedule

__all__ = ["ScheduleMetrics", "compute_metrics", "format_metrics"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Standard parallel metrics for one mapped schedule.

    Attributes
    ----------
    makespan:
        Total time (the paper's objective).
    total_work:
        Sum of task sizes (serial time with zero communication).
    speedup:
        ``total_work / makespan`` — how much faster than one processor
        executing the bare work.
    efficiency:
        ``speedup / processors``.
    avg_utilization:
        Mean busy fraction across processors.
    load_imbalance:
        ``max(busy) / mean(busy) - 1`` (0 = perfectly balanced).
    comm_volume:
        Hop-weighted communication (sum of the ``comm`` matrix).
    comm_to_comp:
        ``comm_volume / total_work``.
    stretched_edges:
        Number of inter-cluster problem edges whose message crossed more
        than one system link.
    """

    makespan: int
    total_work: int
    speedup: float
    efficiency: float
    avg_utilization: float
    load_imbalance: float
    comm_volume: int
    comm_to_comp: float
    stretched_edges: int


def compute_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Derive all metrics from one schedule."""
    clustered = schedule.clustered
    total_work = int(clustered.task_sizes.sum())
    processors = schedule.system.num_nodes
    busy = schedule.processor_busy_time().astype(np.float64)
    makespan = schedule.total_time

    speedup = total_work / makespan if makespan else 0.0
    mean_busy = busy.mean() if busy.size else 0.0
    imbalance = (busy.max() / mean_busy - 1.0) if mean_busy > 0 else 0.0

    clus = clustered.clus_edge
    stretched = int(((schedule.comm > clus) & (clus > 0)).sum())

    return ScheduleMetrics(
        makespan=makespan,
        total_work=total_work,
        speedup=speedup,
        efficiency=speedup / processors if processors else 0.0,
        avg_utilization=float(busy.sum() / (processors * makespan))
        if makespan
        else 0.0,
        load_imbalance=float(imbalance),
        comm_volume=int(schedule.comm.sum()),
        comm_to_comp=float(schedule.comm.sum() / total_work) if total_work else 0.0,
        stretched_edges=stretched,
    )


def format_metrics(
    metrics: ScheduleMetrics, extra: Mapping[str, float] | None = None
) -> str:
    """One-fact-per-line report.

    ``extra`` appends registry metrics (``repro.metrics``) to the report,
    one aligned line per key.  Earlier versions silently dropped them,
    so ``mimdmap map --metrics ...`` printed nothing for the very values
    it was asked to compute.
    """
    lines = [
        f"makespan          : {metrics.makespan}",
        f"total work        : {metrics.total_work}",
        f"speedup           : {metrics.speedup:.2f}",
        f"efficiency        : {metrics.efficiency:.2%}",
        f"avg utilization   : {metrics.avg_utilization:.2%}",
        f"load imbalance    : {metrics.load_imbalance:.2%}",
        f"comm volume (hops): {metrics.comm_volume}",
        f"comm / comp       : {metrics.comm_to_comp:.2f}",
        f"stretched edges   : {metrics.stretched_edges}",
    ]
    for key in sorted(extra or {}):
        lines.append(f"{key:<18}: {float(extra[key]):g}")
    return "\n".join(lines)
