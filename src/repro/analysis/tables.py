"""Paper-style text tables (Tables 1-3) and generic table rendering."""

from __future__ import annotations

from collections.abc import Sequence

from .stats import ExperimentRow, summarize_rows

__all__ = ["render_table", "render_experiment_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with column alignment (numbers right, text left)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    numeric = [
        all(_is_numberish(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        parts = []
        for i, v in enumerate(values):
            parts.append(v.rjust(widths[i]) if numeric[i] else v.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def render_experiment_table(rows: list[ExperimentRow], title: str) -> str:
    """One of the paper's Tables 1-3, with its summary line appended.

    Columns match the paper: experiment number, ours and random as
    percentages over the lower bound (lower bound = 100), improvement in
    percentage points.  An asterisk marks runs where the termination
    condition fired (the mapping provably hit the lower bound).
    """
    body = [
        (
            r.index,
            f"{r.ours_pct:.0f}{'*' if r.reached_lower_bound else ''}",
            f"{r.random_pct:.0f}",
            f"{r.improvement:.0f}",
            r.num_tasks,
            r.num_processors,
        )
        for r in rows
    ]
    table = render_table(
        ["exp", "ours %", "random %", "improvement", "np", "ns"],
        body,
        title=title,
    )
    return table + "\n" + str(summarize_rows(rows))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _is_numberish(value: object) -> bool:
    if isinstance(value, (int, float)):
        return True
    text = str(value).rstrip("*%")
    try:
        float(text)
    except ValueError:
        return False
    return True
