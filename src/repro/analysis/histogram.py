"""ASCII histograms in the style of the paper's Figs. 25-27.

Each experiment is a vertical dashed bar whose lower end is the proposed
mapping's percent-over-lower-bound and whose upper end is the random
mapping's — exactly how the paper visualizes Tables 1-3:

::

    190 |        :
    180 |        :   :
    170 |        :   :
    ...
    110 |    |   :   :
    100 +--*-+---+---+----
          1   2   3   4   (experiments)

``*`` marks runs that hit the lower bound exactly (termination condition
fired).
"""

from __future__ import annotations

from .stats import ExperimentRow

__all__ = ["render_histogram"]


def render_histogram(
    rows: list[ExperimentRow],
    title: str,
    step: int = 10,
) -> str:
    """Render the Fig. 25/26/27-style range histogram.

    Parameters
    ----------
    step:
        Vertical resolution in percentage points per text row.
    """
    if not rows:
        raise ValueError("no experiments to plot")
    if step < 1:
        raise ValueError("step must be >= 1")
    top = max(max(r.random_pct for r in rows), 110.0)
    top = int(-(-top // step) * step)  # round up to a grid line

    lines = [title]
    for level in range(top, 100, -step):
        cells = []
        for r in rows:
            lo, hi = r.ours_pct, r.random_pct
            # A bar row is drawn when the dashed range covers this band.
            band_lo, band_hi = level - step, level
            if lo < band_hi and hi > band_lo:
                cells.append("|" if lo >= band_lo else ":")
            else:
                cells.append(" ")
        lines.append(f"{level:4d} | " + "   ".join(cells))
    base = []
    for r in rows:
        base.append("*" if r.reached_lower_bound else "-")
    lines.append(" 100 +-" + "---".join(base) + "-")
    labels = "       " + "   ".join(f"{r.index:<1d}"[:1] for r in rows)
    lines.append(labels + "   (experiments; * = hit lower bound)")
    lines.append("ours = lower end of each bar, random mapping = upper end")
    return "\n".join(lines)
