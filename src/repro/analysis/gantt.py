"""ASCII Gantt charts in the style of the paper's Figs. 6, 10, 12 and 24.

The paper draws schedules as one column per processor with the time axis
running downward; tasks appear as boxes spanning their execution
interval.  :func:`render_gantt` reproduces that as monospace text:

::

    time | P0      P1      P2      P3
    -----+-------------------------------
       0 | [ 1]    .       .       .
       1 | [ 4]    .       .       .
       2 | [ 4]    [ 2]    .       .
       ...

Each cell shows the task occupying the processor at that time unit
(``[id]`` while running, ``.`` when idle).  When several tasks overlap on
one processor (the paper's model permits that), the cell stacks their
ids separated by ``/``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.evaluate import Schedule
from ..core.ideal import IdealSchedule

__all__ = ["render_gantt", "render_ideal_gantt", "render_sim_gantt"]


def render_gantt(
    schedule: Schedule,
    one_based: bool = True,
    max_rows: int = 200,
) -> str:
    """Render an assignment schedule as a paper-style time/processor grid.

    Parameters
    ----------
    one_based:
        Print task ids 1-based as the paper does.
    max_rows:
        Truncate (with an ellipsis line) beyond this many time rows.
    """
    ns = schedule.system.num_nodes
    columns: list[list[tuple[int, int, int]]] = []
    for p in range(ns):
        tasks = schedule.tasks_on(p)
        columns.append(
            [(int(t), int(schedule.start[t]), int(schedule.end[t])) for t in tasks]
        )
    return _render_grid(
        columns,
        horizon=schedule.total_time,
        header=[f"P{p}" for p in range(ns)],
        one_based=one_based,
        max_rows=max_rows,
    )


def render_ideal_gantt(
    ideal: IdealSchedule,
    one_based: bool = True,
    max_rows: int = 200,
) -> str:
    """Render the ideal graph as in Fig. 6 (one column per *cluster*)."""
    clustering = ideal.clustered.clustering
    columns = []
    for c in range(clustering.num_clusters):
        members = clustering.members(c)
        members = members[np.argsort(ideal.i_start[members], kind="stable")]
        columns.append(
            [(int(t), int(ideal.i_start[t]), int(ideal.i_end[t])) for t in members]
        )
    return _render_grid(
        columns,
        horizon=ideal.total_time,
        header=[f"C{c}" for c in range(clustering.num_clusters)],
        one_based=one_based,
        max_rows=max_rows,
    )


def render_sim_gantt(
    sim_result,
    num_processors: int | None = None,
    one_based: bool = True,
    max_rows: int = 200,
) -> str:
    """Render a :class:`~repro.sim.engine.SimResult` from its trace.

    Unlike :func:`render_gantt`, this uses the trace's per-processor task
    records, so serialized-processor runs show their true (queued)
    execution intervals rather than the analytic model's overlaps.
    """
    by_proc = sim_result.trace.tasks_by_processor()
    ns = (
        num_processors
        if num_processors is not None
        else (max(by_proc) + 1 if by_proc else 0)
    )
    columns = []
    for p in range(ns):
        columns.append(
            [(rec.task, rec.start, rec.end) for rec in by_proc.get(p, [])]
        )
    return _render_grid(
        columns,
        horizon=sim_result.makespan,
        header=[f"P{p}" for p in range(ns)],
        one_based=one_based,
        max_rows=max_rows,
    )


def _render_grid(
    columns: Sequence[Sequence[tuple[int, int, int]]],
    horizon: int,
    header: Sequence[str],
    one_based: bool,
    max_rows: int,
) -> str:
    offset = 1 if one_based else 0
    width = max(6, max((len(h) for h in header), default=2) + 2)

    def cell(entries: list[int]) -> str:
        if not entries:
            return "."
        return "/".join(f"[{t + offset}]" for t in entries)

    lines = []
    head = "time |" + "".join(h.ljust(width) for h in header)
    lines.append(head)
    lines.append("-" * 5 + "+" + "-" * (width * len(header)))
    rows = min(horizon, max_rows)
    for t in range(rows):
        cells = []
        for col in columns:
            running = [task for task, s, e in col if s <= t < e]
            cells.append(cell(running).ljust(width))
        lines.append(f"{t:4d} |" + "".join(cells))
    if horizon > max_rows:
        lines.append(f"  ...| ({horizon - max_rows} more time units)")
    lines.append(f"total time = {horizon}")
    return "\n".join(lines)
