"""Experiment statistics: the paper's reporting metrics.

Sec. 5 normalizes every run by its lower bound: the tables report
``100 * total_time / lower_bound`` for the proposed strategy and for the
averaged random mapping, and the *improvement* column is their
difference in percentage points.  :class:`ExperimentRow` captures one
table row; :func:`summarize_rows` aggregates a table the way the paper's
prose does (ranges, and how often the termination condition fired).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ExperimentRow", "TableSummary", "percent_over_bound", "summarize_rows"]


def percent_over_bound(total_time: float, lower_bound: int) -> float:
    """The paper's normalization: percentage of the lower bound (100 = met)."""
    if lower_bound <= 0:
        raise ValueError("lower bound must be positive")
    return 100.0 * total_time / lower_bound


@dataclass(frozen=True)
class ExperimentRow:
    """One row of a Table 1/2/3-style experiment."""

    index: int
    num_tasks: int
    num_processors: int
    topology: str
    lower_bound: int
    our_total_time: int
    random_mean_total_time: float
    reached_lower_bound: bool

    @property
    def ours_pct(self) -> float:
        """Column 2 of the paper's tables (ours, % of lower bound)."""
        return percent_over_bound(self.our_total_time, self.lower_bound)

    @property
    def random_pct(self) -> float:
        """Column 3 (random mapping, % of lower bound)."""
        return percent_over_bound(self.random_mean_total_time, self.lower_bound)

    @property
    def improvement(self) -> float:
        """Column 4: random minus ours, in percentage points."""
        return self.random_pct - self.ours_pct


@dataclass(frozen=True)
class TableSummary:
    """Aggregates the paper quotes in its prose."""

    rows: int
    ours_pct_min: float
    ours_pct_max: float
    random_pct_min: float
    random_pct_max: float
    improvement_min: float
    improvement_max: float
    improvement_mean: float
    lower_bound_hits: int

    def __str__(self) -> str:
        return (
            f"{self.rows} experiments: ours {self.ours_pct_min:.0f}-"
            f"{self.ours_pct_max:.0f}% of bound, random {self.random_pct_min:.0f}-"
            f"{self.random_pct_max:.0f}%, improvement {self.improvement_min:.0f}-"
            f"{self.improvement_max:.0f} points (mean {self.improvement_mean:.0f}), "
            f"{self.lower_bound_hits}/{self.rows} hit the lower bound"
        )


def summarize_rows(rows: list[ExperimentRow]) -> TableSummary:
    """Min/max/mean statistics over one experiment table."""
    if not rows:
        raise ValueError("cannot summarize an empty table")
    ours = np.asarray([r.ours_pct for r in rows])
    rand = np.asarray([r.random_pct for r in rows])
    imp = rand - ours
    return TableSummary(
        rows=len(rows),
        ours_pct_min=float(ours.min()),
        ours_pct_max=float(ours.max()),
        random_pct_min=float(rand.min()),
        random_pct_max=float(rand.max()),
        improvement_min=float(imp.min()),
        improvement_max=float(imp.max()),
        improvement_mean=float(imp.mean()),
        lower_bound_hits=sum(r.reached_lower_bound for r in rows),
    )
