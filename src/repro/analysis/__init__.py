"""Analysis and visualization: Gantt charts, tables, histograms, stats."""

from .gantt import render_gantt, render_ideal_gantt, render_sim_gantt
from .histogram import render_histogram
from .metrics import ScheduleMetrics, compute_metrics, format_metrics
from .report import mapping_report
from .stats import ExperimentRow, TableSummary, percent_over_bound, summarize_rows
from .tables import render_experiment_table, render_table

__all__ = [
    "ExperimentRow",
    "ScheduleMetrics",
    "TableSummary",
    "compute_metrics",
    "format_metrics",
    "mapping_report",
    "percent_over_bound",
    "render_experiment_table",
    "render_gantt",
    "render_histogram",
    "render_ideal_gantt",
    "render_sim_gantt",
    "render_table",
    "summarize_rows",
]
