"""Durable result store: fingerprint -> MapOutcome, over a pluggable backend.

The store is the persistence layer under the service cache.  Every
completed computation appends one canonical record
``{"fingerprint": ..., "outcome": {...}}`` through a
:class:`~repro.service.backends.StoreBackend` — append-only JSONL by
default, SQLite (WAL) for stores that need concurrent multi-process
writers — so a killed service leaves a recoverable store and the next
start re-serves every finished result without recomputation.

Durability is explicit: the default ``sync="always"`` policy fsyncs
(or ``synchronous=FULL``-commits) every append before ``put`` returns,
so a job acknowledged as done survives a crash of the whole machine;
``sync="never"`` trades that for lower write latency (see
:mod:`repro.service.backends`).

Outcomes round-trip *losslessly*: :func:`outcome_to_dict` /
:func:`outcome_from_dict` preserve every :class:`MapOutcome` field
including the assignment vector, ``wall_time``, and ``extras``, which is
what lets a warm-cache hit return the stored outcome bit-identically.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

import numpy as np

from ..api.outcome import MapOutcome
from ..core.assignment import Assignment
from ..utils import MappingError
from .backends import StoreBackend, open_backend

__all__ = ["ResultStore", "outcome_from_dict", "outcome_to_dict"]


def outcome_to_dict(outcome: MapOutcome) -> dict[str, Any]:
    """Lossless plain-dict form of a :class:`MapOutcome`."""
    data = {
        "mapper": outcome.mapper,
        "assignment": [int(p) for p in outcome.assignment.assi.tolist()],
        "total_time": int(outcome.total_time),
        "lower_bound": int(outcome.lower_bound),
        "evaluations": int(outcome.evaluations),
        "reached_lower_bound": bool(outcome.reached_lower_bound),
        "wall_time": float(outcome.wall_time),
        "extras": {k: float(v) for k, v in sorted(outcome.extras.items())},
    }
    if outcome.metrics:
        data["metrics"] = {k: float(v) for k, v in sorted(outcome.metrics.items())}
    if outcome.portfolio:
        data["portfolio"] = outcome.portfolio
    return data


def outcome_from_dict(data: dict[str, Any]) -> MapOutcome:
    """Inverse of :func:`outcome_to_dict`."""
    if not isinstance(data, dict):
        raise MappingError(f"a stored outcome must be a dict, got {data!r}")
    try:
        return MapOutcome(
            mapper=data["mapper"],
            assignment=Assignment(np.asarray(data["assignment"], dtype=np.int64)),
            total_time=int(data["total_time"]),
            lower_bound=int(data["lower_bound"]),
            evaluations=int(data["evaluations"]),
            reached_lower_bound=bool(data["reached_lower_bound"]),
            wall_time=float(data["wall_time"]),
            extras={k: float(v) for k, v in data.get("extras", {}).items()},
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            portfolio=dict(data.get("portfolio") or {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MappingError(f"malformed stored outcome: {exc}") from None


class ResultStore:
    """Fingerprint -> outcome store that survives restarts.

    Parameters
    ----------
    path:
        Backing file; created on first write (JSONL) or at open
        (SQLite).  An existing store — even one torn by a crash — is
        recovered at construction and its results are served without
        recomputation.  ``None`` keeps the store purely in memory.
    backend:
        ``"jsonl"``, ``"sqlite"``, an already-open
        :class:`~repro.service.backends.StoreBackend`, or ``"auto"``
        (the default: pick by path suffix — ``.db``/``.sqlite``/
        ``.sqlite3`` mean SQLite, anything else JSONL).
    sync:
        Durability policy, ``"always"`` (fsync every append; the
        default) or ``"never"`` (flush only).

    The store is thread-safe: the HTTP front-end's worker threads and
    pool completion callbacks may read and write concurrently.  The
    JSONL backend additionally enforces a single *writer process* via a
    ``<path>.lock`` file; use the SQLite backend when several processes
    must append to one store.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        backend: str | StoreBackend = "auto",
        sync: str = "always",
    ) -> None:
        self._backend: StoreBackend | None = None
        if path is not None:
            if isinstance(backend, str):
                self._backend = open_backend(path, backend=backend, sync=sync)
            else:
                self._backend = backend
        self._records: dict[str, dict[str, Any]] = (
            self._backend.load() if self._backend is not None else {}
        )
        self._metas: dict[str, dict[str, Any]] = (
            self._backend.metas() if self._backend is not None else {}
        )
        self._lock = threading.Lock()
        self._closed = False
        self.recovered = len(self._records)

    @property
    def path(self) -> Path | None:
        return self._backend.path if self._backend is not None else None

    @property
    def backend_name(self) -> str | None:
        """The persistence backend in use (``None`` for memory-only)."""
        return self._backend.name if self._backend is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._records

    def get(self, fingerprint: str) -> MapOutcome | None:
        """The stored outcome under ``fingerprint``, or ``None``."""
        with self._lock:
            data = self._records.get(fingerprint)
        return outcome_from_dict(data) if data is not None else None

    def put(
        self,
        fingerprint: str,
        outcome: MapOutcome,
        meta: dict[str, Any] | None = None,
    ) -> bool:
        """Store ``outcome``; returns False (and writes nothing) on a dup.

        First write wins: a fingerprint names one pure computation, so a
        duplicate can only be the same result recomputed.  A closed
        store refuses the write (returns False) rather than silently
        reopening its file.  ``meta`` rides along with the record —
        family/mapper context the recommender mines
        (:mod:`repro.portfolio.recommend`); it never affects lookups.
        """
        data = outcome_to_dict(outcome)
        with self._lock:
            if self._closed or fingerprint in self._records:
                return False
            self._records[fingerprint] = data
            if meta:
                self._metas[fingerprint] = dict(meta)
            if self._backend is not None:
                self._backend.append(fingerprint, data, meta)
        return True

    def iter_records(
        self,
    ) -> list[tuple[str, dict[str, Any], dict[str, Any] | None]]:
        """Snapshot of ``(fingerprint, outcome dict, meta or None)`` rows.

        The recommender's mining input — taken under the lock, so a
        concurrent ``put`` never tears the view.
        """
        with self._lock:
            return [
                (fp, data, self._metas.get(fp))
                for fp, data in self._records.items()
            ]

    def close(self) -> None:
        """Flush and close the backend; later ``put`` calls are refused."""
        with self._lock:
            self._closed = True
            if self._backend is not None:
                self._backend.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self._backend is not None else "memory"
        return f"ResultStore({where!r}, results={len(self)})"
