"""Durable result store: fingerprint -> MapOutcome, as append-only JSONL.

The store is the persistence layer under the service cache.  Every
completed computation appends one canonical record
``{"fingerprint": ..., "outcome": {...}}`` (flushed immediately, via
:func:`repro.io.jsonl.write_record`), so a killed service leaves a
readable prefix and the next start recovers every finished result
through the tail-tolerant :func:`repro.io.jsonl.read_jsonl` reader —
exactly the crash model the sweep checkpoints already use.

Outcomes round-trip *losslessly*: :func:`outcome_to_dict` /
:func:`outcome_from_dict` preserve every :class:`MapOutcome` field
including the assignment vector, ``wall_time``, and ``extras``, which is
what lets a warm-cache hit return the stored outcome bit-identically.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, TextIO

import numpy as np

from ..api.outcome import MapOutcome
from ..core.assignment import Assignment
from ..io.jsonl import read_jsonl, write_record
from ..utils import MappingError

__all__ = ["ResultStore", "outcome_from_dict", "outcome_to_dict"]


def outcome_to_dict(outcome: MapOutcome) -> dict[str, Any]:
    """Lossless plain-dict form of a :class:`MapOutcome`."""
    data = {
        "mapper": outcome.mapper,
        "assignment": [int(p) for p in outcome.assignment.assi.tolist()],
        "total_time": int(outcome.total_time),
        "lower_bound": int(outcome.lower_bound),
        "evaluations": int(outcome.evaluations),
        "reached_lower_bound": bool(outcome.reached_lower_bound),
        "wall_time": float(outcome.wall_time),
        "extras": {k: float(v) for k, v in sorted(outcome.extras.items())},
    }
    if outcome.metrics:
        data["metrics"] = {k: float(v) for k, v in sorted(outcome.metrics.items())}
    return data


def outcome_from_dict(data: dict[str, Any]) -> MapOutcome:
    """Inverse of :func:`outcome_to_dict`."""
    if not isinstance(data, dict):
        raise MappingError(f"a stored outcome must be a dict, got {data!r}")
    try:
        return MapOutcome(
            mapper=data["mapper"],
            assignment=Assignment(np.asarray(data["assignment"], dtype=np.int64)),
            total_time=int(data["total_time"]),
            lower_bound=int(data["lower_bound"]),
            evaluations=int(data["evaluations"]),
            reached_lower_bound=bool(data["reached_lower_bound"]),
            wall_time=float(data["wall_time"]),
            extras={k: float(v) for k, v in data.get("extras", {}).items()},
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MappingError(f"malformed stored outcome: {exc}") from None


class ResultStore:
    """Append-only fingerprint -> outcome store that survives restarts.

    Parameters
    ----------
    path:
        JSONL file; created on first write.  An existing file (even one
        with a torn final line from a crash) is loaded at construction
        and its results are served without recomputation.  ``None``
        keeps the store purely in memory.

    The store is thread-safe: the HTTP front-end's worker threads and
    pool completion callbacks may read and write concurrently.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._fh: TextIO | None = None
        self._closed = False
        self.recovered = 0
        if self._path is not None and self._path.exists():
            for record in read_jsonl(self._path, tolerate_partial=True):
                fp = record.get("fingerprint")
                outcome = record.get("outcome")
                if isinstance(fp, str) and isinstance(outcome, dict):
                    self._records.setdefault(fp, outcome)
            self.recovered = len(self._records)

    @property
    def path(self) -> Path | None:
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._records

    def get(self, fingerprint: str) -> MapOutcome | None:
        """The stored outcome under ``fingerprint``, or ``None``."""
        with self._lock:
            data = self._records.get(fingerprint)
        return outcome_from_dict(data) if data is not None else None

    def put(self, fingerprint: str, outcome: MapOutcome) -> bool:
        """Store ``outcome``; returns False (and writes nothing) on a dup.

        First write wins: a fingerprint names one pure computation, so a
        duplicate can only be the same result recomputed.  A closed
        store refuses the write (returns False) rather than silently
        reopening its file.
        """
        data = outcome_to_dict(outcome)
        with self._lock:
            if self._closed or fingerprint in self._records:
                return False
            self._records[fingerprint] = data
            if self._path is not None:
                if self._fh is None:
                    self._path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = self._path.open("a")
                write_record(self._fh, {"fingerprint": fingerprint, "outcome": data})
        return True

    def close(self) -> None:
        """Flush and close the file; later ``put`` calls are refused."""
        with self._lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self._path) if self._path else "memory"
        return f"ResultStore({where!r}, results={len(self)})"
