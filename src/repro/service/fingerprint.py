"""Content-addressed identity of a mapping computation.

A fingerprint is the SHA-256 of a canonical JSON encoding of *everything
the result depends on*: the task graph, the clustering, the system graph
(including heterogeneous link weights), the mapper name, its constructor
parameters, and the seed.  Two solves with equal fingerprints are the
same pure computation — every registered mapper is deterministic given
an integer seed — so the :mod:`repro.service` cache can return the
stored :class:`~repro.api.outcome.MapOutcome` bit-identically instead of
recomputing.

Scenario runs get the same treatment through
:func:`scenario_fingerprint`: a sweep record is a pure function of
``(scenario, replica)`` (see :mod:`repro.api.sweep`), so the scenario's
canonical dict plus the replica index is the whole identity.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph

__all__ = [
    "canonical_json",
    "instance_fingerprint",
    "scenario_fingerprint",
]

#: Version tag mixed into every digest; bump when the canonical encoding
#: changes so stale stores can never alias new computations.
FINGERPRINT_VERSION = 1


def _jsonable(value: object) -> object:
    """Last-resort canonicalization for non-JSON parameter values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, repr fallback."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def _digest(payload: Mapping[str, Any]) -> str:
    blob = canonical_json({"v": FINGERPRINT_VERSION, **payload})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _system_payload(system: SystemGraph) -> dict[str, Any]:
    """System identity: nodes + links (+ weights when heterogeneous).

    The display ``name`` is deliberately excluded — two hypercubes built
    by different generators are the same machine.
    """
    payload: dict[str, Any] = {
        "num_nodes": system.num_nodes,
        "edges": [
            [i, j]
            for i in range(system.num_nodes)
            for j in system.neighbors(i).tolist()
            if i < j
        ],
    }
    if system.is_weighted:
        payload["link_weights"] = [
            [i, j, system.link_weight(i, j)]
            for i in range(system.num_nodes)
            for j in system.neighbors(i).tolist()
            if i < j
        ]
    return payload


def instance_fingerprint(
    clustered: ClusteredGraph,
    system: SystemGraph,
    mapper: str,
    params: Mapping[str, object],
    seed: int,
) -> str:
    """Fingerprint of one ``solve``: full instance + mapper config + seed."""
    graph = clustered.graph
    payload = {
        "kind": "instance",
        "task_sizes": graph.task_sizes.tolist(),
        "task_edges": [[e.src, e.dst, e.weight] for e in graph.edges()],
        "clustering": {
            "num_clusters": clustered.clustering.num_clusters,
            "labels": clustered.clustering.labels.tolist(),
        },
        "system": _system_payload(system),
        "mapper": mapper,
        "params": {k: params[k] for k in sorted(params)},
        "seed": int(seed),
    }
    return _digest(payload)


def scenario_fingerprint(scenario: Any, replica: int = 0) -> str:
    """Fingerprint of one sweep run: the scenario's canonical key + replica.

    :meth:`repro.api.scenario.Scenario.key` already excludes the fields a
    run's result does not depend on (``name``, ``replicas``), so two
    specs that pin the same (workload, clustering, topology, mapper,
    params, seed) point share a fingerprint regardless of how many
    replicas either sweep asked for.  The import is structural (anything
    with ``key()``) to keep this module free of api-layer imports.
    """
    payload = {
        "kind": "scenario",
        "key": scenario.key(),
        "replica": int(replica),
    }
    return _digest(payload)
