"""The long-lived :class:`MappingService`: pool + cache + jobs in one place.

Where :func:`repro.api.solve` is a one-shot call, a ``MappingService``
is the resident object a resource manager (or the ``mimdmap serve``
HTTP front-end) keeps around between requests:

* **persistent worker pool** — one ``ProcessPoolExecutor`` created
  lazily and reused for every batch and async job, so pool startup is
  paid once per process instead of once per call;
* **content-addressed cache** — results are keyed by the fingerprint of
  (task graph, clustering, system, mapper, params, seed); a repeated
  solve returns the stored :class:`MapOutcome` bit-identically with *no*
  worker execution, optionally durably (:class:`ResultStore` JSONL that
  survives restarts);
* **async jobs** — :meth:`submit` / :meth:`submit_scenario` return a
  :class:`Job` with an id, a status, and a blocking ``result()``;
  identical in-flight submissions are deduplicated onto the same job.

The :mod:`repro.api` facade functions are thin clients of the module's
*default service* (:func:`default_service`), which is how plain
``solve_many``/``compare``/``run_scenarios`` calls amortize pool startup
across calls without any API change.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.clustered import ClusteredGraph, Clustering
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from ..utils import MappingError
from .cache import OutcomeCache
from .fingerprint import instance_fingerprint, scenario_fingerprint
from .store import ResultStore, outcome_to_dict

__all__ = [
    "Job",
    "MappingService",
    "ServiceSaturatedError",
    "WrongShardError",
    "default_service",
    "set_default_service",
    "shutdown_default_service",
]


class ServiceSaturatedError(MappingError):
    """The admission queue is full; retry after ``retry_after`` seconds.

    Raised instead of queueing without bound when a service configured
    with ``queue_limit`` already has that many unfinished jobs.  The
    HTTP front-end maps this to ``429`` with a ``Retry-After`` header —
    backpressure the gateway and clients can act on.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class WrongShardError(MappingError):
    """This service does not own the submitted fingerprint's keyspace.

    Raised by a service configured with a ``keyspace`` slice when a
    submission's fingerprint falls outside it — the signature of a
    request that bypassed (or disagreed with) the gateway's routing.
    The HTTP front-end maps this to ``421 Misdirected Request``.
    """


@dataclass(frozen=True)
class _SolveTask:
    """One cache-missed solve, shipped whole to a worker (all picklable)."""

    clustered: ClusteredGraph
    system: SystemGraph
    mapper: Any  # a built Mapper (the protocol requires picklability)
    seed: int | None


@dataclass(frozen=True)
class _ScenarioTask:
    """One sweep run by spec; the instance is built worker-side."""

    scenario: Any  # repro.api.scenario.Scenario
    replica: int


def _execute_solve(task: _SolveTask):
    """Module-level so it pickles by name; the single worker entry point
    for instance jobs (tests instrument it to prove cache hits skip it)."""
    return task.mapper.map(task.clustered, task.system, rng=task.seed)


def _instance_meta(
    clustered: ClusteredGraph, system: SystemGraph, mapper: str, params
) -> dict[str, Any]:
    """The recommender's context for one instance solve: family keys plus
    the mapper configuration that produced the result."""
    from ..portfolio.recommend import family_of

    return {
        "workload": family_of(clustered.graph.name),
        "topology": family_of(system.name),
        "mapper": mapper,
        "params": dict(params),
    }


def _execute_scenario(task: _ScenarioTask):
    """Worker entry point for scenario jobs.

    Delegates to the sweep engine's single run definition, so async jobs
    and synchronous sweeps can never diverge for the same fingerprint.
    """
    from ..api.sweep import run_scenario_once

    return run_scenario_once(task.scenario, task.replica)


class Job:
    """Handle to one asynchronous service computation.

    ``status`` is one of ``pending`` (queued), ``running``, ``done``, or
    ``failed``; ``cached`` marks a job answered from the cache without
    any execution.  ``result()`` blocks until completion and re-raises
    the worker's exception for failed jobs.
    """

    def __init__(self, job_id: str, fingerprint: str | None, cached: bool = False):
        self.id = job_id
        self.fingerprint = fingerprint
        self.cached = cached
        # Family/mapper context stored alongside the result for the
        # recommender (see MappingService.recommend); never keyed on.
        self.meta: dict[str, Any] | None = None
        self._future: Future = Future()
        # The pool-side future, when this job is executing remotely; lets
        # ``status`` distinguish queued from actually-running work.
        self._backing: Future | None = None

    @classmethod
    def completed(cls, job_id: str, fingerprint: str | None, outcome, cached: bool):
        job = cls(job_id, fingerprint, cached=cached)
        job._future.set_result(outcome)
        return job

    @property
    def status(self) -> str:
        if self._future.done():
            return "failed" if self._future.exception() is not None else "done"
        if self._backing is not None and self._backing.running():
            return "running"
        return "pending"

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None):
        """The job's :class:`MapOutcome` (blocks; raises on failure)."""
        return self._future.result(timeout)

    @property
    def error(self) -> str | None:
        """The failure message for ``failed`` jobs, else ``None``."""
        if self._future.done() and self._future.exception() is not None:
            return str(self._future.exception())
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (the HTTP front-end's ``GET /jobs/<id>`` body)."""
        status = self.status  # read once: it may advance mid-serialization
        payload: dict[str, Any] = {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "status": status,
            "cached": self.cached,
        }
        if status == "done":
            payload["outcome"] = outcome_to_dict(self._future.result())
        elif status == "failed":
            payload["error"] = self.error
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job(id={self.id!r}, status={self.status!r}, cached={self.cached})"


class MappingService:
    """A persistent mapping server: solve, batch, and submit with caching.

    Parameters
    ----------
    max_workers:
        Size of the persistent process pool (``None`` = one per CPU).
        The pool is created lazily on the first parallel/async call —
        a service used only for cached or inline work never forks.
    store_path:
        Optional JSONL path for the durable result store.  An existing
        file is recovered at construction, so identical solves from a
        previous service life are answered without recompute.
    store_backend:
        Persistence backend for ``store_path``: ``"jsonl"``,
        ``"sqlite"``, or ``"auto"`` (pick by suffix; see
        :mod:`repro.service.backends`).
    store_sync:
        Store durability policy: ``"always"`` (fsync every completed
        job before acknowledging it; the default) or ``"never"``.
    cache_size:
        In-memory LRU capacity (evictions fall back to the store).
    queue_limit:
        Admission bound: the maximum number of unfinished async jobs
        (queued + running) this service accepts.  Beyond it, new
        non-cached submissions raise :class:`ServiceSaturatedError`
        instead of queueing without bound; cache hits and dedup onto
        already-in-flight work are always admitted (they add no load).
        ``None`` (the default) means unbounded; ``0`` refuses all new
        work while still serving cached results — drain mode.
    retry_after:
        The back-off hint (seconds) carried by
        :class:`ServiceSaturatedError` and the HTTP ``Retry-After``
        header.
    keyspace:
        Optional keyspace slice this service owns (an object with
        ``contains(fingerprint)`` and ``to_dict()``, i.e. a
        :class:`~repro.service.shard.KeyspaceSlice`).  Submissions
        whose fingerprint falls outside it raise
        :class:`WrongShardError` — shards of a fleet refuse misrouted
        traffic rather than double-serving the keyspace.
    job_history:
        How many *finished* jobs stay addressable by id (oldest finished
        jobs are forgotten beyond this; in-flight jobs are never
        evicted).  Keeps a long-lived server's memory bounded — results
        themselves live on in the cache/store regardless.

    Only computations whose inputs are fully content-addressable are
    cached: the mapper must be given *by registry name* (so its params
    are known) and ``rng`` must be an integer seed.  Instantiated mapper
    objects and generator/``None`` rngs execute normally, every time.

    One sharp edge of pool persistence: workers snapshot the process
    state (including the component registries) when the pool starts, so
    components registered *after* the first parallel call are unknown to
    spec-shipping work (scenario jobs, sweeps) until
    :meth:`restart_pool` — batch items are immune, they ship built
    mappers.  Register custom components up front, or restart the pool
    after registering.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        store_path: str | Path | None = None,
        store_backend: str = "auto",
        store_sync: str = "always",
        cache_size: int = 1024,
        queue_limit: int | None = None,
        retry_after: float = 1.0,
        keyspace=None,
        job_history: int = 1024,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise MappingError(f"max_workers must be >= 1, got {max_workers}")
        if job_history < 1:
            raise MappingError(f"job_history must be >= 1, got {job_history}")
        if queue_limit is not None and queue_limit < 0:
            raise MappingError(f"queue_limit must be >= 0, got {queue_limit}")
        if retry_after <= 0:
            raise MappingError(f"retry_after must be > 0, got {retry_after}")
        self._max_workers = max_workers
        self._store = (
            ResultStore(store_path, backend=store_backend, sync=store_sync)
            if store_path is not None
            else None
        )
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self.keyspace = keyspace
        self.cache = OutcomeCache(cache_size, store=self._store)
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # insertion-ordered: oldest first
        self._job_history = job_history
        self._inflight: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._executed = 0  # computations the service ran to completion
        self._active = 0  # async jobs scheduled but not yet resolved

    # -- pool ----------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._max_workers or os.cpu_count() or 1

    @property
    def executed(self) -> int:
        """How many computations this service ran to completion (cache
        hits and failed runs excluded; inline ``max_workers=1`` batches
        never reach the service, so they are not counted here)."""
        with self._lock:
            return self._executed

    def _count_execution(self) -> None:
        with self._lock:
            self._executed += 1

    @property
    def pool_started(self) -> bool:
        return self._pool is not None

    def executor(self) -> ProcessPoolExecutor:
        """The persistent pool, created on first use."""
        with self._lock:
            if self._closed:
                raise MappingError("MappingService is closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def restart_pool(self) -> None:
        """Retire the persistent pool; the next parallel call starts a
        fresh one that sees the *current* registry contents.

        Needed after registering custom mappers/workloads/clusterers/
        topologies once the pool is already warm: existing workers hold
        the registries as they were at pool startup, so spec-shipping
        work (scenario jobs, sweeps) cannot resolve later registrations
        until the workers are replaced.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def run_on_pool(
        self,
        items: Sequence,
        solve: Callable,
        max_workers: int | None = None,
    ) -> Iterator[tuple[object, Any]]:
        """Yield ``(item, solve(item))`` in completion order, on the pool.

        At most ``max_workers`` items are in flight at once (windowed
        submission), so a caller's concurrency cap is honored even
        though the underlying pool is shared and sized once.
        """
        pool = self.executor()
        limit = max(1, min(max_workers or self.workers, len(items)))
        pending: dict[Future, object] = {}
        queue = iter(items)
        try:
            for item in itertools.islice(queue, limit):
                pending[pool.submit(solve, item)] = item
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    item = pending.pop(future)
                    result = future.result()
                    self._count_execution()
                    yield item, result
                for item in itertools.islice(queue, len(done)):
                    pending[pool.submit(solve, item)] = item
        finally:
            for future in pending:
                future.cancel()

    # -- synchronous solve ---------------------------------------------

    def solve(
        self,
        graph: TaskGraph,
        clustering: Clustering,
        system: SystemGraph,
        mapper="critical",
        rng: int | np.random.Generator | None = None,
        **params: object,
    ):
        """Cache-aware equivalent of :func:`repro.api.solve`."""
        return self.solve_instance(
            ClusteredGraph(graph, clustering), system, mapper=mapper, rng=rng, **params
        )

    def solve_instance(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        mapper="critical",
        rng: int | np.random.Generator | None = None,
        **params: object,
    ):
        """Solve one instance; identical repeats come from the cache.

        Cache hits return the stored outcome (bit-identical, including
        ``wall_time``) without touching the pool or the mapper.
        """
        with self._lock:
            if self._closed:
                raise MappingError("MappingService is closed")
        built, fingerprint = self._prepare(clustered, system, mapper, rng, params)
        if fingerprint is not None:
            cached = self.cache.get(fingerprint)
            if cached is not None:
                return cached
        outcome = _execute_solve(_SolveTask(clustered, system, built, _as_seed(rng)))
        self._count_execution()
        if fingerprint is not None:
            self.cache.put(
                fingerprint,
                outcome,
                _instance_meta(clustered, system, str(mapper), params),
            )
        return outcome

    # -- async jobs -----------------------------------------------------

    def submit(
        self,
        graph: TaskGraph,
        clustering: Clustering,
        system: SystemGraph,
        mapper="critical",
        rng: int | np.random.Generator | None = None,
        **params: object,
    ) -> Job:
        """Queue one solve on the pool; returns immediately with a :class:`Job`."""
        clustered = ClusteredGraph(graph, clustering)
        built, fingerprint = self._prepare(clustered, system, mapper, rng, params)
        task = _SolveTask(clustered, system, built, _as_seed(rng))
        meta = (
            _instance_meta(clustered, system, str(mapper), params)
            if fingerprint is not None
            else None
        )
        return self._submit_task(fingerprint, _execute_solve, task, meta=meta)

    def submit_scenario(self, scenario, replica: int = 0) -> Job:
        """Queue one sweep run (see :mod:`repro.api.sweep`) as an async job.

        Scenario runs are pure functions of ``(scenario, replica)``, so
        they are always cacheable.
        """
        if replica < 0 or replica >= scenario.replicas:
            raise MappingError(
                f"replica {replica} out of range for a scenario with "
                f"{scenario.replicas} replica(s)"
            )
        fingerprint = scenario_fingerprint(scenario, replica)
        task = _ScenarioTask(scenario, replica)
        meta = {
            "workload": scenario.workload,
            "topology": scenario.topology.split(":")[0],
            "mapper": scenario.mapper,
            "params": dict(scenario.mapper_params),
        }
        return self._submit_task(fingerprint, _execute_scenario, task, meta=meta)

    def _submit_task(
        self,
        fingerprint: str | None,
        execute: Callable,
        task,
        meta: dict[str, Any] | None = None,
    ) -> Job:
        with self._lock:
            if self._closed:
                raise MappingError("MappingService is closed")
        if fingerprint is not None:
            if self.keyspace is not None and not self.keyspace.contains(fingerprint):
                raise WrongShardError(
                    f"fingerprint {fingerprint[:12]}... is outside this "
                    f"shard's keyspace slice {self.keyspace.describe()}"
                )
            cached = self.cache.get(fingerprint)
            if cached is not None:
                job = Job.completed(self._next_id(), fingerprint, cached, cached=True)
                self._register(job)
                return job
            # Atomic check-and-insert: concurrent identical submissions
            # (two HTTP threads POSTing the same body) must converge on
            # one job, so the inflight lookup, the cache re-check, the
            # admission check, and the registration happen under one
            # lock hold.  The cache's own lock is a leaf lock, so
            # nesting it here is safe.
            with self._lock:
                inflight = self._inflight.get(fingerprint)
                if inflight is not None:
                    return inflight
                finished = self.cache.get(fingerprint)
                if finished is not None:
                    job = Job.completed(
                        self._next_id(), fingerprint, finished, cached=True
                    )
                    self._register_locked(job)
                    return job
                self._admit_locked()
                job = Job(self._next_id(), fingerprint)
                job.meta = meta
                self._register_locked(job)
                self._inflight[fingerprint] = job
        else:
            with self._lock:
                self._admit_locked()
                job = Job(self._next_id(), fingerprint)
                job.meta = meta
                self._register_locked(job)
        try:
            job._backing = self.executor().submit(execute, task)
        # repro: allow[inv_bare_except] - cleanup only; re-raised unchanged below
        except BaseException as exc:
            # Registration already happened; the job must resolve and the
            # fingerprint must be reclaimed, or every future identical
            # submission would dedupe onto a zombie that never finishes.
            job._future.set_exception(
                MappingError(f"job {job.id} could not be scheduled: {exc}")
            )
            with self._lock:
                self._active -= 1
                if fingerprint is not None:
                    self._inflight.pop(fingerprint, None)
            raise
        job._backing.add_done_callback(lambda f: self._finish(job, f))
        return job

    def _admit_locked(self) -> None:
        """Admission control: count one more active job or refuse (429)."""
        if self.queue_limit is not None and self._active >= self.queue_limit:
            raise ServiceSaturatedError(
                f"admission queue full ({self._active} active job(s), "
                f"limit {self.queue_limit}); retry after "
                f"{self.retry_after:g}s",
                self.retry_after,
            )
        self._active += 1

    def _finish(self, job: Job, future: Future) -> None:
        try:
            if future.cancelled():
                # Pool shutdown cancelled the queued work; a Job must
                # still resolve or clients block in result() forever.
                job._future.set_exception(
                    MappingError(f"job {job.id} cancelled (service shut down)")
                )
            elif future.exception() is not None:
                job._future.set_exception(future.exception())
            else:
                self._count_execution()
                # Resolve the job first: a cache/store hiccup (e.g. a
                # full disk) must never leave result() blocking.
                job._future.set_result(future.result())
                if job.fingerprint is not None:
                    try:
                        self.cache.put(job.fingerprint, future.result(), job.meta)
                    # Best-effort cache fill: the job already resolved, and a
                    # persistence failure (full disk, torn store) must never
                    # turn a computed result into an error.
                    # repro: allow[inv_bare_except]
                    except Exception:  # pragma: no cover - best effort
                        pass
        finally:
            with self._lock:
                self._active -= 1
                if job.fingerprint is not None:
                    self._inflight.pop(job.fingerprint, None)

    def job(self, job_id: str) -> Job | None:
        """Look an async job up by id (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every remembered job, oldest first (see ``job_history``)."""
        with self._lock:
            return list(self._jobs.values())

    def _next_id(self) -> str:
        return f"job-{next(self._ids)}"

    def _register(self, job: Job) -> None:
        with self._lock:
            self._register_locked(job)

    def _register_locked(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) <= self._job_history:
            return
        # Evict oldest *finished* jobs only: an in-flight job must stay
        # addressable until it resolves, and the entry just handed to
        # the caller must survive its own registration even when it is
        # already done (a cache-hit job on a table full of running ones).
        for job_id in [
            j.id for j in self._jobs.values() if j.done() and j.id != job.id
        ][: len(self._jobs) - self._job_history]:
            del self._jobs[job_id]

    # -- plumbing -------------------------------------------------------

    def _prepare(self, clustered, system, mapper, rng, params):
        """Resolve the mapper and (when content-addressable) fingerprint."""
        from ..api.registry import get_mapper

        if isinstance(mapper, str):
            built = get_mapper(mapper, **params)
            if not getattr(built, "cacheable", True):
                # e.g. portfolio(arms="auto"): the arm list comes from
                # recorded history, so the same inputs can legitimately
                # produce different outcomes as the store grows.
                return built, None
            if not isinstance(rng, int) or isinstance(rng, bool):
                # None draws fresh entropy and a Generator carries hidden
                # state — neither names a pure computation, so no caching.
                return built, None
            return built, instance_fingerprint(
                clustered, system, mapper, params, int(rng)
            )
        if params:
            raise TypeError(
                "mapper parameters can only be given with a mapper *name*; "
                f"got an instantiated mapper and params {sorted(params)}"
            )
        return mapper, None

    def active_jobs(self) -> int:
        """Async jobs scheduled but not yet resolved (queued + running)."""
        with self._lock:
            return self._active

    def drain(self, timeout: float | None = None) -> int:
        """Block until every in-flight async job resolves (or timeout).

        Returns the number of jobs still unfinished — 0 means a clean
        drain.  The graceful-shutdown sequence is: stop accepting new
        work (close the HTTP server, or set ``queue_limit = 0``),
        ``drain()``, then :meth:`close` to flush the store.
        """
        deadline = (
            None
            if timeout is None
            else time.monotonic() + timeout  # repro: allow[det_wall_clock]
        )
        while True:
            active = self.active_jobs()
            if active == 0:
                return 0
            if deadline is not None:
                if time.monotonic() >= deadline:  # repro: allow[det_wall_clock]
                    return active
            time.sleep(0.02)

    def recommend(self, workload: str, topology: str) -> dict[str, Any] | None:
        """The learned default for a ``(workload, topology)`` family key.

        Mines the durable store's records (every completed job that
        carried family meta) and returns the recommendation payload of
        :func:`repro.portfolio.recommend.mine_records` — or ``None``
        when the service has no store or the store holds no evidence
        for the key (the HTTP layer's 404).
        """
        if self._store is None:
            return None
        from ..portfolio.recommend import mine_records

        return mine_records(self._store.iter_records(), workload, topology)

    def stats(self) -> dict[str, Any]:
        """One JSON-ready snapshot (the HTTP ``GET /health`` body).

        Besides the pool/cache/job counters this carries everything the
        gateway (and an operator) needs for routing and alerting
        decisions: the admission queue's depth, running count, and
        limit; the durable store's backend, path, and record count; and
        the shard's keyspace slice when it serves one.
        """
        with self._lock:
            jobs = list(self._jobs.values())
            active = self._active
        by_status: dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "workers": self.workers,
            "pool_started": self.pool_started,
            "executed": self.executed,
            "jobs": {"total": len(jobs), **by_status},
            "queue": {
                "depth": by_status.get("pending", 0),
                "running": by_status.get("running", 0),
                "active": active,
                "limit": self.queue_limit,
                "retry_after": self.retry_after,
            },
            "keyspace": (
                self.keyspace.to_dict() if self.keyspace is not None else None
            ),
            "cache": self.cache.stats(),
            "store": (
                {
                    "path": str(self._store.path),
                    "backend": self._store.backend_name,
                    "records": len(self._store),
                }
                if self._store is not None
                else None
            ),
        }

    def close(self) -> None:
        """Shut the pool and store down; further submissions raise."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappingService(workers={self.workers}, "
            f"pool_started={self.pool_started}, jobs={len(self._jobs)})"
        )


def _as_seed(rng) -> int | np.random.Generator | None:
    """Normalize the cacheable case (plain int) without touching the rest."""
    if isinstance(rng, int) and not isinstance(rng, bool):
        return int(rng)
    return rng


# -- the default service -----------------------------------------------

_default: MappingService | None = None
_default_lock = threading.Lock()


def default_service() -> MappingService:
    """The process-wide service the :mod:`repro.api` facade delegates to.

    Created lazily with default settings (CPU-count pool, memory-only
    cache); replace it with :func:`set_default_service` to add a durable
    store or bound the workers.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = MappingService()
        return _default


def set_default_service(service: MappingService | None) -> MappingService | None:
    """Swap the process-wide default service; returns the previous one.

    The previous service is *not* closed (the caller may still hold
    jobs on it); pass ``None`` to reset to lazy re-creation.
    """
    global _default
    with _default_lock:
        previous, _default = _default, service
    return previous


@atexit.register
def shutdown_default_service() -> None:
    """Close the default service (idempotent; registered atexit)."""
    global _default
    with _default_lock:
        service, _default = _default, None
    if service is not None:
        service.close()
