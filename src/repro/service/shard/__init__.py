"""Sharded serving fleet: fingerprint-routed shards behind one gateway.

One :class:`~repro.service.MappingService` caps out at a single process
pool and a single store.  This package splits the content-addressed
SHA-256 fingerprint keyspace across N independent service instances
("shards") and puts a thin stdlib-HTTP gateway in front:

* :mod:`~repro.service.shard.keyspace` — the routing arithmetic: every
  fingerprint's leading 16 bits pick exactly one
  :class:`KeyspaceSlice`, and :func:`shard_for_fingerprint` and
  :meth:`KeyspaceSlice.for_shard` are consistent by construction;
* :mod:`~repro.service.shard.gateway` — ``mimdmap gateway``: proxies
  ``POST /jobs`` / ``GET /jobs/<id>`` to the owning shard (with
  bounded retries before surfacing 502), aggregates ``GET /health``
  and ``GET /jobs`` across the fleet, and relays backpressure
  (429 + ``Retry-After``) untouched.

Shards themselves are plain ``mimdmap serve`` processes started with
``--shard-index/--shard-count`` (keyspace enforcement: a misrouted
fingerprint is refused with 421) and ``--queue-limit`` (admission
control: a saturated shard answers 429 + ``Retry-After`` instead of
queueing without bound).  SIGTERM drains: in-flight jobs finish, the
store is flushed, the process exits 0, and a restart recovers the store
and re-serves every cached fingerprint.
"""

from .gateway import GatewayHTTPServer, make_gateway
from .keyspace import (
    KEYSPACE_BUCKETS,
    KeyspaceSlice,
    fingerprint_bucket,
    shard_for_fingerprint,
)

__all__ = [
    "KEYSPACE_BUCKETS",
    "GatewayHTTPServer",
    "KeyspaceSlice",
    "fingerprint_bucket",
    "make_gateway",
    "shard_for_fingerprint",
]
