"""Fingerprint-routing HTTP gateway over a fleet of mapping shards.

The gateway is deliberately thin: it holds **no pool, no cache, and no
store**.  Its only state is the ordered shard address list, from which
every routing decision follows deterministically:

* ``POST /jobs`` — validate the body exactly the way a shard would
  (:func:`repro.service.http.parse_job_body`), compute the scenario
  fingerprint, and proxy the request to the shard whose keyspace slice
  owns it.  Shard responses pass through verbatim (with the job id
  namespaced as ``s<shard>.<id>``), including 429 backpressure and its
  ``Retry-After`` header.
* ``GET /jobs/<s<shard>.<id>>`` — route by the id's shard prefix.
* ``GET /jobs``, ``GET /health``, and ``GET /stats`` — fan out to every
  shard and aggregate; unreachable shards degrade the fleet's status
  instead of failing the request.
* ``GET /recommend?workload=...&topology=...`` — fan out, then merge
  the per-shard recommendation payloads sample-weighted
  (:func:`repro.portfolio.recommend.merge_payloads`); ``404`` when no
  shard holds matching history.
* ``GET /registries/<kind>`` — answered by the first reachable shard
  (every shard serves the same registries).

A dead shard is retried ``retries`` times (with ``retry_delay`` between
attempts) before the gateway surfaces ``502`` — transient restarts are
bridged, hard failures are reported, and the rest of the keyspace keeps
serving either way.

Run it with ``mimdmap gateway --shards host:port,host:port,...`` or
embed it via :func:`make_gateway`.
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlsplit

from ...utils import MappingError
from ..fingerprint import scenario_fingerprint
from .keyspace import KeyspaceSlice, shard_for_fingerprint

__all__ = ["GatewayHTTPServer", "ShardUnreachableError", "make_gateway"]

_MAX_BODY = 16 * 1024 * 1024
_GATEWAY_ID = re.compile(r"s(\d+)\.(.+)")


class ShardUnreachableError(MappingError):
    """A shard did not answer after every configured retry."""


def _check_address(address: str) -> str:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit() or not (0 < int(port) <= 65535):
        raise MappingError(
            f"invalid shard address {address!r}; expected host:port"
        )
    return address


class GatewayHTTPServer(ThreadingHTTPServer):
    """A threading HTTP gateway over an ordered list of shard addresses.

    Shard order *is* the routing table: shard ``i`` of ``n`` owns
    keyspace slice ``KeyspaceSlice.for_shard(i, n)``, so every fleet
    member (and every restart) must be given the same ``--shards`` list
    in the same order.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        shards: list[str],
        *,
        retries: int = 2,
        retry_delay: float = 0.25,
        proxy_timeout: float = 120.0,
        quiet: bool = True,
    ):
        if not shards:
            raise MappingError("a gateway needs at least one shard address")
        if retries < 0:
            raise MappingError(f"retries must be >= 0, got {retries}")
        if retry_delay < 0:
            raise MappingError(f"retry_delay must be >= 0, got {retry_delay}")
        self.shards = [_check_address(s) for s in shards]
        self.slices = [
            KeyspaceSlice.for_shard(i, len(self.shards))
            for i in range(len(self.shards))
        ]
        self.retries = retries
        self.retry_delay = retry_delay
        self.proxy_timeout = proxy_timeout
        self.quiet = quiet
        super().__init__(address, _GatewayHandler)

    def forward(
        self, index: int, method: str, path: str, data: bytes | None = None
    ) -> tuple[int, Any, dict[str, str]]:
        """Proxy one request to shard ``index``; retry on a dead shard.

        Returns ``(status, json payload, response headers)``.  An HTTP
        error status from a *live* shard is a valid answer and passes
        through; only connection-level failures are retried, and
        exhaustion raises :class:`ShardUnreachableError`.
        """
        url = f"http://{self.shards[index]}{path}"
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data, method=method)
            if data is not None:
                request.add_header("Content-Type", "application/json")
            try:
                with urllib.request.urlopen(
                    request, timeout=self.proxy_timeout
                ) as response:
                    return (
                        response.status,
                        json.loads(response.read()),
                        dict(response.headers),
                    )
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                except ValueError:
                    payload = {"error": f"shard {index} returned HTTP {exc.code}"}
                return exc.code, payload, dict(exc.headers or {})
            except OSError as exc:  # URLError, ConnectionError, timeouts
                last_error = exc
                if attempt < self.retries:
                    time.sleep(self.retry_delay)
        raise ShardUnreachableError(
            f"shard {index} ({self.shards[index]}) unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )


class _GatewayHandler(BaseHTTPRequestHandler):
    server: GatewayHTTPServer

    # -- helpers --------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _gateway_id(self, index: int, job_id: str) -> str:
        return f"s{index}.{job_id}"

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        parts = [p for p in path.split("/") if p]
        if parts == ["health"] or not parts:
            self._health()
        elif parts == ["stats"]:
            self._stats()
        elif parts == ["recommend"]:
            self._recommend()
        elif parts == ["jobs"]:
            self._jobs_listing()
        elif len(parts) == 2 and parts[0] == "jobs":
            self._job(parts[1])
        elif len(parts) == 2 and parts[0] == "registries":
            self._registry(parts[1])
        else:
            self._error(404, f"no route for GET {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        from ..http import parse_job_body

        if urlsplit(self.path).path.rstrip("/") != "/jobs":
            self._error(404, f"no route for POST {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise ValueError("request body is empty; send a JSON object")
            if length > _MAX_BODY:
                raise ValueError(f"request body too large ({length} bytes)")
            raw = self.rfile.read(length)
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            scenario, replica = parse_job_body(body)
        except (MappingError, TypeError, ValueError) as exc:
            self._error(400, str(exc))
            return
        fingerprint = scenario_fingerprint(scenario, replica)
        index = shard_for_fingerprint(fingerprint, len(self.server.shards))
        try:
            status, payload, headers = self.server.forward(
                index, "POST", "/jobs", data=raw
            )
        except ShardUnreachableError as exc:
            self._error(502, str(exc))
            return
        if isinstance(payload, dict) and "id" in payload:
            payload["id"] = self._gateway_id(index, payload["id"])
            payload["shard"] = index
        relay = {}
        if "Retry-After" in headers:
            relay["Retry-After"] = headers["Retry-After"]
        self._send(status, payload, headers=relay)

    def _job(self, gateway_id: str) -> None:
        match = _GATEWAY_ID.fullmatch(gateway_id)
        if match is None:
            self._error(
                404,
                f"unknown job {gateway_id!r} (gateway job ids look like "
                "'s0.job-1')",
            )
            return
        index, job_id = int(match.group(1)), match.group(2)
        if index >= len(self.server.shards):
            self._error(404, f"unknown shard {index} in job id {gateway_id!r}")
            return
        try:
            status, payload, _ = self.server.forward(
                index, "GET", f"/jobs/{job_id}"
            )
        except ShardUnreachableError as exc:
            self._error(502, str(exc))
            return
        if isinstance(payload, dict) and "id" in payload:
            payload["id"] = self._gateway_id(index, payload["id"])
            payload["shard"] = index
        self._send(status, payload)

    def _jobs_listing(self) -> None:
        jobs: list[dict[str, Any]] = []
        unreachable: list[int] = []
        for index in range(len(self.server.shards)):
            try:
                status, payload, _ = self.server.forward(index, "GET", "/jobs")
            except ShardUnreachableError:
                unreachable.append(index)
                continue
            if status == 200 and isinstance(payload, dict):
                for job in payload.get("jobs", []):
                    job = dict(job)
                    job["id"] = self._gateway_id(index, job["id"])
                    job["shard"] = index
                    jobs.append(job)
        self._send(200, {"jobs": jobs, "unreachable_shards": unreachable})

    def _registry(self, kind: str) -> None:
        for index in range(len(self.server.shards)):
            try:
                status, payload, _ = self.server.forward(
                    index, "GET", f"/registries/{kind}"
                )
            except ShardUnreachableError:
                continue
            self._send(status, payload)
            return
        self._error(502, "no shard reachable for the registry listing")

    def _stats(self) -> None:
        """Fan ``GET /stats`` out to every shard and aggregate.

        Same totals as ``/health`` (the shard body is the same service
        snapshot), but under its canonical name and without the
        liveness framing — per-shard entries carry ``stats`` instead of
        ``health``.
        """
        shards: list[dict[str, Any]] = []
        reachable = 0
        totals = {
            "executed": 0,
            "jobs": 0,
            "queue_depth": 0,
            "queue_active": 0,
            "store_records": 0,
        }
        for index, address in enumerate(self.server.shards):
            entry: dict[str, Any] = {
                "shard": index,
                "address": address,
                "slice": self.server.slices[index].to_dict(),
            }
            try:
                status, payload, _ = self.server.forward(index, "GET", "/stats")
            except ShardUnreachableError as exc:
                entry["reachable"] = False
                entry["error"] = str(exc)
            else:
                entry["reachable"] = status == 200
                entry["stats"] = payload
                if status == 200 and isinstance(payload, dict):
                    reachable += 1
                    totals["executed"] += payload.get("executed", 0)
                    totals["jobs"] += payload.get("jobs", {}).get("total", 0)
                    queue = payload.get("queue", {})
                    totals["queue_depth"] += queue.get("depth", 0)
                    totals["queue_active"] += queue.get("active", 0)
                    store = payload.get("store") or {}
                    totals["store_records"] += store.get("records", 0)
            shards.append(entry)
        self._send(
            200,
            {
                "role": "gateway",
                "shard_count": len(shards),
                "reachable_shards": reachable,
                "totals": totals,
                "shards": shards,
            },
        )

    def _recommend(self) -> None:
        """Merge every shard's learned default into one fleet answer."""
        from urllib.parse import parse_qs, urlencode

        from ...portfolio.recommend import merge_payloads

        query = parse_qs(urlsplit(self.path).query)
        workload = (query.get("workload") or [""])[0]
        topology = (query.get("topology") or [""])[0]
        if not workload or not topology:
            self._error(
                400, "recommend needs 'workload' and 'topology' query params"
            )
            return
        path = "/recommend?" + urlencode(
            {"workload": workload, "topology": topology}
        )
        payloads: list[dict[str, Any] | None] = []
        unreachable: list[int] = []
        for index in range(len(self.server.shards)):
            try:
                status, payload, _ = self.server.forward(index, "GET", path)
            except ShardUnreachableError:
                unreachable.append(index)
                continue
            # A shard 404 just means no history there; anything else
            # non-200 is equally no evidence from that shard.
            payloads.append(payload if status == 200 else None)
        merged = merge_payloads(payloads)
        if merged is None:
            self._error(
                404,
                f"no recorded history for workload={workload!r} "
                f"topology={topology!r} on any reachable shard",
            )
            return
        merged["shards"] = {
            "total": len(self.server.shards),
            "with_history": sum(1 for p in payloads if p),
            "unreachable": unreachable,
        }
        self._send(200, merged)

    def _health(self) -> None:
        shards: list[dict[str, Any]] = []
        healthy = 0
        totals = {
            "executed": 0,
            "jobs": 0,
            "queue_depth": 0,
            "queue_active": 0,
            "store_records": 0,
        }
        for index, address in enumerate(self.server.shards):
            entry: dict[str, Any] = {
                "shard": index,
                "address": address,
                "slice": self.server.slices[index].to_dict(),
            }
            try:
                status, payload, _ = self.server.forward(index, "GET", "/health")
            except ShardUnreachableError as exc:
                entry["healthy"] = False
                entry["error"] = str(exc)
            else:
                entry["healthy"] = status == 200
                entry["health"] = payload
                if status == 200 and isinstance(payload, dict):
                    healthy += 1
                    totals["executed"] += payload.get("executed", 0)
                    totals["jobs"] += payload.get("jobs", {}).get("total", 0)
                    queue = payload.get("queue", {})
                    totals["queue_depth"] += queue.get("depth", 0)
                    totals["queue_active"] += queue.get("active", 0)
                    store = payload.get("store") or {}
                    totals["store_records"] += store.get("records", 0)
            shards.append(entry)
        self._send(
            200,
            {
                "role": "gateway",
                "status": "ok" if healthy == len(shards) else "degraded",
                "shard_count": len(shards),
                "healthy_shards": healthy,
                "totals": totals,
                "shards": shards,
            },
        )


def make_gateway(
    shards: list[str],
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    retries: int = 2,
    retry_delay: float = 0.25,
    proxy_timeout: float = 120.0,
    quiet: bool = True,
) -> GatewayHTTPServer:
    """Bind (not start) a gateway; ``port=0`` picks an ephemeral port.

    Same ownership contract as :func:`repro.service.make_server`: the
    caller runs ``serve_forever()`` and stops it with ``shutdown()``.
    """
    return GatewayHTTPServer(
        (host, port),
        shards,
        retries=retries,
        retry_delay=retry_delay,
        proxy_timeout=proxy_timeout,
        quiet=quiet,
    )
