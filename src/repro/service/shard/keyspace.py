"""Fingerprint-prefix keyspace slicing: which shard owns which result.

Fingerprints are SHA-256 hex digests (see
:mod:`repro.service.fingerprint`), so their leading bits are uniformly
distributed over any workload.  Routing therefore needs no directory
service: the first four hex characters (16 bits, ``KEYSPACE_BUCKETS``
buckets) of a fingerprint map straight to a shard index, and every
shard's ownership is a contiguous half-open bucket range — a
:class:`KeyspaceSlice`.

The two directions are consistent *by construction*:
``shard_for_fingerprint(fp, n)`` computes ``bucket * n // BUCKETS`` and
``KeyspaceSlice.for_shard(i, n)`` is exactly the preimage of ``i`` under
that map, so the gateway's routing decision and a shard's 421
enforcement can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...utils import MappingError

__all__ = [
    "KEYSPACE_BUCKETS",
    "KeyspaceSlice",
    "fingerprint_bucket",
    "shard_for_fingerprint",
]

#: Granularity of the routed keyspace: the first 4 hex chars = 16 bits.
KEYSPACE_PREFIX_HEX = 4
KEYSPACE_BUCKETS = 1 << (4 * KEYSPACE_PREFIX_HEX)


def fingerprint_bucket(fingerprint: str) -> int:
    """The routing bucket (leading 16 bits) of a hex fingerprint."""
    if len(fingerprint) < KEYSPACE_PREFIX_HEX:
        raise MappingError(
            f"fingerprint {fingerprint!r} is too short to route "
            f"(need >= {KEYSPACE_PREFIX_HEX} hex chars)"
        )
    try:
        return int(fingerprint[:KEYSPACE_PREFIX_HEX], 16)
    except ValueError:
        raise MappingError(
            f"fingerprint {fingerprint!r} is not a hex digest"
        ) from None


def _check_shard_count(count: int) -> None:
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise MappingError(f"shard count must be an int >= 1, got {count!r}")
    if count > KEYSPACE_BUCKETS:
        raise MappingError(
            f"shard count {count} exceeds the {KEYSPACE_BUCKETS} routing "
            "buckets (first 16 fingerprint bits)"
        )


def shard_for_fingerprint(fingerprint: str, count: int) -> int:
    """Which of ``count`` shards owns ``fingerprint`` (0-based)."""
    _check_shard_count(count)
    return fingerprint_bucket(fingerprint) * count // KEYSPACE_BUCKETS


@dataclass(frozen=True)
class KeyspaceSlice:
    """A contiguous, half-open bucket range ``[lo, hi)`` a shard owns."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= KEYSPACE_BUCKETS):
            raise MappingError(
                f"invalid keyspace slice [{self.lo}, {self.hi}); need "
                f"0 <= lo < hi <= {KEYSPACE_BUCKETS}"
            )

    @classmethod
    def for_shard(cls, index: int, count: int) -> "KeyspaceSlice":
        """Shard ``index``-of-``count``'s slice, consistent with
        :func:`shard_for_fingerprint`: the slice is exactly the set of
        buckets that map to ``index``."""
        _check_shard_count(count)
        if not isinstance(index, int) or isinstance(index, bool):
            raise MappingError(f"shard index must be an int, got {index!r}")
        if not (0 <= index < count):
            raise MappingError(
                f"shard index {index} out of range for {count} shard(s)"
            )
        # ceil(i * B / n): the first bucket p with p*n//B == i.
        lo = -(-index * KEYSPACE_BUCKETS // count)
        hi = -(-(index + 1) * KEYSPACE_BUCKETS // count)
        return cls(lo, hi)

    def contains(self, fingerprint: str) -> bool:
        return self.lo <= fingerprint_bucket(fingerprint) < self.hi

    def describe(self) -> str:
        """Operator-facing hex form, e.g. ``[0000, 8000)``."""
        width = KEYSPACE_PREFIX_HEX
        return f"[{self.lo:0{width}x}, {self.hi:0{width}x})"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for ``GET /health``."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets": KEYSPACE_BUCKETS,
            "hex": self.describe(),
        }
