"""Pluggable persistence backends under the :class:`ResultStore`.

A backend owns one on-disk representation of the canonical
``fingerprint -> outcome`` record stream; the store above it keeps the
in-memory view and the locking discipline.  Two implementations ship:

* :class:`JsonlBackend` — the original append-only JSONL file.  Crash
  recovery truncates a torn final record (the signature of a killed
  writer) so later appends never merge into the garbage tail.  JSONL is
  strictly **single-writer**: a sidecar ``<path>.lock`` file is held
  with ``flock`` for the backend's lifetime, and a second opener gets a
  :class:`StoreLockedError` instead of silently interleaving lines.
* :class:`SqliteBackend` — an SQLite database in WAL mode with the same
  canonical record schema (``fingerprint`` primary key, the outcome as
  canonical JSON text).  SQLite's own locking makes it safe for
  multiple *processes* to append concurrently, which is what the
  sharded fleet's recovery/migration tooling relies on.

Both honor the same ``sync`` policy:

* ``"always"`` (the default) — every append is flushed *and* fsynced
  (JSONL) / committed under ``PRAGMA synchronous=FULL`` (SQLite) before
  ``append`` returns, so a completed job survives an immediate power
  cut;
* ``"never"`` — appends are flushed to the OS but never fsynced
  (``synchronous=OFF`` for SQLite); a crash of the *process* loses
  nothing, a crash of the *machine* may lose the latest records.

:func:`open_backend` picks a backend from the path suffix (``.db`` /
``.sqlite`` / ``.sqlite3`` -> SQLite, anything else -> JSONL) unless one
is named explicitly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Protocol, TextIO, runtime_checkable

from ..io.jsonl import dumps_record
from ..utils import GraphError, MappingError

try:  # single-writer enforcement needs flock; absent off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "SYNC_POLICIES",
    "JsonlBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreLockedError",
    "open_backend",
    "read_records",
]

#: Durability policies every backend understands (see module docstring).
SYNC_POLICIES = ("always", "never")

_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class StoreLockedError(MappingError):
    """Another live writer already owns this single-writer store."""


def _check_sync(sync: str) -> str:
    if sync not in SYNC_POLICIES:
        raise MappingError(
            f"unknown store sync policy {sync!r}; choose from "
            f"{', '.join(SYNC_POLICIES)}"
        )
    return sync


@runtime_checkable
class StoreBackend(Protocol):
    """What the :class:`~repro.service.store.ResultStore` needs from disk.

    A backend is opened on construction, surrenders its recovered
    records once via :meth:`load`, then serves :meth:`append` calls
    (already deduplicated by the store) until :meth:`close`.  All calls
    arrive under the store's lock, so backends need no locking of their
    own against sibling *threads* — only against sibling *processes*.
    """

    #: Short registry-style name ("jsonl", "sqlite") for health reports.
    name: str

    @property
    def path(self) -> Path:
        """Where the records live on disk."""
        ...  # pragma: no cover - protocol

    def load(self) -> dict[str, dict[str, Any]]:
        """Recover every durable ``fingerprint -> outcome dict`` record."""
        ...  # pragma: no cover - protocol

    def metas(self) -> dict[str, dict[str, Any]]:
        """Recovered ``fingerprint -> meta dict`` records (subset of load)."""
        ...  # pragma: no cover - protocol

    def append(
        self,
        fingerprint: str,
        outcome: dict[str, Any],
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Persist one new record (the caller guarantees it is new)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush, release cross-process locks, and stop accepting appends."""
        ...  # pragma: no cover - protocol


class JsonlBackend:
    """Append-only JSONL records; single-writer, torn-tail-recovering."""

    name = "jsonl"

    def __init__(self, path: str | Path, *, sync: str = "always") -> None:
        self._path = Path(path)
        self._sync = _check_sync(sync)
        self._fh: TextIO | None = None
        self._lock_fh: TextIO | None = None
        self._metas: dict[str, dict[str, Any]] = {}
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_writer_lock()

    @property
    def path(self) -> Path:
        return self._path

    def _acquire_writer_lock(self) -> None:
        """Hold ``<path>.lock`` exclusively for this backend's lifetime.

        ``flock`` locks die with the process, so a crashed writer never
        wedges the store — but a *live* second writer is refused with a
        clear error instead of interleaving half-lines into the log.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        lock_path = self._path.with_name(self._path.name + ".lock")
        fh = lock_path.open("a")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise StoreLockedError(
                f"JSONL store {self._path} is already open for writing in "
                "another process (JSONL is single-writer; close the other "
                "writer, or use the SQLite backend for concurrent writers)"
            ) from None
        self._lock_fh = fh

    def load(self) -> dict[str, dict[str, Any]]:
        """Recover complete records; truncate a torn tail so appends are safe.

        A killed writer leaves at most one partial final record.  Unlike
        a read-only consumer, a *writer* must physically drop it: the
        next append would otherwise concatenate onto the partial line
        and corrupt both records.
        """
        records: dict[str, dict[str, Any]] = {}
        if not self._path.exists():
            return records
        raw = self._path.read_bytes()
        pos = 0
        keep = 0  # length of the longest trusted (newline-terminated) prefix
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            line = raw[pos : newline if newline != -1 else len(raw)]
            terminated = newline != -1
            last = not terminated or not raw[newline + 1 :].strip()
            if line.strip():
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError("record is not a JSON object")
                except ValueError as exc:
                    if last:
                        break  # the torn tail; truncated below
                    raise GraphError(
                        f"{self._path}: corrupt mid-file record at byte {pos}: "
                        f"{exc}"
                    ) from None
                fingerprint = record.get("fingerprint")
                outcome = record.get("outcome")
                meta = record.get("meta")
                if isinstance(fingerprint, str) and isinstance(outcome, dict):
                    if fingerprint not in records and isinstance(meta, dict):
                        self._metas[fingerprint] = meta
                    records.setdefault(fingerprint, outcome)
            if not terminated:
                break
            pos = keep = newline + 1
        if keep < len(raw):
            with self._path.open("r+b") as fh:
                fh.truncate(keep)
                if self._sync == "always":
                    os.fsync(fh.fileno())
        return records

    def metas(self) -> dict[str, dict[str, Any]]:
        return dict(self._metas)

    def append(
        self,
        fingerprint: str,
        outcome: dict[str, Any],
        meta: dict[str, Any] | None = None,
    ) -> None:
        if self._fh is None:
            self._fh = self._path.open("a")
        record: dict[str, Any] = {"fingerprint": fingerprint, "outcome": outcome}
        if meta:
            record["meta"] = meta
        self._fh.write(dumps_record(record) + "\n")
        self._fh.flush()
        if self._sync == "always":
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._lock_fh is not None:
            if fcntl is not None:
                fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_UN)
            self._lock_fh.close()
            self._lock_fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonlBackend({str(self._path)!r}, sync={self._sync!r})"


class SqliteBackend:
    """SQLite (WAL) records; safe for concurrent multi-process appends."""

    name = "sqlite"

    def __init__(self, path: str | Path, *, sync: str = "always") -> None:
        import sqlite3

        self._path = Path(path)
        self._sync = _check_sync(sync)
        self._metas: dict[str, dict[str, Any]] = {}
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # One connection per backend; the store serializes calls onto it.
        self._conn = sqlite3.connect(
            str(self._path), timeout=30.0, check_same_thread=False
        )
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                f"PRAGMA synchronous={'FULL' if self._sync == 'always' else 'OFF'}"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "fingerprint TEXT PRIMARY KEY, outcome TEXT NOT NULL, "
                "meta TEXT)"
            )
            # Stores created before the meta column existed migrate in
            # place; ADD COLUMN with no default is metadata-only.
            columns = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(results)")
            }
            if "meta" not in columns:
                self._conn.execute("ALTER TABLE results ADD COLUMN meta TEXT")
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise MappingError(
                f"{self._path} is not a usable SQLite result store: {exc}"
            ) from None

    @property
    def path(self) -> Path:
        return self._path

    def load(self) -> dict[str, dict[str, Any]]:
        import sqlite3

        records: dict[str, dict[str, Any]] = {}
        try:
            rows = self._conn.execute(
                "SELECT fingerprint, outcome, meta FROM results"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise MappingError(
                f"{self._path} is not a readable SQLite result store: {exc}"
            ) from None
        for fingerprint, blob, meta_blob in rows:
            try:
                outcome = json.loads(blob)
                meta = json.loads(meta_blob) if meta_blob else None
            except ValueError as exc:
                raise GraphError(
                    f"{self._path}: stored outcome for {fingerprint!r} is not "
                    f"valid JSON: {exc}"
                ) from None
            if isinstance(fingerprint, str) and isinstance(outcome, dict):
                records[fingerprint] = outcome
                if isinstance(meta, dict):
                    self._metas[fingerprint] = meta
        return records

    def metas(self) -> dict[str, dict[str, Any]]:
        return dict(self._metas)

    def append(
        self,
        fingerprint: str,
        outcome: dict[str, Any],
        meta: dict[str, Any] | None = None,
    ) -> None:
        # INSERT OR IGNORE keeps first-write-wins across *processes* too:
        # two shards recomputing the same pure result cannot conflict.
        self._conn.execute(
            "INSERT OR IGNORE INTO results (fingerprint, outcome, meta) "
            "VALUES (?, ?, ?)",
            (
                fingerprint,
                dumps_record(outcome),
                dumps_record(meta) if meta else None,
            ),
        )
        self._conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqliteBackend({str(self._path)!r}, sync={self._sync!r})"


def open_backend(
    path: str | Path, *, backend: str = "auto", sync: str = "always"
) -> StoreBackend:
    """Open the named (or suffix-inferred) backend over ``path``."""
    _check_sync(sync)
    if backend == "auto":
        backend = (
            "sqlite" if Path(path).suffix.lower() in _SQLITE_SUFFIXES else "jsonl"
        )
    if backend == "jsonl":
        return JsonlBackend(path, sync=sync)
    if backend == "sqlite":
        return SqliteBackend(path, sync=sync)
    raise MappingError(
        f"unknown store backend {backend!r}; choose from auto, jsonl, sqlite"
    )


def read_records(
    path: str | Path, *, backend: str = "auto"
) -> list[tuple[str, dict[str, Any], dict[str, Any] | None]]:
    """Read ``(fingerprint, outcome, meta)`` records without writing.

    Unlike :func:`open_backend`, this never takes the JSONL writer lock,
    never truncates a torn tail (a partial final line is just skipped),
    and opens SQLite read-only — so a live service's store can be mined
    (``mimdmap recommend``) while the service keeps appending.
    """
    path = Path(path)
    if backend == "auto":
        backend = "sqlite" if path.suffix.lower() in _SQLITE_SUFFIXES else "jsonl"
    records: list[tuple[str, dict[str, Any], dict[str, Any] | None]] = []
    if backend == "jsonl":
        if not path.exists():
            return records
        for line in path.read_bytes().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a live writer (or garbage line)
            if not isinstance(record, dict):
                continue
            fingerprint = record.get("fingerprint")
            outcome = record.get("outcome")
            meta = record.get("meta")
            if isinstance(fingerprint, str) and isinstance(outcome, dict):
                records.append(
                    (fingerprint, outcome, meta if isinstance(meta, dict) else None)
                )
        return records
    if backend == "sqlite":
        import sqlite3

        if not path.exists():
            return records
        try:
            conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=30.0)
        except sqlite3.DatabaseError as exc:  # pragma: no cover - open race
            raise MappingError(
                f"{path} is not a readable SQLite result store: {exc}"
            ) from None
        try:
            columns = {row[1] for row in conn.execute("PRAGMA table_info(results)")}
            select = (
                "SELECT fingerprint, outcome, meta FROM results"
                if "meta" in columns
                else "SELECT fingerprint, outcome, NULL FROM results"
            )
            for fingerprint, blob, meta_blob in conn.execute(select):
                try:
                    outcome = json.loads(blob)
                    meta = json.loads(meta_blob) if meta_blob else None
                except ValueError:
                    continue
                if isinstance(fingerprint, str) and isinstance(outcome, dict):
                    records.append(
                        (fingerprint, outcome, meta if isinstance(meta, dict) else None)
                    )
        except sqlite3.DatabaseError as exc:
            raise MappingError(
                f"{path} is not a readable SQLite result store: {exc}"
            ) from None
        finally:
            conn.close()
        return records
    raise MappingError(
        f"unknown store backend {backend!r}; choose from auto, jsonl, sqlite"
    )
