"""Stdlib-only HTTP front-end for a :class:`MappingService`.

A small JSON API over :mod:`http.server` (threaded, so a long solve
never blocks polling):

* ``POST /jobs`` — submit a scenario run.  Body: either a scenario dict
  (see :class:`repro.api.scenario.Scenario`) or
  ``{"scenario": {...}, "replica": N}``.  Responds ``202`` with
  ``{"id", "status", "cached", "fingerprint"}`` — ``200`` with
  ``"cached": true`` when the content-addressed cache already holds the
  result, in which case nothing executes.
* ``GET /jobs/<id>`` — job status; includes the full outcome once done.
* ``GET /jobs`` — summaries of every job.
* ``GET /registries/<kind>`` — the same listing as
  ``mimdmap list <kind> --json`` (one shared serialization).
* ``GET /health`` — service stats (pool, cache hit rates, job counts).
* ``GET /stats`` — the same :meth:`MappingService.stats` snapshot under
  its canonical name (``/health`` remains the liveness alias).
* ``GET /recommend?workload=<family>&topology=<family>`` — the learned
  default mined from this shard's store
  (:meth:`MappingService.recommend`); ``404`` when no history matches.

Run it with ``mimdmap serve`` (see :mod:`repro.cli`) or embed it::

    from repro.service import MappingService, make_server
    with MappingService() as service:
        server = make_server(service, port=0)  # 0 = ephemeral port
        print(server.server_address)
        server.serve_forever()

Errors are JSON too: ``{"error": ...}`` with 400/404/405 status.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..utils import MappingError
from .service import MappingService, ServiceSaturatedError, WrongShardError

__all__ = ["ServiceHTTPServer", "make_server", "parse_job_body", "retry_after_header"]

_MAX_BODY = 16 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`MappingService`."""

    daemon_threads = True

    def __init__(self, address, service: MappingService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- helpers --------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body is empty; send a JSON object")
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        parts = [p for p in path.split("/") if p]
        service = self.server.service
        if parts == ["health"] or parts == ["stats"] or not parts:
            self._send(200, service.stats())
        elif parts == ["recommend"]:
            query = parse_qs(urlsplit(self.path).query)
            workload = (query.get("workload") or [""])[0]
            topology = (query.get("topology") or [""])[0]
            if not workload or not topology:
                self._error(
                    400, "recommend needs 'workload' and 'topology' query params"
                )
                return
            payload = service.recommend(workload, topology)
            if payload is None:
                self._error(
                    404,
                    f"no recorded history for workload={workload!r} "
                    f"topology={topology!r}",
                )
            else:
                self._send(200, payload)
        elif parts == ["jobs"]:
            self._send(
                200,
                {
                    "jobs": [
                        {"id": j.id, "status": j.status, "cached": j.cached}
                        for j in service.jobs()
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "jobs":
            job = service.job(parts[1])
            if job is None:
                self._error(404, f"unknown job {parts[1]!r}")
            else:
                self._send(200, job.to_dict())
        elif len(parts) == 2 and parts[0] == "registries":
            from ..api.components import registry_listing

            try:
                self._send(200, registry_listing(parts[1]))
            except MappingError as exc:
                self._error(404, str(exc))
        else:
            self._error(404, f"no route for GET {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if urlsplit(self.path).path.rstrip("/") != "/jobs":
            self._error(404, f"no route for POST {self.path!r}")
            return
        try:
            body = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            job = _submit_from_body(self.server.service, body)
        except ServiceSaturatedError as exc:
            # Backpressure, not failure: the shard is saturated, the
            # client (or gateway) should back off and retry.
            self._send(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": retry_after_header(exc.retry_after)},
            )
            return
        except WrongShardError as exc:
            self._error(421, str(exc))
            return
        except (MappingError, TypeError, ValueError) as exc:
            self._error(400, str(exc))
            return
        self._send(
            200 if job.cached else 202,
            {
                "id": job.id,
                "status": job.status,
                "cached": job.cached,
                "fingerprint": job.fingerprint,
            },
        )


def retry_after_header(seconds: float) -> str:
    """RFC-compliant ``Retry-After`` value: a whole number of seconds."""
    return str(max(1, math.ceil(seconds)))


def parse_job_body(body: Any):
    """Validate one ``POST /jobs`` body into ``(scenario, replica)``.

    Shared by the shard front-end (which then submits) and the gateway
    (which only needs the scenario's fingerprint to route) so the two
    can never disagree about what a request means.
    """
    from ..api.scenario import Scenario

    if not isinstance(body, dict):
        raise MappingError(f"a job request must be a JSON object, got {body!r}")
    replica = 0
    spec = body
    if "scenario" in body:
        extra = sorted(set(body) - {"scenario", "replica"})
        if extra:
            raise MappingError(
                f"unknown job field(s) {', '.join(map(repr, extra))}; "
                "expected 'scenario' and optional 'replica'"
            )
        spec = body["scenario"]
        replica = body.get("replica", 0)
        if not isinstance(replica, int) or isinstance(replica, bool) or replica < 0:
            raise MappingError(f"'replica' must be an int >= 0, got {replica!r}")
    return Scenario.from_dict(spec), replica


def _submit_from_body(service: MappingService, body: Any):
    """Turn one ``POST /jobs`` body into a submitted scenario job."""
    scenario, replica = parse_job_body(body)
    return service.submit_scenario(scenario, replica)


def make_server(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind (not start) the JSON API; ``port=0`` picks an ephemeral port.

    The caller owns the loop: ``server.serve_forever()`` to run,
    ``server.shutdown()`` from another thread to stop.  The bound port
    is ``server.server_address[1]``.
    """
    return ServiceHTTPServer((host, port), service, quiet=quiet)
