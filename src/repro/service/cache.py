"""In-memory LRU over the durable store: the service's read path.

Layering (fastest first):

1. a bounded LRU of live :class:`MapOutcome` objects (no
   deserialization on hit);
2. the optional :class:`~repro.service.store.ResultStore` — disk JSONL
   that survives restarts; hits are promoted back into the LRU.

Both layers are keyed by the content-addressed fingerprint
(:mod:`repro.service.fingerprint`), so "same computation" and "same
cache entry" are the same statement.  Hit/miss/store counters feed the
service's ``stats()`` and the HTTP ``GET /health`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..api.outcome import MapOutcome
from ..utils import MappingError
from .store import ResultStore

__all__ = ["OutcomeCache"]


class OutcomeCache:
    """Fingerprint-keyed outcome cache: bounded LRU + optional store.

    Parameters
    ----------
    capacity:
        Maximum number of outcomes held live in memory (>= 1).  Evicted
        entries remain retrievable from the store, just slower.
    store:
        Durable second level; ``None`` for memory-only caching.
    """

    def __init__(self, capacity: int = 1024, store: ResultStore | None = None) -> None:
        if capacity < 1:
            raise MappingError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._store = store
        self._lru: OrderedDict[str, MapOutcome] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def store(self) -> ResultStore | None:
        return self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def get(self, fingerprint: str) -> MapOutcome | None:
        """The cached outcome, or ``None``; store hits are promoted."""
        with self._lock:
            outcome = self._lru.get(fingerprint)
            if outcome is not None:
                self._lru.move_to_end(fingerprint)
                self.hits += 1
                return outcome
        if self._store is not None:
            outcome = self._store.get(fingerprint)
            if outcome is not None:
                with self._lock:
                    self.hits += 1
                    self._insert(fingerprint, outcome)
                return outcome
        with self._lock:
            self.misses += 1
        return None

    def put(
        self,
        fingerprint: str,
        outcome: MapOutcome,
        meta: dict | None = None,
    ) -> None:
        """Record a completed computation in both layers.

        ``meta`` (family/mapper context for the recommender) only
        matters to the durable store; the LRU ignores it.
        """
        with self._lock:
            self.stores += 1
            self._insert(fingerprint, outcome)
        if self._store is not None:
            self._store.put(fingerprint, outcome, meta)

    def _insert(self, fingerprint: str, outcome: MapOutcome) -> None:
        self._lru[fingerprint] = outcome
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self._capacity:
            self._lru.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._lru),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "durable": int(len(self._store)) if self._store is not None else 0,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutcomeCache(entries={len(self)}, capacity={self._capacity})"
