"""Mapping-as-a-service: the persistent execution layer under the API.

The :mod:`repro.api` facade answers *one* question per call and tears
everything down afterwards.  This package keeps the machinery alive
between questions, the way a resource manager actually uses a mapper:

* :class:`MappingService` — long-lived owner of a lazily-started,
  persistent process pool, an async job table, and a content-addressed
  result cache;
* :mod:`~repro.service.fingerprint` — canonical SHA-256 identity of a
  computation: (task graph, clustering, system, mapper, params, seed);
* :class:`~repro.service.store.ResultStore` — durable JSONL store that
  survives restarts (crash-tolerant via the same tail-tolerant reader
  the sweep checkpoints use);
* :class:`~repro.service.cache.OutcomeCache` — bounded LRU over the
  store;
* :func:`make_server` — stdlib-only HTTP JSON front-end
  (``mimdmap serve``).

``solve``/``solve_many``/``compare``/``run_scenarios`` delegate their
parallelism to :func:`default_service`, so every caller of the classic
API shares one warm pool automatically.
"""

from .cache import OutcomeCache
from .fingerprint import instance_fingerprint, scenario_fingerprint
from .http import ServiceHTTPServer, make_server
from .service import (
    Job,
    MappingService,
    default_service,
    set_default_service,
    shutdown_default_service,
)
from .store import ResultStore, outcome_from_dict, outcome_to_dict

__all__ = [
    "Job",
    "MappingService",
    "OutcomeCache",
    "ResultStore",
    "ServiceHTTPServer",
    "default_service",
    "instance_fingerprint",
    "make_server",
    "outcome_from_dict",
    "outcome_to_dict",
    "scenario_fingerprint",
    "set_default_service",
    "shutdown_default_service",
]
