"""Mapping-as-a-service: the persistent execution layer under the API.

The :mod:`repro.api` facade answers *one* question per call and tears
everything down afterwards.  This package keeps the machinery alive
between questions, the way a resource manager actually uses a mapper:

* :class:`MappingService` — long-lived owner of a lazily-started,
  persistent process pool, an async job table, and a content-addressed
  result cache;
* :mod:`~repro.service.fingerprint` — canonical SHA-256 identity of a
  computation: (task graph, clustering, system, mapper, params, seed);
* :class:`~repro.service.store.ResultStore` — durable JSONL store that
  survives restarts (crash-tolerant via the same tail-tolerant reader
  the sweep checkpoints use);
* :class:`~repro.service.cache.OutcomeCache` — bounded LRU over the
  store;
* :func:`make_server` — stdlib-only HTTP JSON front-end
  (``mimdmap serve``);
* :mod:`~repro.service.backends` — pluggable store persistence: JSONL
  (single-writer, lock-file enforced) or SQLite WAL (multi-process
  safe), both with an explicit ``sync`` durability policy;
* :mod:`~repro.service.shard` — the horizontal story: fingerprint-prefix
  keyspace slicing, a routing/aggregating gateway (``mimdmap
  gateway``), admission-queue backpressure (429 + ``Retry-After``),
  and graceful drain/restart.

``solve``/``solve_many``/``compare``/``run_scenarios`` delegate their
parallelism to :func:`default_service`, so every caller of the classic
API shares one warm pool automatically.
"""

from .backends import (
    JsonlBackend,
    SqliteBackend,
    StoreBackend,
    StoreLockedError,
    open_backend,
    read_records,
)
from .cache import OutcomeCache
from .fingerprint import instance_fingerprint, scenario_fingerprint
from .http import ServiceHTTPServer, make_server
from .service import (
    Job,
    MappingService,
    ServiceSaturatedError,
    WrongShardError,
    default_service,
    set_default_service,
    shutdown_default_service,
)
from .shard import (
    GatewayHTTPServer,
    KeyspaceSlice,
    make_gateway,
    shard_for_fingerprint,
)
from .store import ResultStore, outcome_from_dict, outcome_to_dict

__all__ = [
    "GatewayHTTPServer",
    "Job",
    "JsonlBackend",
    "KeyspaceSlice",
    "MappingService",
    "OutcomeCache",
    "ResultStore",
    "ServiceHTTPServer",
    "ServiceSaturatedError",
    "SqliteBackend",
    "StoreBackend",
    "StoreLockedError",
    "WrongShardError",
    "default_service",
    "instance_fingerprint",
    "make_gateway",
    "make_server",
    "open_backend",
    "outcome_from_dict",
    "outcome_to_dict",
    "read_records",
    "scenario_fingerprint",
    "set_default_service",
    "shard_for_fingerprint",
    "shutdown_default_service",
]
