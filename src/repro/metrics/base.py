"""The metric registry: the fifth axis of a mapping experiment.

A *metric* scores a mapped instance — the ``(ClusteredGraph,
SystemGraph, Assignment)`` triple — and returns one or more named
floats.  Metrics come in two families:

* **analytic** (``metric.analytic is True``) — closed-form numpy
  formulas over the task-level communication matrix and the routing
  tables (:mod:`repro.metrics.analytic`).  Cheap, differentiable in the
  swap-delta sense, and therefore usable as refinement objectives;
* **simulator-backed** (``analytic is False``) — obtained by running the
  discrete-event engine (:mod:`repro.metrics.simulated`).  Expensive but
  sensitive to contention, serialization, and backpressure effects the
  analytic model cannot see.

Like the mapper/clusterer/workload/topology axes, metrics are
addressable by name with per-axis error types and near-miss suggestions,
and parameterizable with keyword params (``{"name": "sim_makespan",
"params": {"link_setup": 1}}``).  :func:`evaluate_metrics` runs a list
of metric specs over one mapped instance, sharing simulation results
between metrics that request the same configuration.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

from ..api.registry import (
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
)
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import MappingError

__all__ = [
    "METRICS",
    "DuplicateMetricError",
    "Metric",
    "UnknownMetricError",
    "available_metrics",
    "build_metrics",
    "evaluate_metrics",
    "get_metric",
    "metric_label",
    "normalize_metric_specs",
    "register_metric",
]


class DuplicateMetricError(DuplicateComponentError):
    """A metric name was registered twice."""


class UnknownMetricError(UnknownComponentError):
    """A metric name is not in the registry."""


@runtime_checkable
class Metric(Protocol):
    """What the sweep engine and CLI require of a metric.

    ``name`` identifies the metric in reports and record keys;
    ``analytic`` distinguishes closed-form metrics (usable as refinement
    objectives) from simulator-backed ones; ``compute`` scores one
    mapped instance and returns named float values (usually
    ``{name: value}``, but a metric may emit several related keys).
    Metrics must be deterministic and side-effect free.
    """

    name: str
    analytic: bool

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]: ...


#: The metric axis: names -> metric factories (see repro.metrics.analytic
#: and repro.metrics.simulated for the built-in registrations).
METRICS = Registry(
    "metric",
    duplicate_error=DuplicateMetricError,
    unknown_error=UnknownMetricError,
)


def register_metric(name: str) -> Callable[[type], type]:
    """Class decorator registering a metric factory under ``name``."""
    return METRICS.register(name)


def available_metrics() -> list[str]:
    """Sorted names of every registered metric."""
    return METRICS.available()


def get_metric(name: str, **params: object) -> Metric:
    """Instantiate the metric registered under ``name`` with ``params``."""
    return METRICS.get(name, **params)


def metric_label(name: str, params: Mapping[str, Any] | None = None) -> str:
    """Canonical display form of a metric spec: ``name`` or ``name[k=v,...]``.

    Params are sorted by key so the label (and everything derived from
    it — scenario keys, fingerprints) is order-independent.
    """
    if not params:
        return name
    inner = ",".join(f"{k}={params[k]!r}" for k in sorted(params))
    return f"{name}[{inner}]"


def normalize_metric_specs(
    specs: Sequence[Any],
) -> list[tuple[str, dict[str, Any]]]:
    """Normalize metric specs to ``(name, params)`` pairs.

    Accepts the same shapes as the scenario axis normalizer: a bare name
    string, a ``{"name": ..., "params": {...}}`` mapping, or a
    ``(name, params)`` pair.  Names are validated against the registry
    (unknown names raise :class:`UnknownMetricError` with near-miss
    suggestions); duplicate specs raise :class:`MappingError`.
    """
    out: list[tuple[str, dict[str, Any]]] = []
    seen: set[str] = set()
    for spec in specs:
        if isinstance(spec, str):
            name, params = spec, {}
        elif isinstance(spec, Mapping):
            unknown = set(spec) - {"name", "params"}
            if unknown:
                raise MappingError(
                    f"metric spec keys must be 'name'/'params', "
                    f"got extra {sorted(unknown)}"
                )
            if "name" not in spec:
                raise MappingError(f"metric spec {spec!r} is missing 'name'")
            name = spec["name"]
            params = dict(spec.get("params") or {})
        elif isinstance(spec, Sequence) and len(spec) == 2:
            name, params = spec[0], dict(spec[1] or {})
        else:
            raise MappingError(
                f"metric spec must be a name, mapping, or (name, params) "
                f"pair, got {spec!r}"
            )
        if not isinstance(name, str):
            raise MappingError(f"metric name must be a string, got {name!r}")
        if name not in METRICS:
            raise UnknownMetricError(
                f"unknown metric {name!r}; {METRICS.suggest(name)}"
            )
        label = metric_label(name, params)
        if label in seen:
            raise MappingError(f"duplicate metric spec {label!r}")
        seen.add(label)
        out.append((name, params))
    return out


def build_metrics(
    specs: Sequence[Any],
) -> list[Metric]:
    """Instantiate every metric in ``specs`` (normalizing first).

    Bad constructor params surface as :class:`MappingError` naming the
    metric, rather than a bare ``TypeError`` from deep inside a factory.
    """
    metrics: list[Metric] = []
    for name, params in normalize_metric_specs(specs):
        try:
            metrics.append(METRICS.get(name, **params))
        except MappingError:
            raise
        except (TypeError, ValueError) as exc:
            raise MappingError(f"metric {name!r}: bad params {params!r}: {exc}") from exc
    return metrics


def evaluate_metrics(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment,
    specs: Sequence[Any],
) -> dict[str, float]:
    """Score one mapped instance with every metric in ``specs``.

    Returns the merged ``{key: value}`` dict over all metrics.  Metrics
    exposing ``compute_memo`` receive a shared memo dict, so several
    simulator-backed metrics requesting the same :class:`SimConfig` run
    one simulation between them.  Two metrics may emit the same key only
    if they agree on its value (e.g. ``comm_volume`` reported both
    standalone and as part of a combined metric); a conflict raises
    :class:`MappingError` rather than silently keeping one.
    """
    values: dict[str, float] = {}
    memo: dict[Any, Any] = {}
    for metric in build_metrics(specs):
        compute_memo = getattr(metric, "compute_memo", None)
        if compute_memo is not None:
            result = compute_memo(clustered, system, assignment, memo)
        else:
            result = metric.compute(clustered, system, assignment)
        for key, value in result.items():
            value = float(value)
            if key in values and values[key] != value:
                raise MappingError(
                    f"metric {metric.name!r} reports {key}={value} but "
                    f"another metric already reported {key}={values[key]}"
                )
            values[key] = value
    return values
