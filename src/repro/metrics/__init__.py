"""Pluggable mapping-quality metrics: the fifth registry axis.

Importing this package registers the built-in analytic metrics
(``comm_volume``, ``hop_bytes``, ``max_congestion``, ``avg_dilation``)
and the simulator-backed ones (``sim_makespan``,
``sim_max_link_utilization``, ``sim_fifo_stall_time``).  See
:mod:`repro.metrics.base` for the registry and the
:class:`~repro.metrics.base.Metric` protocol.
"""

from .analytic import (
    AvgDilationMetric,
    CommVolumeMetric,
    HopBytesMetric,
    MaxCongestionMetric,
    link_traffic,
    processor_traffic_matrix,
    task_hosts,
)
from .base import (
    METRICS,
    DuplicateMetricError,
    Metric,
    UnknownMetricError,
    available_metrics,
    build_metrics,
    evaluate_metrics,
    get_metric,
    metric_label,
    normalize_metric_specs,
    register_metric,
)
from .simulated import (
    SimFifoStallTimeMetric,
    SimMakespanMetric,
    SimMaxLinkUtilizationMetric,
)

__all__ = [
    "METRICS",
    "AvgDilationMetric",
    "CommVolumeMetric",
    "DuplicateMetricError",
    "HopBytesMetric",
    "MaxCongestionMetric",
    "Metric",
    "SimFifoStallTimeMetric",
    "SimMakespanMetric",
    "SimMaxLinkUtilizationMetric",
    "UnknownMetricError",
    "available_metrics",
    "build_metrics",
    "evaluate_metrics",
    "get_metric",
    "link_traffic",
    "metric_label",
    "normalize_metric_specs",
    "processor_traffic_matrix",
    "register_metric",
    "task_hosts",
]
