"""Simulator-backed metrics: scores read off a discrete-event execution.

Each metric here runs :func:`repro.sim.engine.simulate` under a
configurable :class:`~repro.sim.engine.SimConfig` and reports one field
of the result.  Defaults model the *realistic* machine — serialized
processors plus link contention — because that is where simulated scores
separate mappings the analytic model ties: two placements with equal
comm volume can queue very differently on a congested link.

All metrics accept the engine's fidelity knobs as params
(``serialize_processors``, ``link_contention``, ``link_setup``,
``fifo_depth``), so a sweep can request e.g. ``{"name": "sim_makespan",
"params": {"link_setup": 2}}``.  Metrics sharing a configuration within
one :func:`~repro.metrics.base.evaluate_metrics` call share a single
simulation via the memo protocol (``compute_memo``).

These metrics set ``analytic = False`` and are rejected as refinement
objectives — a KL/FM pass probing thousands of swaps cannot afford a
simulation per probe.
"""

from __future__ import annotations

from typing import Any

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..sim.engine import SimConfig, SimResult, simulate
from ..topology.base import SystemGraph
from .base import register_metric

__all__ = [
    "SimFifoStallTimeMetric",
    "SimMakespanMetric",
    "SimMaxLinkUtilizationMetric",
]


class _SimMetricBase:
    """Shared plumbing: build a frozen SimConfig, memoize simulations."""

    analytic = False

    def __init__(
        self,
        serialize_processors: bool = True,
        link_contention: bool = True,
        link_setup: int = 0,
        fifo_depth: int | None = None,
    ) -> None:
        self.config = SimConfig(
            serialize_processors=serialize_processors,
            link_contention=link_contention,
            link_setup=link_setup,
            fifo_depth=fifo_depth,
        )

    def _simulate(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
        memo: dict[Any, Any] | None,
    ) -> SimResult:
        if memo is None:
            return simulate(clustered, system, assignment, self.config)
        result = memo.get(self.config)
        if result is None:
            result = simulate(clustered, system, assignment, self.config)
            memo[self.config] = result
        return result

    def compute_memo(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
        memo: dict[Any, Any] | None,
    ) -> dict[str, float]:
        result = self._simulate(clustered, system, assignment, memo)
        return self._score(result)

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]:
        return self.compute_memo(clustered, system, assignment, None)

    def _score(self, result: SimResult) -> dict[str, float]:
        raise NotImplementedError


@register_metric("sim_makespan")
class SimMakespanMetric(_SimMetricBase):
    """Makespan of the simulated execution."""

    def _score(self, result: SimResult) -> dict[str, float]:
        return {"sim_makespan": float(result.makespan)}


@register_metric("sim_max_link_utilization")
class SimMaxLinkUtilizationMetric(_SimMetricBase):
    """Peak directed-link utilization (busy time / makespan)."""

    def _score(self, result: SimResult) -> dict[str, float]:
        return {"sim_max_link_utilization": float(result.max_link_utilization)}


@register_metric("sim_fifo_stall_time")
class SimFifoStallTimeMetric(_SimMetricBase):
    """Total backpressure stall time at finite link FIFOs.

    Defaults to ``fifo_depth=1`` (the tightest FIFO) because unbounded
    queues never stall; pass ``fifo_depth`` explicitly for deeper ones.
    """

    def __init__(
        self,
        serialize_processors: bool = True,
        link_contention: bool = True,
        link_setup: int = 0,
        fifo_depth: int | None = 1,
    ) -> None:
        super().__init__(
            serialize_processors=serialize_processors,
            link_contention=link_contention,
            link_setup=link_setup,
            fifo_depth=fifo_depth,
        )

    def _score(self, result: SimResult) -> dict[str, float]:
        return {"sim_fifo_stall_time": float(result.fifo_stall_time)}
