"""Closed-form (analytic) metrics over a mapped instance.

All of these score the task-level communication matrix ``clus_edge``
(inter-cluster message weights; intra-cluster entries are 0) against the
system's distance/routing structure — no simulation involved:

* ``comm_volume`` — the paper's objective: message weight x shortest
  distance, summed over ordered task pairs.  Identical to
  ``Schedule.communication_volume()``.
* ``hop_bytes`` — message weight x *hop count* of the actual route.
  Equals comm_volume on unit-weight machines; diverges on weighted ones
  (where distance is cost, not hops).  See arXiv:2005.10413 for why this
  separates mappings that tie on total comm.
* ``link_traffic`` / ``max_congestion`` — traffic is routed over the
  deterministic shortest-path tables shared with the simulator
  (:func:`repro.sim.machine.route_between`), accumulating ``weight x
  link_weight`` per directed link — exactly the busy time the simulator
  charges at ``link_setup=0``.  ``max_congestion`` is the most-loaded
  directed link: the static bottleneck that bounds any contention-aware
  makespan from below.
* ``avg_dilation`` — mean route hop count weighted by message size;
  how far the average byte travels.

Every metric here sets ``analytic = True`` and is therefore accepted as
a refinement objective (:func:`repro.core.multilevel.refine_metric`).
Metrics whose objective is a pairwise sum ``sum w[i,j] *
M[host_i, host_j]`` with symmetric ``M`` additionally expose
``pair_matrix`` so refinement can use O(degree) swap deltas.
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..sim.machine import route_between
from ..topology.base import SystemGraph
from ..utils import MappingError
from .base import register_metric

__all__ = [
    "AvgDilationMetric",
    "CommVolumeMetric",
    "HopBytesMetric",
    "MaxCongestionMetric",
    "link_traffic",
    "processor_traffic_matrix",
    "task_hosts",
]


def task_hosts(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> np.ndarray:
    """Host processor per task, validating the triple is consistent."""
    if clustered.num_clusters != assignment.size:
        raise MappingError(
            f"assignment covers {assignment.size} clusters, "
            f"instance has {clustered.num_clusters}"
        )
    if assignment.size != system.num_nodes:
        raise MappingError(
            f"assignment covers {assignment.size} nodes, "
            f"system has {system.num_nodes}"
        )
    return assignment.placement[clustered.clustering.labels]


def processor_traffic_matrix(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> np.ndarray:
    """Ordered processor-pair message weights: ``traffic[p, q]`` sums the
    clustered weights of all task messages sent from host ``p`` to ``q``."""
    host = task_hosts(clustered, system, assignment)
    ns = system.num_nodes
    traffic = np.zeros((ns, ns), dtype=np.int64)
    srcs, dsts = np.nonzero(clustered.clus_edge)
    np.add.at(traffic, (host[srcs], host[dsts]), clustered.clus_edge[srcs, dsts])
    np.fill_diagonal(traffic, 0)
    return traffic


def link_traffic(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> dict[tuple[int, int], int]:
    """Static traffic per directed link: ``weight x link_weight`` summed
    over every route crossing it.

    Routes come from the same shared table the simulator uses, so this
    equals the simulator's per-link busy time at ``link_setup=0``.
    """
    traffic = processor_traffic_matrix(clustered, system, assignment)
    loads: dict[tuple[int, int], int] = {}
    for p, q in zip(*np.nonzero(traffic)):
        weight = int(traffic[p, q])
        route = route_between(system, int(p), int(q))
        for a, b in zip(route, route[1:]):
            loads[(a, b)] = loads.get((a, b), 0) + weight * system.link_weight(a, b)
    return loads


def _route_hops(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> tuple[np.ndarray, np.ndarray]:
    """(weights, hop counts) of every ordered inter-processor message."""
    traffic = processor_traffic_matrix(clustered, system, assignment)
    pairs = np.nonzero(traffic)
    weights = traffic[pairs].astype(np.int64)
    hops = np.asarray(
        [
            len(route_between(system, int(p), int(q))) - 1
            for p, q in zip(*pairs)
        ],
        dtype=np.int64,
    )
    return weights, hops


@register_metric("comm_volume")
class CommVolumeMetric:
    """The paper's hop-weighted communication volume."""

    analytic = True

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]:
        host = task_hosts(clustered, system, assignment)
        srcs, dsts = np.nonzero(clustered.clus_edge)
        volume = (
            clustered.clus_edge[srcs, dsts] * system.shortest[host[srcs], host[dsts]]
        ).sum()
        return {"comm_volume": float(volume)}

    def pair_matrix(self, system: SystemGraph) -> np.ndarray | None:
        return np.asarray(system.shortest)


@register_metric("hop_bytes")
class HopBytesMetric:
    """Message weight x route hop count (= comm_volume on unit links)."""

    analytic = True

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]:
        weights, hops = _route_hops(clustered, system, assignment)
        return {"hop_bytes": float((weights * hops).sum())}

    def pair_matrix(self, system: SystemGraph) -> np.ndarray | None:
        # On unit-weight machines hop count == shortest distance, which
        # is symmetric; weighted-optimal routes may have direction-
        # dependent hop counts, so no O(deg) delta there.
        if system.is_weighted:
            return None
        return np.asarray(system.shortest)


@register_metric("max_congestion")
class MaxCongestionMetric:
    """Traffic on the most-loaded directed link (static bottleneck)."""

    analytic = True

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]:
        loads = link_traffic(clustered, system, assignment)
        return {"max_congestion": float(max(loads.values(), default=0))}


@register_metric("avg_dilation")
class AvgDilationMetric:
    """Mean route hop count per unit of message weight."""

    analytic = True

    def compute(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> dict[str, float]:
        weights, hops = _route_hops(clustered, system, assignment)
        total = int(weights.sum())
        if total == 0:
            return {"avg_dilation": 0.0}
        return {"avg_dilation": float((weights * hops).sum()) / total}

    def pair_matrix(self, system: SystemGraph) -> np.ndarray | None:
        # Total weight is swap-invariant, so minimizing the hop-weighted
        # sum minimizes the ratio; valid only where hops are symmetric.
        if system.is_weighted:
            return None
        return np.asarray(system.shortest)
