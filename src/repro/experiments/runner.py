"""Experiment runner: one paper-style experiment end to end.

One experiment (one row of Tables 1-3) is:

1. generate a problem graph (``np`` in [30, 300]) with the configured
   workload generator (default: ``layered_random``),
2. cluster it into ``na == ns`` clusters with the configured clusterer
   (default: ``random``, the paper's choice),
3. map with the configured mapper (default: the critical-edge strategy
   with initial + refinement + termination condition),
4. map the same instance with ``random_samples`` random assignments and
   average their total times,
5. report both as percentages over the ideal lower bound.

Steps 1-3 resolve their components by name through the
:mod:`repro.api` registries, so any registered workload, clusterer, or
mapper can be swapped in via :class:`ExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..analysis.stats import ExperimentRow
from ..api import MapOutcome, build_workload, get_clusterer, get_mapper
from ..baselines.random_map import average_random_mapping
from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import as_rng

__all__ = ["ExperimentConfig", "run_experiment", "run_table"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one table of experiments (paper Sec. 5 ranges by default).

    The paper publishes only the ranges (``np`` in [30, 300], ``ns`` in
    [4, 40], "weights ... produced randomly"); the remaining defaults were
    calibrated so the reproduction matches the paper's *shape* — proposed
    mapping within ~0-25% of the lower bound, averaged random mapping
    ~20-90% above it, and a sizable fraction of runs terminating by
    hitting the bound (``mimdmap sensitivity`` reruns the calibration):

    * ``extra_edges_per_task = 0.5`` keeps the mean degree constant as
      graphs grow (task graphs from real programs are sparse); dense
      graphs make the lower bound unreachable for *every* mapper.
    * ``comm_range = (1, 5)`` against ``task_size_range = (1, 10)`` puts
      communication at roughly half the weight of computation, which is
      what the paper's own Fig. 2 example uses.
    * ``log_uniform_tasks`` draws ``np`` log-uniformly from [30, 300]:
      the termination condition fires mostly on small instances (short
      critical chains embed exactly), and the paper's per-table hit
      counts (7/11 on meshes) require many such instances.

    ``mapper``, ``clusterer``, and ``workload`` name components from the
    :mod:`repro.api` registries (``available_mappers()`` etc.);
    ``mapper_params``/``clusterer_params``/``workload_params`` are extra
    factory keywords for them.  The legacy
    ``refinement``/``refinement_trials`` knobs keep configuring the
    default ``critical`` mapper, and the layered-random knobs
    (``extra_edge_prob``, ``task_size_range``, ...) keep configuring the
    default ``layered_random`` workload.
    """

    min_tasks: int = 30
    max_tasks: int = 300
    random_samples: int = 20
    extra_edge_prob: float | None = None  # None: constant-mean-degree default
    extra_edges_per_task: float = 0.5
    log_uniform_tasks: bool = True
    task_size_range: tuple[int, int] = (1, 10)
    comm_range: tuple[int, int] = (1, 5)
    refinement: str = "random"
    refinement_trials: int | None = None  # None = the paper's ns
    mapper: str = "critical"
    mapper_params: Mapping[str, object] = field(default_factory=dict)
    clusterer: str = "random"
    clusterer_params: Mapping[str, object] = field(default_factory=dict)
    workload: str = "layered_random"
    workload_params: Mapping[str, object] = field(default_factory=dict)

    def mapper_factory_params(self) -> dict[str, object]:
        """Constructor keywords for :func:`repro.api.get_mapper`."""
        params = dict(self.mapper_params)
        if self.mapper == "critical":
            params.setdefault("refinement", self.refinement)
            params.setdefault("refinement_trials", self.refinement_trials)
        return params

    def workload_factory_params(
        self, num_tasks: int, name: str
    ) -> dict[str, object]:
        """Generator keywords for :func:`repro.api.build_workload`.

        The random ``np`` draw only parameterizes generators that take a
        ``num_tasks`` knob (the random-DAG family); fixed-structure
        workloads (``fft``, ``cholesky``, ...) are sized entirely by
        ``workload_params``.
        """
        params: dict[str, object] = dict(self.workload_params)
        if self.workload in ("layered_random", "gnp", "series_parallel"):
            params.setdefault("num_tasks", num_tasks)
        if self.workload == "layered_random":
            params.setdefault("extra_edge_prob", self.extra_edge_prob)
            params.setdefault("extra_edges_per_task", self.extra_edges_per_task)
            params.setdefault("task_size_range", self.task_size_range)
            params.setdefault("comm_range", self.comm_range)
            params.setdefault("name", name)
        return params


def run_experiment(
    index: int,
    system: SystemGraph,
    config: ExperimentConfig = ExperimentConfig(),
    rng: int | np.random.Generator | None = None,
    num_tasks: int | None = None,
) -> tuple[ExperimentRow, MapOutcome]:
    """Run one experiment on ``system``; returns the table row and the outcome."""
    gen = as_rng(rng)
    ns = system.num_nodes
    if num_tasks is None:
        lo = max(config.min_tasks, ns)  # at least one task per cluster
        if config.log_uniform_tasks:
            log_n = gen.uniform(np.log(lo), np.log(config.max_tasks))
            num_tasks = int(round(np.exp(log_n)))
        else:
            num_tasks = int(gen.integers(lo, config.max_tasks + 1))
    graph = build_workload(
        config.workload,
        config.workload_factory_params(num_tasks, f"exp{index}-{system.name}"),
        rng=gen,
    )
    clustering = get_clusterer(
        config.clusterer, num_clusters=ns, **config.clusterer_params
    ).cluster(graph, rng=gen)
    clustered = ClusteredGraph(graph, clustering)

    mapper = get_mapper(config.mapper, **config.mapper_factory_params())
    outcome = mapper.map(clustered, system, rng=gen)
    random_stats = average_random_mapping(
        clustered, system, samples=config.random_samples, rng=gen
    )
    row = ExperimentRow(
        index=index,
        num_tasks=graph.num_tasks,
        num_processors=ns,
        topology=system.name,
        lower_bound=outcome.lower_bound,
        our_total_time=outcome.total_time,
        random_mean_total_time=random_stats.mean_total_time,
        reached_lower_bound=outcome.reached_lower_bound,
    )
    return row, outcome


def run_table(
    systems: list[SystemGraph],
    config: ExperimentConfig = ExperimentConfig(),
    rng: int | np.random.Generator | None = None,
) -> list[ExperimentRow]:
    """Run one experiment per system graph (one paper table)."""
    gen = as_rng(rng)
    rows = []
    for i, system in enumerate(systems, start=1):
        row, _ = run_experiment(i, system, config, rng=gen)
        rows.append(row)
    return rows
