"""Experiment runner: one paper-style experiment end to end.

One experiment (one row of Tables 1-3) is:

1. generate a random problem graph (``np`` in [30, 300]),
2. randomly cluster it into ``na == ns`` clusters,
3. map with the configured mapper (default: the critical-edge strategy
   with initial + refinement + termination condition) via the
   :mod:`repro.api` registry,
4. map the same instance with ``random_samples`` random assignments and
   average their total times,
5. report both as percentages over the ideal lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..analysis.stats import ExperimentRow
from ..api import MapOutcome, get_mapper
from ..baselines.random_map import average_random_mapping
from ..clustering.simple import RandomClusterer
from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import as_rng
from ..workloads.random_dag import layered_random_dag

__all__ = ["ExperimentConfig", "run_experiment", "run_table"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one table of experiments (paper Sec. 5 ranges by default).

    The paper publishes only the ranges (``np`` in [30, 300], ``ns`` in
    [4, 40], "weights ... produced randomly"); the remaining defaults were
    calibrated so the reproduction matches the paper's *shape* — proposed
    mapping within ~0-25% of the lower bound, averaged random mapping
    ~20-90% above it, and a sizable fraction of runs terminating by
    hitting the bound (``mimdmap sensitivity`` reruns the calibration):

    * ``extra_edges_per_task = 0.5`` keeps the mean degree constant as
      graphs grow (task graphs from real programs are sparse); dense
      graphs make the lower bound unreachable for *every* mapper.
    * ``comm_range = (1, 5)`` against ``task_size_range = (1, 10)`` puts
      communication at roughly half the weight of computation, which is
      what the paper's own Fig. 2 example uses.
    * ``log_uniform_tasks`` draws ``np`` log-uniformly from [30, 300]:
      the termination condition fires mostly on small instances (short
      critical chains embed exactly), and the paper's per-table hit
      counts (7/11 on meshes) require many such instances.

    ``mapper`` names any registered mapper (``repro.api.available_mappers()``);
    ``mapper_params`` are extra factory keywords for it.  The legacy
    ``refinement``/``refinement_trials`` knobs keep configuring the
    default ``critical`` mapper.
    """

    min_tasks: int = 30
    max_tasks: int = 300
    random_samples: int = 20
    extra_edge_prob: float | None = None  # None: constant-mean-degree default
    extra_edges_per_task: float = 0.5
    log_uniform_tasks: bool = True
    task_size_range: tuple[int, int] = (1, 10)
    comm_range: tuple[int, int] = (1, 5)
    refinement: str = "random"
    refinement_trials: int | None = None  # None = the paper's ns
    mapper: str = "critical"
    mapper_params: Mapping[str, object] = field(default_factory=dict)

    def mapper_factory_params(self) -> dict[str, object]:
        """Constructor keywords for :func:`repro.api.get_mapper`."""
        params = dict(self.mapper_params)
        if self.mapper == "critical":
            params.setdefault("refinement", self.refinement)
            params.setdefault("refinement_trials", self.refinement_trials)
        return params


def run_experiment(
    index: int,
    system: SystemGraph,
    config: ExperimentConfig = ExperimentConfig(),
    rng: int | np.random.Generator | None = None,
    num_tasks: int | None = None,
) -> tuple[ExperimentRow, MapOutcome]:
    """Run one experiment on ``system``; returns the table row and the outcome."""
    gen = as_rng(rng)
    ns = system.num_nodes
    if num_tasks is None:
        lo = max(config.min_tasks, ns)  # at least one task per cluster
        if config.log_uniform_tasks:
            log_n = gen.uniform(np.log(lo), np.log(config.max_tasks))
            num_tasks = int(round(np.exp(log_n)))
        else:
            num_tasks = int(gen.integers(lo, config.max_tasks + 1))
    graph = layered_random_dag(
        num_tasks=num_tasks,
        extra_edge_prob=config.extra_edge_prob,
        extra_edges_per_task=config.extra_edges_per_task,
        task_size_range=config.task_size_range,
        comm_range=config.comm_range,
        rng=gen,
        name=f"exp{index}-{system.name}",
    )
    clustering = RandomClusterer(num_clusters=ns).cluster(graph, rng=gen)
    clustered = ClusteredGraph(graph, clustering)

    mapper = get_mapper(config.mapper, **config.mapper_factory_params())
    outcome = mapper.map(clustered, system, rng=gen)
    random_stats = average_random_mapping(
        clustered, system, samples=config.random_samples, rng=gen
    )
    row = ExperimentRow(
        index=index,
        num_tasks=num_tasks,
        num_processors=ns,
        topology=system.name,
        lower_bound=outcome.lower_bound,
        our_total_time=outcome.total_time,
        random_mean_total_time=random_stats.mean_total_time,
        reached_lower_bound=outcome.reached_lower_bound,
    )
    return row, outcome


def run_table(
    systems: list[SystemGraph],
    config: ExperimentConfig = ExperimentConfig(),
    rng: int | np.random.Generator | None = None,
) -> list[ExperimentRow]:
    """Run one experiment per system graph (one paper table)."""
    gen = as_rng(rng)
    rows = []
    for i, system in enumerate(systems, start=1):
        row, _ = run_experiment(i, system, config, rng=gen)
        rows.append(row)
    return rows
