"""Drivers for the paper's Tables 1-3 (and Figs. 25-27).

* Table 1 / Fig. 25 — mapping to hypercubes (10 experiments).
* Table 2 / Fig. 26 — mapping to 2-D meshes (11 experiments).
* Table 3 / Fig. 27 — mapping to random topologies (17 experiments).

System sizes follow the paper's ``ns in [4, 40]``; the exact per-row
sizes were not published, so each table cycles through its family's
admissible sizes (hypercubes are powers of two, meshes are the
factorable counts) deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from ..analysis.histogram import render_histogram
from ..analysis.stats import ExperimentRow
from ..analysis.tables import render_experiment_table
from ..topology.base import SystemGraph
from ..topology.generators import hypercube, mesh2d, random_connected
from ..utils import as_rng
from .runner import ExperimentConfig, run_table

__all__ = [
    "table1_systems",
    "table2_systems",
    "table3_systems",
    "run_table1",
    "run_table2",
    "run_table3",
    "format_table",
    "format_figure",
]

#: Paper table sizes: 10 hypercube rows, 11 mesh rows, 17 random rows.
TABLE1_ROWS = 10
TABLE2_ROWS = 11
TABLE3_ROWS = 17


def table1_systems(rows: int = TABLE1_ROWS) -> list[SystemGraph]:
    """Hypercubes with 4-32 nodes (the paper's ns range caps at 40)."""
    dims = [2, 3, 4, 5]  # 4, 8, 16, 32 nodes
    return [hypercube(dims[i % len(dims)]) for i in range(rows)]


def table2_systems(rows: int = TABLE2_ROWS) -> list[SystemGraph]:
    """2-D meshes with 4-24 nodes.

    The paper's global ``ns`` range is 4-40 but its mesh results (7 of 11
    runs hitting the lower bound exactly) are only reachable when the
    critical cluster subgraph embeds into the mesh, which confines the
    mesh family to the small end of the range — see EXPERIMENTS.md.
    """
    shapes = [(2, 2), (2, 3), (3, 3), (3, 4), (4, 4), (4, 5), (4, 6)]
    return [mesh2d(*shapes[i % len(shapes)]) for i in range(rows)]


def table3_systems(
    rows: int = TABLE3_ROWS, rng: int | np.random.Generator | None = None
) -> list[SystemGraph]:
    """Random connected topologies with 4-40 nodes."""
    gen = as_rng(rng)
    systems = []
    for _ in range(rows):
        n = int(gen.integers(4, 41))
        systems.append(random_connected(n, extra_edge_prob=0.15, rng=gen))
    return systems


def run_table1(
    rng: int | np.random.Generator | None = 1991,
    rows: int = TABLE1_ROWS,
    config: ExperimentConfig = ExperimentConfig(),
) -> list[ExperimentRow]:
    """Experiment E1: Table 1 / Fig. 25 (hypercubes)."""
    return run_table(table1_systems(rows), config, rng=rng)


def run_table2(
    rng: int | np.random.Generator | None = 1991,
    rows: int = TABLE2_ROWS,
    config: ExperimentConfig = ExperimentConfig(),
) -> list[ExperimentRow]:
    """Experiment E2: Table 2 / Fig. 26 (meshes)."""
    return run_table(table2_systems(rows), config, rng=rng)


def run_table3(
    rng: int | np.random.Generator | None = 1991,
    rows: int = TABLE3_ROWS,
    config: ExperimentConfig = ExperimentConfig(),
) -> list[ExperimentRow]:
    """Experiment E3: Table 3 / Fig. 27 (random topologies)."""
    gen = as_rng(rng)
    return run_table(table3_systems(rows, rng=gen), config, rng=gen)


def format_table(rows: list[ExperimentRow], number: int) -> str:
    """Render a table exactly like the paper's Table ``number``."""
    titles = {
        1: "Table 1 — Mapping to Hypercubes",
        2: "Table 2 — Mapping to Meshes",
        3: "Table 3 — Mapping to Randomly Produced Topologies",
    }
    return render_experiment_table(rows, titles.get(number, f"Table {number}"))


def format_figure(rows: list[ExperimentRow], number: int) -> str:
    """Render the histogram figure paired with each table (Figs. 25-27)."""
    titles = {
        25: "Fig. 25 — Mapping to Hypercubes (percent over lower bound)",
        26: "Fig. 26 — Mapping to Meshes (percent over lower bound)",
        27: "Fig. 27 — Mapping to Random Topologies (percent over lower bound)",
    }
    return render_histogram(rows, titles.get(number, f"Fig. {number}"))
