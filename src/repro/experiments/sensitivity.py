"""Sensitivity study: how the unpublished workload knobs move the results.

The paper publishes only ranges for its random workloads (``np`` in
[30, 300], ``ns`` in [4, 40], "weights produced randomly").  DESIGN.md's
substitution policy requires us to show *which* of the hidden knobs the
headline numbers are sensitive to, so EXPERIMENTS.md can justify the
calibrated defaults.  Three sweeps:

* **communication weight ratio** — comm range vs. task-size range moves
  both columns up together and widens the random-vs-ours gap;
* **edge density** — extra edges per task; dense graphs push *every*
  mapper far from the (unreachable) bound;
* **problem size** (``np`` at fixed ``ns``) — small instances are where
  the termination condition fires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.random_map import average_random_mapping
from ..clustering.simple import RandomClusterer
from ..core.clustered import ClusteredGraph
from ..core.mapper import CriticalEdgeMapper
from ..topology.base import SystemGraph
from ..topology.generators import hypercube, mesh2d
from ..utils import as_rng
from ..workloads.random_dag import layered_random_dag

__all__ = [
    "SensitivityPoint",
    "sweep_comm_ratio",
    "sweep_edge_density",
    "sweep_problem_size",
    "format_sweep",
]


@dataclass(frozen=True)
class SensitivityPoint:
    """Aggregated outcome of one knob setting over several instances."""

    knob: str
    value: float
    ours_pct_mean: float
    random_pct_mean: float
    improvement_mean: float
    hit_rate: float
    instances: int


def _run_batch(
    systems: list[SystemGraph],
    instances: int,
    gen: np.random.Generator,
    *,
    knob: str,
    value: float,
    comm_hi: int = 5,
    extra_per_task: float = 0.5,
    num_tasks: int | None = None,
) -> SensitivityPoint:
    ours, rand, hits, count = [], [], 0, 0
    for system in systems:
        ns = system.num_nodes
        for _ in range(instances):
            n = num_tasks if num_tasks is not None else int(gen.integers(max(30, ns), 301))
            graph = layered_random_dag(
                num_tasks=n,
                comm_range=(1, comm_hi),
                extra_edges_per_task=extra_per_task,
                rng=gen,
            )
            clustering = RandomClusterer(ns).cluster(graph, rng=gen)
            clustered = ClusteredGraph(graph, clustering)
            result = CriticalEdgeMapper(rng=gen).map(clustered, system)
            stats = average_random_mapping(clustered, system, samples=10, rng=gen)
            ours.append(100 * result.total_time / result.lower_bound)
            rand.append(100 * stats.mean_total_time / result.lower_bound)
            hits += result.is_provably_optimal
            count += 1
    return SensitivityPoint(
        knob=knob,
        value=value,
        ours_pct_mean=float(np.mean(ours)),
        random_pct_mean=float(np.mean(rand)),
        improvement_mean=float(np.mean(rand) - np.mean(ours)),
        hit_rate=hits / count,
        instances=count,
    )


def _default_systems() -> list[SystemGraph]:
    return [hypercube(3), mesh2d(3, 3)]


def sweep_comm_ratio(
    rng: int | np.random.Generator | None = 5,
    comm_highs: tuple[int, ...] = (2, 5, 10),
    instances: int = 3,
) -> list[SensitivityPoint]:
    """Vary the communication weight ceiling (task sizes stay 1-10)."""
    gen = as_rng(rng)
    return [
        _run_batch(
            _default_systems(), instances, gen,
            knob="comm_hi", value=hi, comm_hi=hi,
        )
        for hi in comm_highs
    ]


def sweep_edge_density(
    rng: int | np.random.Generator | None = 5,
    densities: tuple[float, ...] = (0.25, 0.5, 1.5, 3.0),
    instances: int = 3,
) -> list[SensitivityPoint]:
    """Vary the extra edges per task (the DAG density)."""
    gen = as_rng(rng)
    return [
        _run_batch(
            _default_systems(), instances, gen,
            knob="extra_edges_per_task", value=d, extra_per_task=d,
        )
        for d in densities
    ]


def sweep_problem_size(
    rng: int | np.random.Generator | None = 5,
    task_counts: tuple[int, ...] = (40, 80, 160, 300),
    instances: int = 3,
) -> list[SensitivityPoint]:
    """Vary np at fixed machines (hits concentrate on small np)."""
    gen = as_rng(rng)
    return [
        _run_batch(
            _default_systems(), instances, gen,
            knob="num_tasks", value=n, num_tasks=n,
        )
        for n in task_counts
    ]


def format_sweep(points: list[SensitivityPoint], title: str) -> str:
    """Render one sweep as a table."""
    from ..analysis.tables import render_table

    body = [
        (
            p.value,
            f"{p.ours_pct_mean:.0f}%",
            f"{p.random_pct_mean:.0f}%",
            f"{p.improvement_mean:.0f}",
            f"{p.hit_rate:.0%}",
            p.instances,
        )
        for p in points
    ]
    return render_table(
        [points[0].knob, "ours", "random", "improvement", "bound hits", "n"],
        body,
        title=title,
    )
