"""Experiment E6: the paper's worked example end to end (Figs. 2-6, 18-24).

Runs the whole Fig. 1 pipeline on the reconstructed running example and
checks every milestone the paper walks through:

* the ideal schedule matches Fig. 22-b (start/end vectors) and the lower
  bound is 14;
* the critical abstract edges are (0,1) weight 3 and (0,2) weight 6 with
  critical degree 9 on abstract node 0 (Fig. 20-b);
* the initial assignment puts both critical abstract edges on single
  system edges and reaches total time 14 — the termination condition
  fires with *zero* refinement trials (Fig. 24).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.gantt import render_gantt, render_ideal_gantt
from ..core.mapper import CriticalEdgeMapper, MappingResult
from ..workloads.paper_examples import (
    RUNNING_EXAMPLE_I_END,
    RUNNING_EXAMPLE_I_START,
    RUNNING_EXAMPLE_LOWER_BOUND,
    running_example_clustered,
    running_example_system,
)

__all__ = ["WorkedExampleReport", "run_worked_example", "format_worked_example"]


@dataclass(frozen=True)
class WorkedExampleReport:
    """Milestones of the worked example, checked against the paper."""

    result: MappingResult
    ideal_matches_fig22: bool
    lower_bound_is_14: bool
    critical_abstract_edges: list[tuple[int, int, int]]  # (a, b, weight)
    critical_degree_node0: int
    refinement_trials: int
    reached_lower_bound: bool

    @property
    def all_milestones_pass(self) -> bool:
        return (
            self.ideal_matches_fig22
            and self.lower_bound_is_14
            and (0, 1, 3) in self.critical_abstract_edges
            and (0, 2, 6) in self.critical_abstract_edges
            and self.critical_degree_node0 == 9
            and self.reached_lower_bound
        )


def run_worked_example(rng: int = 0) -> WorkedExampleReport:
    """Run the pipeline on the running example and verify the milestones."""
    clustered = running_example_clustered()
    system = running_example_system()
    result = CriticalEdgeMapper(rng=rng).map(clustered, system)

    ideal_ok = np.array_equal(
        result.ideal.i_start, np.asarray(RUNNING_EXAMPLE_I_START)
    ) and np.array_equal(result.ideal.i_end, np.asarray(RUNNING_EXAMPLE_I_END))

    c_abs = result.analysis.c_abs_edge
    edges = [
        (a, b, int(c_abs[a, b]))
        for a, b in result.analysis.critical_abstract_edges()
    ]
    return WorkedExampleReport(
        result=result,
        ideal_matches_fig22=ideal_ok,
        lower_bound_is_14=result.lower_bound == RUNNING_EXAMPLE_LOWER_BOUND,
        critical_abstract_edges=edges,
        critical_degree_node0=int(result.analysis.critical_degree[0]),
        refinement_trials=result.refinement.trials,
        reached_lower_bound=result.is_provably_optimal,
    )


def format_worked_example(report: WorkedExampleReport) -> str:
    """Narrated run including the Fig. 6 and Fig. 24 Gantt charts."""
    result = report.result
    lines = [
        "Worked example (paper Figs. 2-6, 18-24)",
        "",
        "Ideal graph (Fig. 6 — one column per cluster):",
        render_ideal_gantt(result.ideal),
        "",
        f"ideal start/end match Fig. 22-b : {report.ideal_matches_fig22}",
        f"lower bound == 14               : {report.lower_bound_is_14}",
        f"critical abstract edges         : {report.critical_abstract_edges} "
        "(paper: (0,1) w=3, (0,2) w=6)",
        f"critical degree of node 0       : {report.critical_degree_node0} (paper: 9)",
        "",
        "Final mapping (Fig. 24 — one column per processor):",
        render_gantt(result.schedule),
        "",
        f"assignment (assi)               : {result.assignment.assi.tolist()}",
        f"total time                      : {result.total_time}",
        f"refinement trials               : {report.refinement_trials} "
        "(termination condition fired on the initial assignment)",
        f"provably optimal                : {report.reached_lower_bound}",
        "",
        f"ALL MILESTONES PASS             : {report.all_milestones_pass}",
    ]
    return "\n".join(lines)
