"""Experiment harness: everything needed to regenerate the paper's
tables and figures plus the ablations DESIGN.md calls out."""

from .ablations import (
    BASELINE_LABELS,
    AblationRow,
    default_ablation_systems,
    run_baseline_comparison,
    run_exchange_ablation,
    run_fidelity_ablation,
    run_guidance_ablation,
    run_refinement_ablation,
    run_scaling_study,
)
from .clusterings import (
    ClusteringStudyRow,
    format_clustering_study,
    run_clustering_study,
)
from .counterexamples import (
    CounterexampleReport,
    format_counterexample,
    run_bokhari_counterexample,
    run_lee_counterexample,
)
from .runner import ExperimentConfig, run_experiment, run_table
from .sensitivity import (
    SensitivityPoint,
    format_sweep,
    sweep_comm_ratio,
    sweep_edge_density,
    sweep_problem_size,
)
from .tables import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
    format_figure,
    format_table,
    run_table1,
    run_table2,
    run_table3,
    table1_systems,
    table2_systems,
    table3_systems,
)
from .worked_example import (
    WorkedExampleReport,
    format_worked_example,
    run_worked_example,
)

__all__ = [
    "AblationRow",
    "BASELINE_LABELS",
    "ClusteringStudyRow",
    "CounterexampleReport",
    "ExperimentConfig",
    "format_clustering_study",
    "run_clustering_study",
    "SensitivityPoint",
    "TABLE1_ROWS",
    "TABLE2_ROWS",
    "TABLE3_ROWS",
    "WorkedExampleReport",
    "format_sweep",
    "default_ablation_systems",
    "format_counterexample",
    "format_figure",
    "format_table",
    "format_worked_example",
    "run_baseline_comparison",
    "run_bokhari_counterexample",
    "run_exchange_ablation",
    "run_experiment",
    "run_fidelity_ablation",
    "run_guidance_ablation",
    "run_lee_counterexample",
    "run_refinement_ablation",
    "run_scaling_study",
    "run_table",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_worked_example",
    "sweep_comm_ratio",
    "sweep_edge_density",
    "sweep_problem_size",
    "table1_systems",
    "table2_systems",
    "table3_systems",
]
