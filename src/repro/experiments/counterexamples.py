"""Experiments E4/E5: the Sec. 2.2 counterexamples, proved exhaustively.

The paper's argument (Figs. 7-17): optimizing an *indirect* measure —
Bokhari's cardinality or Lee & Aggarwal's phase communication cost —
can yield assignments that are strictly worse in total time than the
true optimum.  We reconstruct both instances and *prove* the phenomena
by enumerating all ``8! = 40320`` assignments:

* among assignments maximizing cardinality, the best total time is
  strictly larger than the global optimum (E4, Figs. 7-12);
* among assignments minimizing the Lee cost, the best total time is
  strictly larger than the global optimum (E5, Figs. 13-17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.exhaustive import all_assignment_total_times
from ..core.abstract import AbstractGraph
from ..core.clustered import ClusteredGraph
from ..core.ideal import lower_bound
from ..workloads.paper_examples import (
    bokhari_counterexample_system,
    bokhari_counterexample_task_graph,
    lee_counterexample_phases,
    lee_counterexample_system,
    lee_counterexample_task_graph,
    singleton_clustering,
)

__all__ = [
    "CounterexampleReport",
    "run_bokhari_counterexample",
    "run_lee_counterexample",
    "format_counterexample",
]


@dataclass(frozen=True)
class CounterexampleReport:
    """Outcome of one exhaustive counterexample experiment.

    ``objective_name`` is the indirect measure; ``objective_best`` its
    optimum; ``time_at_objective_optimum`` the best *total time* among
    assignments attaining that optimum; ``global_best_time`` the true
    time optimum over all assignments.
    """

    name: str
    objective_name: str
    objective_best: int
    time_at_objective_optimum: int
    global_best_time: int
    lower_bound: int
    assignments_enumerated: int

    @property
    def phenomenon_holds(self) -> bool:
        """True iff the indirect-measure optimum is not time-optimal."""
        return self.time_at_objective_optimum > self.global_best_time

    @property
    def gap(self) -> int:
        """Extra time units paid by trusting the indirect measure."""
        return self.time_at_objective_optimum - self.global_best_time


def _placements(perms: np.ndarray) -> np.ndarray:
    """Invert a batch of ``assi`` permutations to ``cluster -> system``."""
    placement = np.empty_like(perms)
    rows = np.arange(perms.shape[0])[:, None]
    placement[rows, perms] = np.arange(perms.shape[1])[None, :]
    return placement


def run_bokhari_counterexample() -> CounterexampleReport:
    """E4: cardinality-optimal != time-optimal (paper Figs. 7-12)."""
    graph = bokhari_counterexample_task_graph()
    system = bokhari_counterexample_system()
    clustered = ClusteredGraph(graph, singleton_clustering(graph))
    abstract = AbstractGraph(clustered)

    perms, times = all_assignment_total_times(clustered, system)
    placement = _placements(perms)
    # Batch cardinality: count abstract edges whose hosts are adjacent.
    srcs, dsts = np.nonzero(np.triu(abstract.abs_edge, 1))
    adj = system.sys_edge[placement[:, srcs], placement[:, dsts]]
    cards = adj.sum(axis=1)

    best_card = int(cards.max())
    best_time_at_card = int(times[cards == best_card].min())
    return CounterexampleReport(
        name="Bokhari cardinality (Figs. 7-12)",
        objective_name="cardinality (maximize)",
        objective_best=best_card,
        time_at_objective_optimum=best_time_at_card,
        global_best_time=int(times.min()),
        lower_bound=lower_bound(clustered),
        assignments_enumerated=perms.shape[0],
    )


def run_lee_counterexample() -> CounterexampleReport:
    """E5: comm-cost-optimal != time-optimal (paper Figs. 13-17)."""
    graph = lee_counterexample_task_graph()
    system = lee_counterexample_system()
    clustered = ClusteredGraph(graph, singleton_clustering(graph))
    phases = lee_counterexample_phases()

    perms, times = all_assignment_total_times(clustered, system)
    placement = _placements(perms)
    labels = clustered.clustering.labels
    clus = clustered.clus_edge
    # Batch Lee cost: per phase, max over edges of weight * hop distance.
    costs = np.zeros(perms.shape[0], dtype=np.int64)
    for phase in phases:
        phase_max = np.zeros(perms.shape[0], dtype=np.int64)
        for i, j in phase:
            w = int(clus[i, j])
            if w == 0:
                continue
            dist = system.shortest[
                placement[:, labels[i]], placement[:, labels[j]]
            ]
            phase_max = np.maximum(phase_max, w * dist)
        costs += phase_max

    best_cost = int(costs.min())
    best_time_at_cost = int(times[costs == best_cost].min())
    return CounterexampleReport(
        name="Lee & Aggarwal communication cost (Figs. 13-17)",
        objective_name="phase communication cost (minimize)",
        objective_best=best_cost,
        time_at_objective_optimum=best_time_at_cost,
        global_best_time=int(times.min()),
        lower_bound=lower_bound(clustered),
        assignments_enumerated=perms.shape[0],
    )


def format_counterexample(report: CounterexampleReport) -> str:
    """Human-readable summary of one counterexample experiment."""
    verdict = "HOLDS" if report.phenomenon_holds else "does NOT hold"
    return "\n".join(
        [
            f"{report.name}",
            f"  indirect objective : {report.objective_name}, optimum = "
            f"{report.objective_best}",
            f"  best total time among objective-optimal assignments : "
            f"{report.time_at_objective_optimum}",
            f"  global best total time : {report.global_best_time} "
            f"(ideal lower bound {report.lower_bound})",
            f"  assignments enumerated : {report.assignments_enumerated}",
            f"  => indirect-optimal is {report.gap} time units slower; "
            f"phenomenon {verdict}",
        ]
    )
