"""Clustering-impact study: how much the np -> na step matters.

The paper deliberately takes the clustering as given ("we assume that an
existing technique is first applied", Sec. 1).  This study quantifies
what that assumption hides: the same mapping strategy applied after each
of the library's clusterers, on structured and random workloads.  Two
observations it makes concrete:

* the *lower bound itself* moves with the clustering (structure-aware
  clusterers internalize heavy edges), so percent-over-bound alone
  cannot compare clusterings — absolute total time can;
* the mapping stage recovers part, but not all, of a bad clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering import (
    BandClusterer,
    DscClusterer,
    EdgeZeroClusterer,
    LinearClusterer,
    LoadBalanceClusterer,
    RandomClusterer,
)
from ..core.clustered import ClusteredGraph
from ..core.mapper import CriticalEdgeMapper
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from ..topology.generators import mesh2d
from ..utils import as_rng
from ..workloads.linalg import gaussian_elimination_dag
from ..workloads.random_dag import layered_random_dag

__all__ = ["ClusteringStudyRow", "run_clustering_study", "format_clustering_study"]

CLUSTERERS = {
    "random": RandomClusterer,
    "band": BandClusterer,
    "load_balance": LoadBalanceClusterer,
    "linear": LinearClusterer,
    "edge_zero": EdgeZeroClusterer,
    "dsc": DscClusterer,
}


@dataclass(frozen=True)
class ClusteringStudyRow:
    """One workload under one clusterer."""

    workload: str
    clusterer: str
    cut_weight: int
    lower_bound: int
    total_time: int
    reached_lower_bound: bool


def run_clustering_study(
    rng: int | np.random.Generator | None = 3,
    system: SystemGraph | None = None,
    workloads: list[TaskGraph] | None = None,
) -> list[ClusteringStudyRow]:
    """Map every workload under every clusterer on one machine."""
    gen = as_rng(rng)
    system = system or mesh2d(3, 3)
    if workloads is None:
        workloads = [
            gaussian_elimination_dag(12),
            layered_random_dag(num_tasks=90, rng=gen, name="random-90"),
        ]
    rows = []
    for graph in workloads:
        for name, cls in CLUSTERERS.items():
            clustering = cls(system.num_nodes).cluster(graph, rng=gen)
            clustered = ClusteredGraph(graph, clustering)
            result = CriticalEdgeMapper(rng=gen).map(clustered, system)
            rows.append(
                ClusteringStudyRow(
                    workload=graph.name,
                    clusterer=name,
                    cut_weight=clustered.cut_weight(),
                    lower_bound=result.lower_bound,
                    total_time=result.total_time,
                    reached_lower_bound=result.is_provably_optimal,
                )
            )
    return rows


def format_clustering_study(rows: list[ClusteringStudyRow]) -> str:
    """Render the study as a table grouped by workload."""
    from ..analysis.tables import render_table

    body = [
        (
            r.workload,
            r.clusterer,
            r.cut_weight,
            r.lower_bound,
            f"{r.total_time}{'*' if r.reached_lower_bound else ''}",
            f"{100 * r.total_time / r.lower_bound:.0f}%",
        )
        for r in rows
    ]
    return render_table(
        ["workload", "clusterer", "cut", "lower bound", "mapped", "% of bound"],
        body,
        title="Clustering impact (same machine, same mapper; * = bound met)",
    )
