"""Ablation experiments A1-A5 and the complexity check E8 (DESIGN.md).

* A1 — initial assignment alone vs. with refinement.
* A2 — critical-edge guidance on vs. off (degree/intensity-only greedy).
* A3 — random re-placement vs. pairwise exchange refinement (the paper
  claims random re-placement "works better than pairwise exchanges").
* A4 — model fidelity: the analytic model vs. the DES with serialized
  processors and link contention.
* A5 — head-to-head against the baselines (random, Bokhari, Lee,
  annealing, quenching) on total time.
* E8 — empirical scaling of the mapping time against the paper's
  O(ns * np^2) bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.components import build_workload, get_clusterer
from ..core.clustered import ClusteredGraph
from ..core.mapper import CriticalEdgeMapper
from ..sim.engine import SimConfig, simulate
from ..topology.base import SystemGraph
from ..topology.generators import hypercube, mesh2d, random_connected
from ..utils import Stopwatch, as_rng

__all__ = [
    "AblationRow",
    "BASELINE_LABELS",
    "run_refinement_ablation",
    "run_guidance_ablation",
    "run_exchange_ablation",
    "run_fidelity_ablation",
    "run_baseline_comparison",
    "run_scaling_study",
    "default_ablation_systems",
]


@dataclass(frozen=True)
class AblationRow:
    """One instance's outcomes under the variants being compared.

    ``values`` maps variant name -> total time (or makespan / runtime,
    depending on the study); ``lower_bound`` normalizes them.
    """

    instance: str
    lower_bound: int
    values: dict[str, float]


def default_ablation_systems(
    rng: int | np.random.Generator | None = None,
) -> list[SystemGraph]:
    """One machine per family, paper-scale."""
    gen = as_rng(rng)
    return [hypercube(3), mesh2d(3, 3), random_connected(8, rng=gen)]


def _instances(
    systems: list[SystemGraph],
    instances_per_system: int,
    gen: np.random.Generator,
    num_tasks: int = 120,
    workload: str = "layered_random",
    workload_params: dict | None = None,
    clusterer: str = "random",
):
    """Ablation instances, with the workload/clusterer axes registry-named.

    ``num_tasks`` only applies to the random-DAG generators; fixed-
    structure workloads (``fft``, ``cholesky``, ...) are sized entirely
    by ``workload_params``.
    """
    params = dict(workload_params or {})
    if workload in ("layered_random", "gnp", "series_parallel"):
        params.setdefault("num_tasks", num_tasks)
    for system in systems:
        for k in range(instances_per_system):
            graph = build_workload(workload, params, rng=gen)
            clustering = get_clusterer(
                clusterer, num_clusters=system.num_nodes
            ).cluster(graph, rng=gen)
            yield f"{system.name}#{k}", ClusteredGraph(graph, clustering), system


def run_refinement_ablation(
    rng: int | np.random.Generator | None = 7,
    systems: list[SystemGraph] | None = None,
    instances_per_system: int = 3,
) -> list[AblationRow]:
    """A1: does refinement improve on the initial assignment?"""
    gen = as_rng(rng)
    systems = systems or default_ablation_systems(gen)
    rows = []
    for name, clustered, system in _instances(systems, instances_per_system, gen):
        result = CriticalEdgeMapper(refinement="random", rng=gen).map(clustered, system)
        rows.append(
            AblationRow(
                instance=name,
                lower_bound=result.lower_bound,
                values={
                    "initial_only": float(result.initial_total_time),
                    "with_refinement": float(result.total_time),
                },
            )
        )
    return rows


def run_guidance_ablation(
    rng: int | np.random.Generator | None = 7,
    systems: list[SystemGraph] | None = None,
    instances_per_system: int = 3,
) -> list[AblationRow]:
    """A2: what do the critical edges buy over degree/intensity greedy?"""
    gen = as_rng(rng)
    systems = systems or default_ablation_systems(gen)
    rows = []
    for name, clustered, system in _instances(systems, instances_per_system, gen):
        seed = int(gen.integers(0, 2**31))
        guided = CriticalEdgeMapper(rng=seed).map(clustered, system)
        unguided = CriticalEdgeMapper(use_critical_guidance=False, rng=seed).map(
            clustered, system
        )
        rows.append(
            AblationRow(
                instance=name,
                lower_bound=guided.lower_bound,
                values={
                    "critical_guided": float(guided.total_time),
                    "unguided": float(unguided.total_time),
                },
            )
        )
    return rows


def run_exchange_ablation(
    rng: int | np.random.Generator | None = 7,
    systems: list[SystemGraph] | None = None,
    instances_per_system: int = 3,
) -> list[AblationRow]:
    """A3: random re-placement vs pairwise exchange (same trial budget)."""
    gen = as_rng(rng)
    systems = systems or default_ablation_systems(gen)
    rows = []
    for name, clustered, system in _instances(systems, instances_per_system, gen):
        seed = int(gen.integers(0, 2**31))
        random_ref = CriticalEdgeMapper(refinement="random", rng=seed).map(
            clustered, system
        )
        pairwise_ref = CriticalEdgeMapper(refinement="pairwise", rng=seed).map(
            clustered, system
        )
        rows.append(
            AblationRow(
                instance=name,
                lower_bound=random_ref.lower_bound,
                values={
                    "random_replacement": float(random_ref.total_time),
                    "pairwise_exchange": float(pairwise_ref.total_time),
                },
            )
        )
    return rows


def run_fidelity_ablation(
    rng: int | np.random.Generator | None = 7,
    systems: list[SystemGraph] | None = None,
    instances_per_system: int = 2,
) -> list[AblationRow]:
    """A4: how much do serialization and contention add to the makespan?"""
    gen = as_rng(rng)
    systems = systems or default_ablation_systems(gen)
    rows = []
    for name, clustered, system in _instances(systems, instances_per_system, gen):
        result = CriticalEdgeMapper(rng=gen).map(clustered, system)
        assignment = result.assignment
        paper = simulate(clustered, system, assignment)
        serial = simulate(
            clustered, system, assignment, SimConfig(serialize_processors=True)
        )
        contention = simulate(
            clustered, system, assignment, SimConfig(link_contention=True)
        )
        both = simulate(clustered, system, assignment, SimConfig(True, True))
        rows.append(
            AblationRow(
                instance=name,
                lower_bound=result.lower_bound,
                values={
                    "analytic_model": float(paper.makespan),
                    "serialized_cpus": float(serial.makespan),
                    "link_contention": float(contention.makespan),
                    "both": float(both.makespan),
                },
            )
        )
    return rows


#: Registry name -> report label, in the order A5 scores the mappers.
BASELINE_LABELS: dict[str, str] = {
    "critical": "critical_edge (ours)",
    "random": "random (mean)",
    "bokhari": "bokhari_cardinality",
    "lee": "lee_comm_cost",
    "annealing": "simulated_annealing",
    "quenching": "quenching",
    "genetic": "genetic",
    "tabu": "tabu",
}


def run_baseline_comparison(
    rng: int | np.random.Generator | None = 7,
    systems: list[SystemGraph] | None = None,
    instances_per_system: int = 2,
    mappers: dict[str, str] | None = None,
) -> list[AblationRow]:
    """A5: total time of every registered mapper on the same instances.

    ``mappers`` maps registry names to report labels and defaults to
    :data:`BASELINE_LABELS`.  The random baseline is scored by its *mean*
    total time (the paper's Sec. 5 convention); every other mapper by the
    total time of its best assignment.
    """
    from ..api import get_mapper
    from ..utils import MappingError

    gen = as_rng(rng)
    systems = systems or default_ablation_systems(gen)
    mappers = mappers if mappers is not None else BASELINE_LABELS
    if not mappers:
        raise MappingError("run_baseline_comparison needs at least one mapper")
    rows = []
    for name, clustered, system in _instances(systems, instances_per_system, gen):
        values: dict[str, float] = {}
        bound = 0
        for mapper_name, label in mappers.items():
            outcome = get_mapper(mapper_name).map(clustered, system, rng=gen)
            bound = outcome.lower_bound
            values[label] = float(
                outcome.extras.get("mean_total_time", outcome.total_time)
            )
        rows.append(AblationRow(instance=name, lower_bound=bound, values=values))
    return rows


def run_scaling_study(
    rng: int | np.random.Generator | None = 7,
    task_counts: tuple[int, ...] = (50, 100, 200, 400),
    processor_dims: tuple[int, ...] = (3, 4),
) -> list[dict[str, float]]:
    """E8: wall-clock scaling of one full mapping vs np and ns.

    The paper's bound is O(ns * np^2); the returned records include
    ``normalized = seconds / (ns * np^2)``, which should stay roughly
    flat as np grows.
    """
    gen = as_rng(rng)
    records = []
    for dim in processor_dims:
        system = hypercube(dim)
        ns = system.num_nodes
        for n in task_counts:
            graph = build_workload("layered_random", {"num_tasks": n}, rng=gen)
            clustering = get_clusterer("random", num_clusters=ns).cluster(
                graph, rng=gen
            )
            clustered = ClusteredGraph(graph, clustering)
            mapper = CriticalEdgeMapper(rng=gen)
            with Stopwatch() as sw:
                mapper.map(clustered, system)
            records.append(
                {
                    "np": float(n),
                    "ns": float(ns),
                    "seconds": sw.elapsed,
                    "normalized": sw.elapsed / (ns * n * n),
                }
            )
    return records
