"""Graphviz DOT export for task graphs, system graphs, and mappings.

Purely for visual inspection/debugging (no graphviz dependency — we only
*emit* the text format).  Node and edge weights appear as labels; in the
mapping export, clusters become colored groups.
"""

from __future__ import annotations

from ..core.clustered import ClusteredGraph
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph

__all__ = ["task_graph_to_dot", "system_graph_to_dot", "clustered_graph_to_dot"]

# A qualitative palette that stays readable on white backgrounds.
_PALETTE = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
]


def task_graph_to_dot(graph: TaskGraph, one_based: bool = True) -> str:
    """DOT digraph with ``id/size`` node labels and weight edge labels."""
    off = 1 if one_based else 0
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for t in range(graph.num_tasks):
        lines.append(
            f'  t{t} [label="{t + off}\\n({int(graph.task_sizes[t])})", shape=circle];'
        )
    for e in graph.edges():
        lines.append(f'  t{e.src} -> t{e.dst} [label="{e.weight}"];')
    lines.append("}")
    return "\n".join(lines)


def system_graph_to_dot(system: SystemGraph) -> str:
    """DOT (undirected) graph of the machine topology."""
    lines = [f'graph "{system.name}" {{', "  node [shape=box];"]
    for n in range(system.num_nodes):
        lines.append(f'  s{n} [label="P{n}"];')
    for u, v in system.edges():
        lines.append(f"  s{u} -- s{v};")
    lines.append("}")
    return "\n".join(lines)


def clustered_graph_to_dot(clustered: ClusteredGraph, one_based: bool = True) -> str:
    """DOT digraph with one subgraph cluster per abstract node (Fig. 3 style).

    Intra-cluster edges are drawn dashed (their weight is zeroed by
    clustering); inter-cluster edges keep their weight labels.
    """
    graph = clustered.graph
    off = 1 if one_based else 0
    lines = [f'digraph "{graph.name}-clustered" {{', "  rankdir=TB;"]
    for c in range(clustered.num_clusters):
        color = _PALETTE[c % len(_PALETTE)]
        lines.append(f"  subgraph cluster_{c} {{")
        lines.append(f'    label="cluster {c}"; style=filled; color="{color}";')
        for t in clustered.clustering.members(c).tolist():
            lines.append(
                f'    t{t} [label="{t + off}\\n({int(graph.task_sizes[t])})", '
                "shape=circle, fillcolor=white, style=filled];"
            )
        lines.append("  }")
    for e in graph.edges():
        if clustered.cluster_of(e.src) == clustered.cluster_of(e.dst):
            lines.append(f"  t{e.src} -> t{e.dst} [style=dashed];")
        else:
            lines.append(f'  t{e.src} -> t{e.dst} [label="{e.weight}"];')
    lines.append("}")
    return "\n".join(lines)
