"""JSON-Lines helpers for streamed experiment results.

Sweeps append one canonical JSON object per line as work completes, so a
killed run leaves a readable prefix.  :func:`read_jsonl` therefore
tolerates a truncated final line (the one the crash interrupted) while
still rejecting files that are wholesale not JSONL.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from ..utils import GraphError

__all__ = ["dumps_record", "read_jsonl", "write_record"]


def dumps_record(record: dict[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, compact separators, no newline).

    Canonical form makes result files byte-comparable across runs and
    worker counts.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_record(fh: TextIO, record: dict[str, Any]) -> None:
    """Append one record and flush, so readers see every completed line."""
    fh.write(dumps_record(record) + "\n")
    fh.flush()


def read_jsonl(
    path: str | Path, *, tolerate_partial: bool = True
) -> list[dict[str, Any]]:
    """Read a JSONL file into a list of dicts.

    The reader's contract, which the sweep checkpoints and the service
    result store both rely on:

    * an empty (or all-blank) file is a valid empty result, not an error;
    * with ``tolerate_partial`` (the default), a line that fails to
      *parse* is tolerated only as the **final** line — the signature of
      a truncated/killed writer, however many complete records precede
      it — and is silently dropped; anywhere else it raises
      :class:`GraphError`;
    * a line that parses but is not a JSON **object** always raises:
      every record is written as an object and no proper prefix of a
      serialized object is itself valid JSON, so a well-formed non-dict
      line can never be a torn tail — it means the file is not a record
      stream at all.
    """
    lines = Path(path).read_text().splitlines()
    records: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if tolerate_partial and i == len(lines) - 1:
                break
            raise GraphError(
                f"{path}: line {i + 1} is not valid JSON: {line[:80]!r}"
            ) from None
        if not isinstance(record, dict):
            raise GraphError(
                f"{path}: line {i + 1} is valid JSON but not an object "
                f"(got {type(record).__name__}): {line[:80]!r}"
            )
        records.append(record)
    return records
