"""I/O: JSON round-tripping, JSONL streaming, DOT export, matrix printing."""

from .dot import clustered_graph_to_dot, system_graph_to_dot, task_graph_to_dot
from .export import rows_to_csv, rows_to_json, save_rows
from .jsonl import dumps_record, read_jsonl, write_record
from .matrixfmt import format_matrix, format_paper_matrices, format_vector
from .serialize import (
    assignment_from_dict,
    assignment_to_dict,
    clustering_from_dict,
    clustering_to_dict,
    load_instance,
    save_instance,
    system_graph_from_dict,
    system_graph_to_dict,
    task_graph_from_dict,
    task_graph_to_dict,
)

__all__ = [
    "assignment_from_dict",
    "assignment_to_dict",
    "clustered_graph_to_dot",
    "clustering_from_dict",
    "clustering_to_dict",
    "dumps_record",
    "format_matrix",
    "format_paper_matrices",
    "format_vector",
    "load_instance",
    "read_jsonl",
    "rows_to_csv",
    "rows_to_json",
    "save_instance",
    "save_rows",
    "write_record",
    "system_graph_from_dict",
    "system_graph_to_dict",
    "task_graph_from_dict",
    "task_graph_to_dict",
]
