"""Paper-style matrix pretty-printing (Figs. 18-23).

The paper communicates every data structure as a small integer matrix
with 1-based row/column task ids.  :func:`format_matrix` reproduces that
presentation (blank for zero, 1-based headers) so a mapping instance can
be compared against the paper's figures by eye; :func:`format_paper_
matrices` dumps the whole Sec. 3 bundle.
"""

from __future__ import annotations

import numpy as np

from ..core.matrices import PaperMatrices

__all__ = ["format_matrix", "format_vector", "format_paper_matrices"]


def format_matrix(
    mat: np.ndarray,
    title: str | None = None,
    one_based: bool = True,
    blank_zeros: bool = True,
) -> str:
    """Render a 2-D integer matrix the way the paper's figures do."""
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    off = 1 if one_based else 0
    cells = []
    for row in mat:
        cells.append(
            ["" if blank_zeros and v == 0 else str(int(v)) for v in row]
        )
    headers = [str(j + off) for j in range(mat.shape[1])]
    width = max(
        [len(h) for h in headers] + [len(c) for row in cells for c in row] + [1]
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * (width + 2) + " ".join(h.rjust(width) for h in headers))
    for i, row in enumerate(cells):
        lines.append(
            str(i + off).rjust(width)
            + " | "
            + " ".join(c.rjust(width) for c in row).rstrip()
        )
    return "\n".join(lines)


def format_vector(vec: np.ndarray, title: str | None = None, one_based: bool = True) -> str:
    """Render a 1-D vector with 1-based index header (Fig. 22-b style)."""
    if vec.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vec.shape}")
    off = 1 if one_based else 0
    headers = [str(i + off) for i in range(vec.size)]
    values = [str(int(v)) for v in vec]
    width = max(len(x) for x in headers + values)
    lines = []
    if title:
        lines.append(title)
    lines.append(" ".join(h.rjust(width) for h in headers))
    lines.append(" ".join(v.rjust(width) for v in values))
    return "\n".join(lines)


def format_paper_matrices(matrices: PaperMatrices) -> str:
    """Dump the full Sec. 3 matrix bundle with the paper's figure names."""
    sections = [
        format_matrix(matrices.prob_edge, "prob_edge (Fig. 18)"),
        format_vector(matrices.task_size, "task_size"),
        format_matrix(matrices.clus_edge, "clus_edge (Fig. 19-a)"),
        format_matrix(matrices.clus_pnode + 1, "clus_pnode, 1-based, 0 = pad (Fig. 19-b)"),
        format_matrix(matrices.abs_edge, "abs_edge (Fig. 20-a)", one_based=False),
        format_matrix(
            matrices.c_abs_edge,
            "c_abs_edge with critical degree column (Fig. 20-b)",
            one_based=False,
        ),
        format_vector(matrices.mca, "mca (Fig. 20-c)", one_based=False),
        format_matrix(matrices.sys_edge, "sys_edge (Fig. 21-a)", one_based=False),
        format_matrix(matrices.shortest, "shortest (Fig. 21-b)", one_based=False, blank_zeros=False),
        format_vector(matrices.deg, "deg (Fig. 21-c)", one_based=False),
        format_matrix(
            matrices.route_prev,
            "route_prev (routing predecessors; ours, not in the paper)",
            one_based=False,
            blank_zeros=False,
        ),
        format_matrix(matrices.i_edge, "i_edge (Fig. 22-a)"),
        format_vector(matrices.i_start, "i_start (Fig. 22-b)"),
        format_vector(matrices.i_end, "i_end (Fig. 22-b)"),
        format_matrix(matrices.crit_edge, "crit_edge (Fig. 22-c)"),
    ]
    if matrices.assi is not None:
        sections.append(format_vector(matrices.assi, "assi (Fig. 23-b)", one_based=False))
    if matrices.comm is not None:
        sections.append(format_matrix(matrices.comm, "comm (Fig. 23-c)"))
    if matrices.start is not None and matrices.end is not None:
        sections.append(format_vector(matrices.start, "start (Fig. 23-d)"))
        sections.append(format_vector(matrices.end, "end (Fig. 23-d)"))
    return "\n\n".join(sections)
