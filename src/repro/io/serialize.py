"""JSON (de)serialization of graphs, clusterings, and assignments.

Formats are versioned, human-readable, and round-trip exactly — the test
suite asserts equality after a save/load cycle.  Files are plain JSON so
instances can be archived alongside experiment outputs and re-run later.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.assignment import Assignment
from ..core.clustered import Clustering
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from ..utils import GraphError

__all__ = [
    "task_graph_to_dict",
    "task_graph_from_dict",
    "system_graph_to_dict",
    "system_graph_from_dict",
    "clustering_to_dict",
    "clustering_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
    "save_instance",
    "load_instance",
]

_FORMAT_VERSION = 1


def task_graph_to_dict(graph: TaskGraph) -> dict:
    """Portable dict form of a task graph (edge list, not the dense matrix)."""
    return {
        "version": _FORMAT_VERSION,
        "kind": "task_graph",
        "name": graph.name,
        "task_sizes": graph.task_sizes.tolist(),
        "edges": [[e.src, e.dst, e.weight] for e in graph.edges()],
    }


def task_graph_from_dict(data: dict) -> TaskGraph:
    _check(data, "task_graph")
    return TaskGraph(
        data["task_sizes"],
        [tuple(e) for e in data["edges"]],
        name=data.get("name", "taskgraph"),
    )


def system_graph_to_dict(system: SystemGraph) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "kind": "system_graph",
        "name": system.name,
        "num_nodes": system.num_nodes,
        "edges": [list(e) for e in system.edges()],
    }


def system_graph_from_dict(data: dict) -> SystemGraph:
    _check(data, "system_graph")
    return SystemGraph.from_edges(
        data["num_nodes"],
        [tuple(e) for e in data["edges"]],
        name=data.get("name", "system"),
    )


def clustering_to_dict(clustering: Clustering) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "kind": "clustering",
        "num_clusters": clustering.num_clusters,
        "labels": clustering.labels.tolist(),
    }


def clustering_from_dict(data: dict) -> Clustering:
    _check(data, "clustering")
    return Clustering(data["labels"], num_clusters=data["num_clusters"])


def assignment_to_dict(assignment: Assignment) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "kind": "assignment",
        "assi": assignment.assi.tolist(),
    }


def assignment_from_dict(data: dict) -> Assignment:
    _check(data, "assignment")
    return Assignment(np.asarray(data["assi"], dtype=np.int64))


def save_instance(
    path: str | Path,
    graph: TaskGraph,
    system: SystemGraph,
    clustering: Clustering | None = None,
    assignment: Assignment | None = None,
) -> None:
    """Save a complete mapping instance (graph + machine [+ partition/map])."""
    payload: dict = {
        "version": _FORMAT_VERSION,
        "kind": "instance",
        "task_graph": task_graph_to_dict(graph),
        "system_graph": system_graph_to_dict(system),
    }
    if clustering is not None:
        payload["clustering"] = clustering_to_dict(clustering)
    if assignment is not None:
        payload["assignment"] = assignment_to_dict(assignment)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_instance(
    path: str | Path,
) -> tuple[TaskGraph, SystemGraph, Clustering | None, Assignment | None]:
    """Inverse of :func:`save_instance`."""
    data = json.loads(Path(path).read_text())
    _check(data, "instance")
    graph = task_graph_from_dict(data["task_graph"])
    system = system_graph_from_dict(data["system_graph"])
    clustering = (
        clustering_from_dict(data["clustering"]) if "clustering" in data else None
    )
    assignment = (
        assignment_from_dict(data["assignment"]) if "assignment" in data else None
    )
    return graph, system, clustering, assignment


def _check(data: dict, kind: str) -> None:
    if not isinstance(data, dict) or data.get("kind") != kind:
        raise GraphError(f"expected a serialized {kind!r}, got {data.get('kind')!r}")
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported {kind} format version {version!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )
