"""Export experiment results for downstream analysis (CSV / JSON).

The benchmark harness renders the paper's tables as text; this module
emits the same rows machine-readably so they can be re-plotted or joined
with other runs.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..analysis.stats import ExperimentRow

__all__ = ["rows_to_csv", "rows_to_json", "save_rows"]

_FIELDS = [
    "index",
    "topology",
    "num_tasks",
    "num_processors",
    "lower_bound",
    "our_total_time",
    "random_mean_total_time",
    "ours_pct",
    "random_pct",
    "improvement",
    "reached_lower_bound",
]


def _row_record(row: ExperimentRow) -> dict:
    return {
        "index": row.index,
        "topology": row.topology,
        "num_tasks": row.num_tasks,
        "num_processors": row.num_processors,
        "lower_bound": row.lower_bound,
        "our_total_time": row.our_total_time,
        "random_mean_total_time": row.random_mean_total_time,
        "ours_pct": round(row.ours_pct, 2),
        "random_pct": round(row.random_pct, 2),
        "improvement": round(row.improvement, 2),
        "reached_lower_bound": row.reached_lower_bound,
    }


def rows_to_csv(rows: list[ExperimentRow]) -> str:
    """CSV text (header + one line per experiment)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(_row_record(row))
    return buffer.getvalue()


def rows_to_json(rows: list[ExperimentRow]) -> str:
    """JSON array text, one object per experiment."""
    return json.dumps([_row_record(r) for r in rows], indent=2) + "\n"


def save_rows(path: str | Path, rows: list[ExperimentRow]) -> Path:
    """Write rows in the format implied by the file suffix (.csv / .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(rows_to_csv(rows))
    elif path.suffix == ".json":
        path.write_text(rows_to_json(rows))
    else:
        raise ValueError(f"unsupported export suffix {path.suffix!r} (.csv or .json)")
    return path
