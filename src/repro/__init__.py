"""repro — critical-edge mapping of parallel programs onto MIMD machines.

A production-quality reproduction of Yang, Bic & Nicolau, *A Mapping
Strategy for MIMD Computers* (UC Irvine ICS TR 91-35 / ICPP 1991).

Quickstart::

    from repro import solve
    from repro.workloads import layered_random_dag
    from repro.clustering import RandomClusterer
    from repro.topology import hypercube

    graph = layered_random_dag(num_tasks=120, rng=7)
    clustering = RandomClusterer(num_clusters=16).cluster(graph, rng=7)
    outcome = solve(graph, clustering, hypercube(4), mapper="critical", rng=7)
    print(outcome.total_time, outcome.lower_bound, outcome.is_provably_optimal)

Any registered mapper (``available_mappers()``) can be swapped in via
``mapper=``; :func:`repro.api.compare` scores them head-to-head and
:func:`repro.api.solve_many` batches instances across processes.  See
README.md for the full tour and the ``mimdmap`` CLI.
"""

from .api import (
    MapOutcome,
    Scenario,
    available_clusterers,
    available_mappers,
    available_topologies,
    available_workloads,
    compare,
    run_scenarios,
    solve,
    solve_many,
)
from .core import (
    AbstractGraph,
    Assignment,
    ClusteredGraph,
    Clustering,
    CriticalEdgeMapper,
    CriticalityAnalysis,
    IdealSchedule,
    MappingResult,
    Schedule,
    TaskGraph,
    analyze_criticality,
    evaluate_assignment,
    ideal_schedule,
    lower_bound,
    map_graph,
    total_time,
)
from .topology import SystemGraph

__version__ = "1.0.0"

__all__ = [
    "AbstractGraph",
    "Assignment",
    "ClusteredGraph",
    "Clustering",
    "CriticalEdgeMapper",
    "CriticalityAnalysis",
    "IdealSchedule",
    "MapOutcome",
    "MappingResult",
    "Scenario",
    "Schedule",
    "SystemGraph",
    "TaskGraph",
    "__version__",
    "analyze_criticality",
    "available_clusterers",
    "available_mappers",
    "available_topologies",
    "available_workloads",
    "compare",
    "run_scenarios",
    "evaluate_assignment",
    "ideal_schedule",
    "lower_bound",
    "map_graph",
    "solve",
    "solve_many",
    "total_time",
]
