"""repro — critical-edge mapping of parallel programs onto MIMD machines.

A production-quality reproduction of Yang, Bic & Nicolau, *A Mapping
Strategy for MIMD Computers* (UC Irvine ICS TR 91-35 / ICPP 1991).

Quickstart::

    from repro import map_graph
    from repro.workloads import layered_random_dag
    from repro.clustering import RandomClusterer
    from repro.topology import hypercube

    graph = layered_random_dag(num_tasks=120, rng=7)
    clustering = RandomClusterer(num_clusters=16).cluster(graph, rng=7)
    result = map_graph(graph, clustering, hypercube(4), rng=7)
    print(result.total_time, result.lower_bound, result.is_provably_optimal)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    AbstractGraph,
    Assignment,
    ClusteredGraph,
    Clustering,
    CriticalEdgeMapper,
    CriticalityAnalysis,
    IdealSchedule,
    MappingResult,
    Schedule,
    TaskGraph,
    analyze_criticality,
    evaluate_assignment,
    ideal_schedule,
    lower_bound,
    map_graph,
    total_time,
)
from .topology import SystemGraph

__version__ = "1.0.0"

__all__ = [
    "AbstractGraph",
    "Assignment",
    "ClusteredGraph",
    "Clustering",
    "CriticalEdgeMapper",
    "CriticalityAnalysis",
    "IdealSchedule",
    "MappingResult",
    "Schedule",
    "SystemGraph",
    "TaskGraph",
    "__version__",
    "analyze_criticality",
    "evaluate_assignment",
    "ideal_schedule",
    "lower_bound",
    "map_graph",
    "total_time",
]
