"""Incremental (delta) cost evaluation for move-based mapping search.

The metaheuristic baselines and the refinement loop evaluate thousands of
assignments that each differ from the previous one by a single cluster
move.  A full evaluation costs O(V + E) *plus* an O(V^2) communication
matrix rebuild; after a move only the tasks of the affected clusters and
their downstream region can change, and the aggregate objectives
(communication volume, processor load) change by amounts computable from
the moved clusters' abstract adjacency alone.

:class:`DeltaEvaluator` is the subsystem the search inner loops run on:

* a cached topology-distance matrix (``system.shortest``, captured once);
* per-task schedule state (end times) repaired locally per move — exact,
  bit-for-bit equal to :func:`~repro.core.evaluate.total_time`;
* per-processor load aggregates and per-cluster-pair communication
  aggregates, answering "cost change if cluster ``c`` moves to processor
  ``p``" (:meth:`probe_move`) and the swap variants in O(deg) for the
  additive aggregates and O(affected region) for the makespan;
* ``probe_*`` (evaluate without committing), :meth:`swap` (commit),
  :meth:`apply_swap`/:meth:`revert` (commit with an undo stack), and
  :meth:`evaluate` — a full re-evaluation fast path that skips the
  O(V^2) communication matrix entirely (used by population methods).

:class:`IncrementalEvaluator` keeps the historical swap-only interface as
a thin subclass.  :class:`CardinalityDelta` applies the same treatment to
Bokhari's cardinality objective.  Correctness of all three is locked down
by equivalence tests against the plain evaluators on random move
sequences (``tests/test_delta.py``, ``benchmarks/bench_delta.py --smoke``).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..topology.base import SystemGraph
from ..utils import MappingError
from .abstract import AbstractGraph
from .assignment import Assignment
from .clustered import ClusteredGraph
from .evaluate import total_time
from .taskgraph import sweep_finish_times

__all__ = [
    "CardinalityDelta",
    "CommVolumeDelta",
    "DeltaEvaluator",
    "IncrementalEvaluator",
]


def _pair_swap_delta(
    placement: np.ndarray,
    nbrs_list: list[np.ndarray],
    nbr_w_list: list[np.ndarray],
    metric: np.ndarray,
    cluster_a: int,
    cluster_b: int,
) -> int:
    """O(deg) change of an additive pairwise objective under a swap.

    The objective is ``sum over cluster pairs {x, y} of w[x, y] *
    metric[placement[x], placement[y]]`` with a *symmetric* metric
    (hop distances, link adjacency, ...), so only the moved clusters'
    neighbor terms change and the (a, b) term cancels.
    """
    pa, pb = int(placement[cluster_a]), int(placement[cluster_b])
    delta = 0
    for c, p_new, p_old in ((cluster_a, pb, pa), (cluster_b, pa, pb)):
        nbrs = nbrs_list[c]
        if not nbrs.size:
            continue
        mask = (nbrs != cluster_a) & (nbrs != cluster_b)
        px = placement[nbrs[mask]]
        w = nbr_w_list[c][mask]
        delta += int((w * (metric[p_new, px] - metric[p_old, px])).sum())
    return delta


class DeltaEvaluator:
    """Maintains one assignment's cost state under cluster moves.

    Parameters
    ----------
    clustered, system:
        The instance; ``na`` must equal ``ns`` (same contract as
        :func:`~repro.core.assignment.communication_matrix`).
    assignment:
        The starting assignment; :meth:`evaluate` rebases onto another.
    """

    def __init__(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
        backend: str = "array",
    ) -> None:
        if backend not in ("python", "array"):
            raise MappingError(
                f"backend must be 'python' or 'array', got {backend!r}"
            )
        if clustered.num_clusters != system.num_nodes:
            raise MappingError(
                f"{clustered.num_clusters} clusters cannot map onto "
                f"{system.num_nodes} system nodes (na must equal ns)"
            )
        self._backend = backend
        self._clustered = clustered
        self._system = system
        graph = clustered.graph
        self._graph = graph
        n = graph.num_tasks
        na = clustered.num_clusters
        self._labels = clustered.clustering.labels
        self._sizes = np.asarray(graph.task_sizes, dtype=np.int64)
        # Cached topology-distance matrix: one contiguous copy, reused by
        # every schedule repair and aggregate delta.
        self._dist = np.ascontiguousarray(system.shortest)
        self._topo = graph.topological_order
        self._topo_pos = np.empty(n, dtype=np.int64)
        self._topo_pos[self._topo] = np.arange(n)
        # The per-move schedule repair runs on scalar Python structures in
        # both backends: tasks have 2-3 predecessors on typical DAGs, where
        # plain int arithmetic beats numpy's per-call overhead on tiny
        # arrays by an order of magnitude — and the repair loop is the
        # hottest path in the repo.  The backends differ in how that state
        # (and the aggregates) is *built*: the python oracle walks the
        # dense Fig. 19-a matrix, the array backend slices the CSR arrays
        # and never materializes anything O(n^2).
        self._dist_rows: list[list[int]] = self._dist.tolist()
        self._sizes_l: list[int] = self._sizes.tolist()
        self._members_l: list[list[int]] = [
            clustered.clustering.members(c).tolist() for c in range(na)
        ]
        self._topo_l: list[int] = self._topo.tolist()
        self._topo_pos_l: list[int] = self._topo_pos.tolist()
        if backend == "python":
            self._build_python(clustered, n, na)
        else:
            self._build_array(clustered, n, na)
        w = self._w_pairs
        self._abs_nbrs = [np.flatnonzero(w[c]) for c in range(na)]
        self._abs_nbr_w = [w[c, self._abs_nbrs[c]] for c in range(na)]
        self._iu = np.triu_indices(na, 1)
        self._w_iu = w[self._iu]
        # Per-processor load aggregate source: total task work per cluster.
        self._cluster_work = clustered.clustering.load(graph)
        self._end: list[int] = [0] * n
        self._undo: list[tuple[int, int, list[tuple[int, int]], int, int]] = []
        self._rebase(assignment)

    def _build_python(self, clustered: ClusteredGraph, n: int, na: int) -> None:
        """Oracle construction: dense clus_edge scans, exactly as before
        the array backend existed."""
        graph = self._graph
        clus = clustered.clus_edge
        preds = [graph.predecessors(t) for t in range(n)]
        succs = [graph.successors(t) for t in range(n)]
        self._pred_l = [p.tolist() for p in preds]
        self._pred_wl = [clus[preds[t], t].tolist() for t in range(n)]
        self._succ_l = [s.tolist() for s in succs]
        # Repair seeds per cluster: the cluster's members (their incoming
        # distances change when the cluster moves) plus the members'
        # successors (their incoming distances change too) — restricted to
        # tasks actually receiving inter-cluster communication, because a
        # zero-weight (intra-cluster) edge is distance-insensitive.
        self._touch = []
        for c in range(na):
            seen: set[int] = set()
            for t in self._members_l[c]:
                if t not in seen and any(self._pred_wl[t]):
                    seen.add(t)
                for s, w in zip(self._succ_l[t], clus[t, succs[t]].tolist()):
                    if w and s not in seen:
                        seen.add(s)
            self._touch.append(sorted(seen, key=self._topo_pos_l.__getitem__))
        # Per-cluster-pair communication aggregates (both edge orientations
        # summed, as in AbstractGraph.weights) for O(deg) volume deltas.
        w_pairs = np.zeros((na, na), dtype=np.int64)
        srcs, dsts = np.nonzero(clus)
        np.add.at(w_pairs, (self._labels[srcs], self._labels[dsts]), clus[srcs, dsts])
        self._w_pairs = w_pairs + w_pairs.T
        self._plan_w: np.ndarray | None = None

    def _build_array(self, clustered: ClusteredGraph, n: int, na: int) -> None:
        """Array construction: the same scalar repair structures and pair
        aggregates, built from CSR slices — no dense matrix is touched,
        and the results are bit-identical to :meth:`_build_python`."""
        graph = self._graph
        labels = self._labels
        in_ptr_l = graph.in_indptr.tolist()
        in_src_l = graph.in_indices.tolist()
        cin = clustered.cross_in_weights
        cin_l = cin.tolist()
        self._pred_l = [in_src_l[in_ptr_l[t] : in_ptr_l[t + 1]] for t in range(n)]
        self._pred_wl = [cin_l[in_ptr_l[t] : in_ptr_l[t + 1]] for t in range(n)]
        out_ptr_l = graph.out_indptr.tolist()
        out_dst_l = graph.out_indices.tolist()
        self._succ_l = [out_dst_l[out_ptr_l[t] : out_ptr_l[t + 1]] for t in range(n)]
        # Repair seeds (see _build_python for the rationale): receivers of
        # inter-cluster communication inside the cluster, plus cross-edge
        # successors of members — assembled as (cluster, task) pairs,
        # deduplicated, and ordered by topological position per cluster.
        srcs, dsts, _ = graph.edge_arrays()
        cout = clustered.cross_out_weights
        cross = cout > 0
        _, in_dst, _ = graph.in_edge_arrays()
        recv_mask = np.zeros(n, dtype=bool)
        recv_mask[in_dst[cin > 0]] = True
        recv = np.flatnonzero(recv_mask)
        cand_c = np.concatenate((labels[srcs[cross]], labels[recv]))
        cand_t = np.concatenate((dsts[cross], recv))
        if cand_t.size:
            pair = np.unique(cand_c * np.int64(n) + cand_t)
            uc, ut = pair // n, pair % n
            order = np.lexsort((self._topo_pos[ut], uc))
            uc, ut = uc[order], ut[order]
            bounds = np.concatenate(
                ([0], np.cumsum(np.bincount(uc, minlength=na)))
            ).tolist()
            ut_l = ut.tolist()
            self._touch = [ut_l[bounds[c] : bounds[c + 1]] for c in range(na)]
        else:
            self._touch = [[] for _ in range(na)]
        w_pairs = np.zeros((na, na), dtype=np.int64)
        np.add.at(w_pairs, (labels[srcs[cross]], labels[dsts[cross]]), cout[cross])
        self._w_pairs = w_pairs + w_pairs.T
        self._plan_w = clustered.plan_weights()

    # ------------------------------------------------------------------
    # State properties
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> Assignment:
        return Assignment.from_placement(self._placement)

    @property
    def total_time(self) -> int:
        """Makespan of the current assignment (the paper's objective)."""
        return self._makespan

    @property
    def comm_volume(self) -> int:
        """Total hop-weighted communication of the current assignment
        (equals ``Schedule.communication_volume()``)."""
        return self._comm_volume

    def end_times(self) -> np.ndarray:
        """Current end times (copy)."""
        return np.asarray(self._end, dtype=np.int64)

    def loads(self) -> np.ndarray:
        """Per-processor load aggregate: total task work hosted on each
        system node (copy; equals ``Schedule.processor_busy_time()``)."""
        return self._load.copy()

    def task_hosts(self) -> np.ndarray:
        """Host processor per task under the current assignment (copy)."""
        return np.asarray(self._hosts, dtype=np.int64)

    # ------------------------------------------------------------------
    # Full (re-)evaluation fast path
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Assignment) -> int:
        """Rebase onto ``assignment`` and return its makespan.

        One O(V + E) pass over the precomputed adjacency — no O(V^2)
        communication matrix.  This is the fast path for moves too large
        to repair locally (population methods, random re-placement).
        Clears the undo stack.
        """
        self._rebase(assignment)
        return self._makespan

    def _rebase(self, assignment: Assignment) -> None:
        if assignment.size != self._system.num_nodes:
            raise MappingError(
                f"assignment covers {assignment.size} nodes, "
                f"system has {self._system.num_nodes}"
            )
        self._placement = assignment.placement.copy()
        self._assi = assignment.assi.copy()
        hosts_arr = self._placement[self._labels]
        self._hosts: list[int] = hosts_arr.tolist()
        self._load = np.zeros(self._system.num_nodes, dtype=np.int64)
        self._load[self._placement] = self._cluster_work
        if self._backend == "array":
            # Level sweep over the cached schedule plan: one gather plus a
            # segmented max per level, bit-identical to the scalar pass.
            plan = self._graph.schedule_plan()
            cost = self._plan_w * self._dist[
                hosts_arr[plan.src], hosts_arr[plan.dst]
            ]
            end = sweep_finish_times(plan, self._sizes, cost)
            self._end = end.tolist()
            self._makespan = int(end.max())
        else:
            self._recompute_schedule()
            self._makespan = max(self._end)
        p = self._placement
        self._comm_volume = int(
            (self._w_iu * self._dist[p[self._iu[0]], p[self._iu[1]]]).sum()
        )
        self._undo.clear()

    def _recompute_schedule(self) -> None:
        end = self._end
        hosts = self._hosts
        dist = self._dist_rows
        sizes = self._sizes_l
        for t in self._topo_l:
            s = 0
            row = dist[hosts[t]]
            for u, w in zip(self._pred_l[t], self._pred_wl[t]):
                arrival = end[u] + w * row[hosts[u]] if w else end[u]
                if arrival > s:
                    s = arrival
            end[t] = s + sizes[t]

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def _shift(self, cluster_a: int, cluster_b: int) -> None:
        """Exchange the two clusters' processors in all aggregate state
        (its own inverse, so calling it twice restores everything)."""
        p = self._placement
        pa, pb = int(p[cluster_a]), int(p[cluster_b])
        p[cluster_a], p[cluster_b] = pb, pa
        self._assi[pa], self._assi[pb] = self._assi[pb], self._assi[pa]
        hosts = self._hosts
        for t in self._members_l[cluster_a]:
            hosts[t] = pb
        for t in self._members_l[cluster_b]:
            hosts[t] = pa
        self._load[pa], self._load[pb] = self._load[pb], self._load[pa]

    def _repair(self, cluster_a: int, cluster_b: int, touched: list[tuple[int, int]]) -> int:
        """Recompute end times of the affected region, in topological order
        via a priority worklist; ``touched`` records (task, old_end).

        Returns the resulting makespan without scanning all tasks: the
        untouched region's maximum is unchanged, so a full rescan is only
        needed when a task *at* the old makespan shrank and nothing
        touched reached it again.
        """
        end = self._end
        hosts = self._hosts
        dist = self._dist_rows
        topo_pos = self._topo_pos_l
        sizes = self._sizes_l
        old_makespan = self._makespan
        touched_max = -1
        left_the_max = False
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for seeds in (self._touch[cluster_a], self._touch[cluster_b]):
            for t in seeds:
                if t not in queued:
                    queued.add(t)
                    heap.append((topo_pos[t], t))
        heapq.heapify(heap)
        while heap:
            _, t = heapq.heappop(heap)
            queued.discard(t)
            s = 0
            row = dist[hosts[t]]
            for u, w in zip(self._pred_l[t], self._pred_wl[t]):
                arrival = end[u] + w * row[hosts[u]] if w else end[u]
                if arrival > s:
                    s = arrival
            new_end = s + sizes[t]
            if new_end == end[t]:
                continue
            touched.append((t, end[t]))
            if end[t] == old_makespan:
                left_the_max = True
            if new_end > touched_max:
                touched_max = new_end
            end[t] = new_end
            for succ in self._succ_l[t]:
                if succ not in queued:
                    heapq.heappush(heap, (topo_pos[succ], succ))
                    queued.add(succ)
        if touched_max >= old_makespan:
            return touched_max
        if not left_the_max:
            return old_makespan
        return max(end)

    def delta_comm_volume(self, cluster_a: int, cluster_b: int) -> int:
        """Communication-volume change if the two clusters swapped
        processors, in O(deg(a) + deg(b)) from the cluster aggregates."""
        if cluster_a == cluster_b:
            return 0
        return _pair_swap_delta(
            self._placement,
            self._abs_nbrs,
            self._abs_nbr_w,
            self._dist,
            cluster_a,
            cluster_b,
        )

    def probe_swap(self, cluster_a: int, cluster_b: int) -> int:
        """Makespan after a hypothetical swap; state is left unchanged."""
        if cluster_a == cluster_b:
            return self._makespan
        touched: list[tuple[int, int]] = []
        self._shift(cluster_a, cluster_b)
        result = self._repair(cluster_a, cluster_b, touched)
        self._shift(cluster_a, cluster_b)
        for t, old in reversed(touched):
            self._end[t] = old
        return result

    def delta_total_time(self, cluster_a: int, cluster_b: int) -> int:
        """Makespan change of the hypothetical swap (probe convenience)."""
        return self.probe_swap(cluster_a, cluster_b) - self._makespan

    def swap(self, cluster_a: int, cluster_b: int) -> int:
        """Commit a swap (no undo record); returns the new makespan.

        This is the search-loop workhorse: thousands of committed moves
        cost no memory.  Use :meth:`apply_swap` when you need
        :meth:`revert`; committing through here invalidates any pending
        apply_swap history (a later ``revert`` would restore a state that
        no longer exists), so the undo stack is cleared.
        """
        self._undo.clear()
        self._commit(cluster_a, cluster_b)
        return self._makespan

    def apply_swap(self, cluster_a: int, cluster_b: int) -> int:
        """Commit a swap and push an undo frame for :meth:`revert`."""
        self._undo.append(self._commit(cluster_a, cluster_b))
        return self._makespan

    def _commit(
        self, cluster_a: int, cluster_b: int
    ) -> tuple[int, int, list[tuple[int, int]], int, int]:
        old_mk, old_cv = self._makespan, self._comm_volume
        touched: list[tuple[int, int]] = []
        if cluster_a != cluster_b:
            self._comm_volume += self.delta_comm_volume(cluster_a, cluster_b)
            self._shift(cluster_a, cluster_b)
            self._makespan = self._repair(cluster_a, cluster_b, touched)
        return (cluster_a, cluster_b, touched, old_mk, old_cv)

    def revert(self) -> int:
        """Undo the most recent :meth:`apply_swap`; returns the makespan."""
        if not self._undo:
            raise MappingError("revert() without a matching apply_swap()")
        cluster_a, cluster_b, touched, old_mk, old_cv = self._undo.pop()
        if cluster_a != cluster_b:
            self._shift(cluster_a, cluster_b)
            for t, old in reversed(touched):
                self._end[t] = old
        self._makespan, self._comm_volume = old_mk, old_cv
        return self._makespan

    # Move variants: "cluster c onto processor p" under the bijection means
    # exchanging with the processor's current occupant.
    def occupant(self, processor: int) -> int:
        """Cluster currently hosted on ``processor``."""
        return int(self._assi[processor])

    def probe_move(self, cluster: int, processor: int) -> int:
        """Makespan if ``cluster`` moved to ``processor`` (its occupant
        takes the vacated processor); state is left unchanged."""
        return self.probe_swap(cluster, self.occupant(processor))

    def move(self, cluster: int, processor: int) -> int:
        """Commit the move variant; returns the new makespan."""
        return self.swap(cluster, self.occupant(processor))

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Cross-check every aggregate against the plain oracle
        (:mod:`repro.core.evaluate`); used by tests and the bench smoke."""
        from .evaluate import evaluate_assignment

        schedule = evaluate_assignment(self._clustered, self._system, self.assignment)
        return (
            self._makespan == schedule.total_time
            and np.array_equal(self._end, schedule.end)
            and self._comm_volume == schedule.communication_volume()
            and np.array_equal(self._load, schedule.processor_busy_time())
        )


class IncrementalEvaluator(DeltaEvaluator):
    """Backward-compatible swap-only facade over :class:`DeltaEvaluator`.

    Kept because the original incremental evaluator predates the delta
    subsystem; ``swap`` commits without growing an undo stack and the
    historical ``verify`` contract (makespan only) is widened to the full
    aggregate cross-check inherited from the base class.
    """

    def verify(self) -> bool:
        return self.total_time == total_time(
            self._clustered, self._system, self.assignment
        ) and super().verify()


class CommVolumeDelta:
    """Incremental hop-weighted communication volume under cluster swaps.

    Maintains ``sum over cluster pairs {x, y} of w[x, y] *
    dist(host(x), host(y))`` for a symmetric pairwise weight matrix and
    answers swap deltas in O(deg(a) + deg(b)) — the same aggregate
    :class:`DeltaEvaluator` tracks as ``comm_volume``, without any of
    its schedule state.  This is the evaluator for search loops that
    optimize communication volume alone (the multilevel refinement),
    where paying for exact makespan repair on every commit would be
    pure overhead.

    ``metric`` generalizes the pairwise matrix: by default it is the
    topology's hop-distance matrix (the paper's objective), but any
    symmetric ``ns x ns`` matrix works — the hook that lets registered
    analytic metrics with a ``pair_matrix`` drive the same O(deg)
    refinement loop.
    """

    def __init__(
        self,
        weights: np.ndarray,
        system: SystemGraph,
        assignment: Assignment,
        metric: np.ndarray | None = None,
        backend: str = "array",
    ) -> None:
        if backend not in ("python", "array"):
            raise MappingError(
                f"backend must be 'python' or 'array', got {backend!r}"
            )
        weights = np.asarray(weights, dtype=np.int64)
        na = weights.shape[0]
        if weights.ndim != 2 or weights.shape[1] != na:
            raise MappingError(
                f"pairwise weights must be square, got shape {weights.shape}"
            )
        if na != system.num_nodes:
            raise MappingError(
                f"{na} clusters cannot map onto {system.num_nodes} system nodes"
            )
        if assignment.size != na:
            raise MappingError(
                f"assignment covers {assignment.size} nodes, system has {na}"
            )
        if metric is None:
            self._dist = np.ascontiguousarray(system.shortest)
        else:
            mat = np.asarray(metric)
            if mat.ndim != 2 or mat.shape != (na, na):
                raise MappingError(
                    f"pair metric must be {na}x{na}, got shape {mat.shape}"
                )
            if not np.array_equal(mat, mat.T):
                raise MappingError("pair metric matrix must be symmetric")
            self._dist = np.ascontiguousarray(mat)
        if backend == "python":
            # Oracle path: one flatnonzero scan per cluster row.
            self._nbrs = [np.flatnonzero(weights[c]) for c in range(na)]
            self._nbr_w = [weights[c, self._nbrs[c]] for c in range(na)]
        else:
            # Array path: a single nonzero pass split into per-row views —
            # identical contents (nonzero is row-major, ascending per row).
            srcs, dsts = np.nonzero(weights)
            bounds = np.cumsum(np.bincount(srcs, minlength=na))[:-1]
            self._nbrs = np.split(dsts, bounds)
            self._nbr_w = np.split(weights[srcs, dsts], bounds)
        self._backend = backend
        self._weights = weights
        self._gain: np.ndarray | None = None  # lazy gain table, see delta_swaps
        self._gain_w: np.ndarray | None = None  # zero-diagonal weights for updates
        self._placement = assignment.placement.copy()
        self._assi = assignment.assi.copy()
        iu = np.triu_indices(na, 1)
        p = self._placement
        self._volume = int((weights[iu] * self._dist[p[iu[0]], p[iu[1]]]).sum())

    @property
    def volume(self) -> int:
        return self._volume

    @property
    def assignment(self) -> Assignment:
        return Assignment.from_placement(self._placement)

    def occupant(self, processor: int) -> int:
        """Cluster currently hosted on ``processor``."""
        return int(self._assi[processor])

    def host(self, cluster: int) -> int:
        """Processor currently hosting ``cluster``."""
        return int(self._placement[cluster])

    @property
    def placement_view(self) -> np.ndarray:
        """Live cluster -> processor array (mutated in place by swaps)."""
        return self._placement

    @property
    def occupant_view(self) -> np.ndarray:
        """Live processor -> cluster array (mutated in place by swaps)."""
        return self._assi

    @property
    def supports_bulk(self) -> bool:
        """Whether :meth:`delta_swaps` is available (array backend and an
        integer metric, where the gain-table regrouping is exact)."""
        return self._backend == "array" and bool(
            np.issubdtype(self._dist.dtype, np.integer)
        )

    def delta_swap(self, cluster_a: int, cluster_b: int) -> int:
        """Volume change if the two clusters swapped processors."""
        if cluster_a == cluster_b:
            return 0
        return _pair_swap_delta(
            self._placement, self._nbrs, self._nbr_w, self._dist, cluster_a, cluster_b
        )

    def delta_swaps(self, cluster: int, procs: np.ndarray) -> np.ndarray:
        """Vector of :meth:`delta_swap` values for swapping ``cluster``
        with the occupant of each processor in ``procs``.

        Bit-identical to the scalar probe (integer arithmetic, so the
        gain-table regrouping below is exact) at O(1) per candidate after
        a one-off O(na * ns) gain-table build; only valid when
        :attr:`supports_bulk` is true and no entry of ``procs`` hosts
        ``cluster`` itself.

        The gain table is ``G[x, r] = sum_y w[x, y] * metric[p[y], r]``
        (diagonal of ``w`` zeroed): the total metric cost of ``x``'s
        edges if ``x`` sat on processor ``r``.  For a swap of ``c`` (on
        ``pc``) with occupant ``o`` of ``q`` the standard QAP identity
        gives ``delta = G[c, q] - G[c, pc] + G[o, pc] - G[o, q] +
        w[c, o] * (metric[pc, q] + metric[q, pc] - metric[q, q] -
        metric[pc, pc])`` — the correction term undoes G's inclusion of
        the (c, o) edge, whose cost is unchanged by the swap.
        """
        if self._gain is None:
            self._build_gain_table()
        gain = self._gain
        gw = self._gain_w
        assert gain is not None and gw is not None
        metric = self._dist
        pc = int(self._placement[cluster])
        occ = self._assi[procs]
        w_co = gw[cluster, occ]
        delta = gain[cluster, procs] - gain[cluster, pc]
        delta += gain[occ, pc] - gain[occ, procs]
        delta += w_co * (
            metric[pc, procs] + metric[procs, pc]
            - metric[procs, procs] - metric[pc, pc]
        )
        return delta

    def _build_gain_table(self) -> None:
        weights = self._weights.copy()
        np.fill_diagonal(weights, 0)
        rows = self._dist[self._placement]  # row y = metric[p[y]]
        # Partial sums stay below 2^53 -> the float64 BLAS product is
        # exact; otherwise fall back to the (slower) integer matmul.
        bound = float(np.abs(weights).sum(axis=1).max(initial=0)) * float(
            np.abs(rows).max(initial=0)
        )
        if bound < 2.0**53:
            gain = np.rint(
                weights.astype(np.float64) @ rows.astype(np.float64)
            ).astype(np.int64)
        else:  # pragma: no cover - astronomically weighted instances
            gain = weights @ rows.astype(np.int64)
        self._gain = gain
        self._gain_w = weights

    def swap(self, cluster_a: int, cluster_b: int) -> int:
        """Commit a swap; returns the new volume."""
        if cluster_a == cluster_b:
            return self._volume
        self._volume += self.delta_swap(cluster_a, cluster_b)
        p = self._placement
        pa, pb = int(p[cluster_a]), int(p[cluster_b])
        if self._gain is not None:
            # Rank-1 refresh: rows a and b of metric[p] changed.
            gw = self._gain_w
            assert gw is not None
            self._gain += np.outer(
                gw[:, cluster_a] - gw[:, cluster_b],
                self._dist[pb] - self._dist[pa],
            )
        p[cluster_a], p[cluster_b] = pb, pa
        self._assi[pa], self._assi[pb] = self._assi[pb], self._assi[pa]
        return self._volume


class CardinalityDelta:
    """Incremental evaluation of Bokhari's cardinality objective.

    Maintains the number (or total weight, with ``weighted=True``) of
    abstract edges mapped onto system links and answers swap deltas in
    O(deg(a) + deg(b)) — the counterpart of :class:`DeltaEvaluator` for
    the cardinality-driven baseline.
    """

    def __init__(
        self,
        abstract: AbstractGraph,
        system: SystemGraph,
        assignment: Assignment,
        weighted: bool = False,
    ) -> None:
        na = abstract.num_nodes
        if na != system.num_nodes:
            raise MappingError(
                f"{na} abstract nodes cannot map onto {system.num_nodes} system nodes"
            )
        if assignment.size != na:
            raise MappingError(
                f"assignment covers {assignment.size} nodes, system has {na}"
            )
        m = np.asarray(abstract.weights if weighted else abstract.abs_edge)
        self._adj = np.ascontiguousarray(system.sys_edge)
        self._nbrs = [np.flatnonzero(m[c]) for c in range(na)]
        self._nbr_w = [m[c, self._nbrs[c]] for c in range(na)]
        self._placement = assignment.placement.copy()
        iu = np.triu_indices(na, 1)
        p = self._placement
        self._card = int((m[iu] * (self._adj[p[iu[0]], p[iu[1]]] > 0)).sum())

    @property
    def cardinality(self) -> int:
        return self._card

    @property
    def assignment(self) -> Assignment:
        return Assignment.from_placement(self._placement)

    def delta_swap(self, cluster_a: int, cluster_b: int) -> int:
        """Cardinality change if the two clusters swapped processors."""
        if cluster_a == cluster_b:
            return 0
        return _pair_swap_delta(
            self._placement, self._nbrs, self._nbr_w, self._adj, cluster_a, cluster_b
        )

    def swap(self, cluster_a: int, cluster_b: int) -> int:
        """Commit a swap; returns the new cardinality."""
        if cluster_a == cluster_b:
            return self._card
        self._card += self.delta_swap(cluster_a, cluster_b)
        p = self._placement
        p[cluster_a], p[cluster_b] = int(p[cluster_b]), int(p[cluster_a])
        return self._card
