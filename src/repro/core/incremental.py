"""Incremental total-time evaluation for swap-based search.

The metaheuristic baselines evaluate thousands of assignments that each
differ from the previous one by a single cluster swap.  A full
evaluation costs O(np^2); after a swap of clusters ``a`` and ``b``, only
tasks *downstream of the two clusters* can change their start times, so
the schedule can be repaired instead of recomputed (the optimization
guide's "compute less" move — measured below at 2-10x on the baseline
search loops, more on large graphs with small clusters).

:class:`IncrementalEvaluator` owns the current assignment's schedule and
supports ``swap(a, b)`` (commit) and ``probe_swap(a, b)`` (evaluate
without committing).  Correctness is locked down by equivalence tests
against the plain evaluator on random swap sequences.
"""

from __future__ import annotations

import numpy as np

from ..topology.base import SystemGraph
from .assignment import Assignment
from .clustered import ClusteredGraph
from .evaluate import total_time

__all__ = ["IncrementalEvaluator"]


class IncrementalEvaluator:
    """Maintains start/end times of one assignment under cluster swaps."""

    def __init__(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        assignment: Assignment,
    ) -> None:
        self._clustered = clustered
        self._system = system
        self._graph = clustered.graph
        self._labels = clustered.clustering.labels
        self._topo = self._graph.topological_order
        self._topo_pos = np.empty(self._graph.num_tasks, dtype=np.int64)
        self._topo_pos[self._topo] = np.arange(self._graph.num_tasks)
        self._placement = assignment.placement.copy()
        self._end = np.zeros(self._graph.num_tasks, dtype=np.int64)
        self._recompute_all()

    # ------------------------------------------------------------------
    @property
    def assignment(self) -> Assignment:
        return Assignment.from_placement(self._placement)

    @property
    def total_time(self) -> int:
        return int(self._end.max())

    def end_times(self) -> np.ndarray:
        """Current end times (copy)."""
        return self._end.copy()

    # ------------------------------------------------------------------
    def _recompute_all(self) -> None:
        graph = self._graph
        clus = self._clustered.clus_edge
        hosts = self._placement[self._labels]
        shortest = self._system.shortest
        sizes = graph.task_sizes
        for t in self._topo.tolist():
            preds = graph.predecessors(t)
            s = 0
            if preds.size:
                dist = shortest[hosts[preds], hosts[t]]
                s = int((self._end[preds] + clus[preds, t] * dist).max())
            self._end[t] = s + sizes[t]

    def _repair(self, seeds: np.ndarray) -> None:
        """Recompute end times of ``seeds`` and everything they reach.

        Tasks are processed in topological order via a priority worklist;
        a successor is enqueued only when its predecessor's end time
        actually changed, so untouched regions cost nothing.
        """
        import heapq

        graph = self._graph
        clus = self._clustered.clus_edge
        hosts = self._placement[self._labels]
        shortest = self._system.shortest
        sizes = graph.task_sizes

        heap = [(int(self._topo_pos[t]), int(t)) for t in np.unique(seeds)]
        heapq.heapify(heap)
        queued = set(t for _, t in heap)
        while heap:
            _, t = heapq.heappop(heap)
            queued.discard(t)
            preds = graph.predecessors(t)
            s = 0
            if preds.size:
                dist = shortest[hosts[preds], hosts[t]]
                s = int((self._end[preds] + clus[preds, t] * dist).max())
            new_end = s + int(sizes[t])
            if new_end == self._end[t]:
                continue
            self._end[t] = new_end
            for succ in graph.successors(t).tolist():
                if succ not in queued:
                    heapq.heappush(heap, (int(self._topo_pos[succ]), succ))
                    queued.add(succ)

    # ------------------------------------------------------------------
    def swap(self, cluster_a: int, cluster_b: int) -> int:
        """Exchange the processors of two clusters; returns the new makespan."""
        if cluster_a == cluster_b:
            return self.total_time
        self._placement[cluster_a], self._placement[cluster_b] = (
            self._placement[cluster_b],
            self._placement[cluster_a],
        )
        # Affected seeds: members of the two clusters (their incoming comm
        # changed) plus successors of members (outgoing comm changed).
        members = np.concatenate(
            [
                self._clustered.clustering.members(cluster_a),
                self._clustered.clustering.members(cluster_b),
            ]
        )
        succs = [self._graph.successors(t) for t in members.tolist()]
        seeds = np.concatenate([members] + succs) if succs else members
        self._repair(seeds)
        return self.total_time

    def probe_swap(self, cluster_a: int, cluster_b: int) -> int:
        """Makespan after a hypothetical swap; state is left unchanged."""
        saved_end = self._end.copy()
        result = self.swap(cluster_a, cluster_b)
        # Undo: swap back and restore the schedule without re-repairing.
        self._placement[cluster_a], self._placement[cluster_b] = (
            self._placement[cluster_b],
            self._placement[cluster_a],
        )
        self._end = saved_end
        return result

    def verify(self) -> bool:
        """Cross-check against the plain evaluator (used in tests)."""
        return self.total_time == total_time(
            self._clustered, self._system, self.assignment
        )
