"""Analytic list scheduling with serialized processors.

The paper's model lets independent tasks on one processor overlap; a
real 1991 MIMD node runs one task at a time.  This module computes
serialized schedules *analytically* (no event queue) with a pluggable
priority policy:

* ``"fifo"`` — ready tasks start in ready-time order (ties by id); the
  same policy as the discrete-event simulator's
  ``serialize_processors`` mode.  The two agree exactly except when
  several tasks become ready at the *same instant* on the same
  processor: the DES breaks that tie by event-arrival order (a product
  of message routing), this scheduler by task id.  The test suite
  asserts exact agreement on collision-free instances and agreement on
  the vast majority of random ones.
* ``"blevel"`` — classic HLFET: among ready tasks, the one with the
  largest bottom level (longest weighted path to an exit) goes first —
  usually beats FIFO on critical-path-bound workloads.

Communication remains the paper's: ``clus_edge * hop distance``,
contention-free.  The result is a plain start/end pair that
:func:`repro.core.validate.verify_times` accepts with
``require_asap=False``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from .assignment import Assignment, communication_matrix
from .clustered import ClusteredGraph

__all__ = ["ListSchedule", "list_schedule", "bottom_levels"]


@dataclass(frozen=True)
class ListSchedule:
    """A serialized schedule (one task at a time per processor)."""

    start: np.ndarray
    end: np.ndarray
    makespan: int
    policy: str


def bottom_levels(clustered: ClusteredGraph) -> np.ndarray:
    """Longest path (sizes + clustered comm) from each task to an exit."""
    graph = clustered.graph
    clus = clustered.clus_edge
    sizes = graph.task_sizes
    blevel = np.zeros(graph.num_tasks, dtype=np.int64)
    for t in graph.topological_order[::-1].tolist():
        succs = graph.successors(t)
        tail = 0
        if succs.size:
            tail = int((clus[t, succs] + blevel[succs]).max())
        blevel[t] = int(sizes[t]) + tail
    return blevel


def list_schedule(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment,
    policy: str = "fifo",
) -> ListSchedule:
    """Serialized list schedule under the given priority policy."""
    if policy not in ("fifo", "blevel"):
        raise ValueError(f"policy must be 'fifo' or 'blevel', got {policy!r}")
    graph = clustered.graph
    n = graph.num_tasks
    comm = communication_matrix(clustered, system, assignment)
    sizes = graph.task_sizes
    labels = clustered.clustering.labels
    host = assignment.placement[labels]
    priority = (
        -bottom_levels(clustered)
        if policy == "blevel"
        else np.zeros(n, dtype=np.int64)
    )

    start = np.full(n, -1, dtype=np.int64)
    end = np.full(n, -1, dtype=np.int64)
    pending = np.asarray([graph.predecessors(t).size for t in range(n)])
    busy = np.zeros(system.num_nodes, dtype=bool)
    queues: list[list[tuple[int, int, int]]] = [
        [] for _ in range(system.num_nodes)
    ]

    # Event heap: (time, kind, seq, payload); kind 0 = task finished
    # (payload = task; its processor becomes free), kind 1 = task ready
    # (payload = task).  Finish events at time T precede ready events at
    # T, matching the DES dispatch order.
    events: list[tuple[int, int, int, int]] = []
    seq = 0

    def push_ready(task: int, time: int) -> None:
        nonlocal seq
        heapq.heappush(events, (time, 1, seq, task))
        seq += 1

    def begin_task(task: int, time: int) -> None:
        nonlocal seq
        p = int(host[task])
        busy[p] = True
        start[task] = time
        end[task] = time + int(sizes[task])
        heapq.heappush(events, (int(end[task]), 0, seq, task))
        seq += 1

    for t in range(n):
        if pending[t] == 0:
            push_ready(t, 0)

    while events:
        time, kind, _, payload = heapq.heappop(events)
        if kind == 1:  # task(s) became ready
            # Batch every ready event at this instant so the priority
            # policy chooses among *all* simultaneously ready tasks
            # (without batching, the first event would grab an idle
            # processor regardless of priority).
            ready_now = [payload]
            while events and events[0][0] == time and events[0][1] == 1:
                ready_now.append(heapq.heappop(events)[3])
            touched = set()
            for task in ready_now:
                p = int(host[task])
                key = (
                    (time, task, task)
                    if policy == "fifo"
                    else (int(priority[task]), time, task)
                )
                heapq.heappush(queues[p], key)
                touched.add(p)
            for p in touched:
                if not busy[p] and queues[p]:
                    _, _, nxt = heapq.heappop(queues[p])
                    begin_task(nxt, time)
        else:  # task finished: release successors, then dispatch the queue
            task = payload
            p = int(host[task])
            busy[p] = False
            for succ in graph.successors(task).tolist():
                pending[succ] -= 1
                if pending[succ] == 0:
                    preds = graph.predecessors(succ)
                    arrive = int((end[preds] + comm[preds, succ]).max())
                    push_ready(int(succ), max(arrive, time))
            if queues[p]:
                _, _, nxt = heapq.heappop(queues[p])
                begin_task(nxt, time)

    return ListSchedule(
        start=start, end=end, makespan=int(end.max()), policy=policy
    )
