"""The problem graph: a weighted DAG of tasks.

This is the paper's *problem graph* ``Gp = {Vp, Ep}`` (Sec. 2.1, Fig. 2).
Each node (task) carries an integer execution time (``task_size`` in the
paper's internal representation, Sec. 3) and each directed edge carries an
integer communication time (``prob_edge[i][j]``).

The canonical storage is **CSR** (compressed sparse row) in both edge
orientations: ``out_indptr/out_indices/out_weights`` sorted by
``(src, dst)`` and ``in_indptr/in_indices/in_weights`` sorted by
``(dst, src)``, built once at construction and immutable afterwards.  The
paper phrases every Sec. 4 algorithm over the dense ``prob_edge`` matrix;
that matrix is still available through :attr:`TaskGraph.prob_edge` but is
materialized lazily and only for small graphs (a 100k-task dense matrix
would need 80 GB), so the scale path never touches it.  Adjacency,
topological order, and the level-structured :class:`SchedulePlan` used by
the vectorized schedule sweeps are derived and cached.  Tasks are numbered
``0..np-1`` (the paper numbers from 1; all internal indices here are
0-based and the I/O layer preserves that convention).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..utils import GraphError, as_weight_matrix

__all__ = ["TaskGraph", "Edge", "SchedulePlan", "sweep_finish_times"]

#: Largest task count for which the dense ``prob_edge`` matrix may be
#: materialized (20k tasks -> 3.2 GB of int64).  Above this, consumers must
#: use the CSR accessors; the scale benchmarks never build the dense form.
_DENSE_LIMIT = 20_000


@dataclass(frozen=True)
class Edge:
    """A directed, weighted problem edge ``src -> dst``."""

    src: int
    dst: int
    weight: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.weight)


@dataclass(frozen=True)
class SchedulePlan:
    """Level-structured in-edge layout for vectorized schedule sweeps.

    Tasks are grouped by DAG depth (``order``/``level_ptr``); all in-edges
    of the tasks in one level are laid out contiguously (``src``/``dst``,
    segment boundaries in ``eptr``), so one level of the forward schedule
    recurrence becomes a single gather plus a segmented max
    (:func:`sweep_finish_times`).  ``eperm`` maps each plan edge slot back
    to its position in the graph's in-CSR arrays: any per-edge quantity
    stored in in-CSR order (e.g. clustered cross weights) is aligned to the
    plan by ``quantity[eperm]``.
    """

    order: np.ndarray      # tasks grouped by depth, ascending within a level
    level_ptr: np.ndarray  # level boundaries into ``order`` (len L+1)
    eptr: np.ndarray       # in-edge segment boundaries per plan slot (len n+1)
    src: np.ndarray        # plan-ordered in-edge sources
    dst: np.ndarray        # plan-ordered in-edge destinations
    eperm: np.ndarray      # plan slot -> index into the in-CSR edge arrays

    @property
    def num_levels(self) -> int:
        return self.level_ptr.size - 1


def sweep_finish_times(
    plan: SchedulePlan, sizes: np.ndarray, edge_cost: np.ndarray
) -> np.ndarray:
    """Finish time per task under ``start[t] = max(end[src] + cost(edge))``.

    ``edge_cost`` must be aligned with ``plan.src``/``plan.dst`` (apply
    ``plan.eperm`` to in-CSR-ordered per-edge data first).  Bit-identical
    to the scalar topological recurrence: all arithmetic stays in int64
    and max over an empty predecessor set is 0.
    """
    end = np.zeros(sizes.size, dtype=np.int64)
    order, level_ptr, eptr = plan.order, plan.level_ptr, plan.eptr
    for level in range(level_ptr.size - 1):
        t0, t1 = int(level_ptr[level]), int(level_ptr[level + 1])
        tasks = order[t0:t1]
        e0, e1 = int(eptr[t0]), int(eptr[t1])
        start = np.zeros(t1 - t0, dtype=np.int64)
        if e1 > e0:
            arrive = end[plan.src[e0:e1]] + edge_cost[e0:e1]
            offs = eptr[t0:t1] - e0
            deg = np.diff(eptr[t0 : t1 + 1])
            nz = deg > 0
            if nz.all():
                start = np.maximum.reduceat(arrive, offs)
            elif nz.any():
                # reduceat over only the non-empty segments; a dropped
                # empty segment contributes no edges, so the remaining
                # boundaries still delimit the right slices.
                start[nz] = np.maximum.reduceat(arrive, offs[nz])
        end[tasks] = start + sizes[tasks]
    return end


class TaskGraph:
    """A weighted task DAG (the paper's problem graph).

    Parameters
    ----------
    task_sizes:
        Execution time of each task, one entry per task.  All must be
        positive (a task takes at least one time unit).
    edges:
        Either a dense square matrix ``prob_edge`` (entry ``[i, j] > 0``
        means an edge ``i -> j`` with that communication weight) or an
        iterable of ``(src, dst, weight)`` triples.
    name:
        Optional label used in reports and serialized files.

    Raises
    ------
    GraphError
        If sizes are non-positive, an edge is self-looping, dangling or
        duplicated, or the graph contains a cycle.
    """

    def __init__(
        self,
        task_sizes: Sequence[int] | np.ndarray,
        edges: object = (),
        name: str = "taskgraph",
    ) -> None:
        sizes = np.asarray(task_sizes, dtype=np.int64).copy()
        if sizes.ndim != 1:
            raise GraphError(f"task_sizes must be 1-D, got shape {sizes.shape}")
        if sizes.size == 0:
            raise GraphError("a task graph needs at least one task")
        if (sizes <= 0).any():
            bad = int(np.argmax(sizes <= 0))
            raise GraphError(f"task {bad} has non-positive size {int(sizes[bad])}")
        n = sizes.size

        dense: np.ndarray | None = None
        if isinstance(edges, (np.ndarray, dict)) or (
            isinstance(edges, Sequence) and edges and not _looks_like_triples(edges)
        ):
            mat = as_weight_matrix(edges, n)
            if np.diagonal(mat).any():
                raise GraphError("self-loop edges are not allowed")
            dense = mat
            srcs, dsts = np.nonzero(mat)
            weights = mat[srcs, dsts]
            presorted = True  # nonzero() is row-major: sorted by (src, dst)
        else:
            triples = list(edges)  # type: ignore[arg-type]
            if triples and isinstance(triples[0], Edge):
                triples = [e.as_tuple() for e in triples]
            arr = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
            srcs = np.ascontiguousarray(arr[:, 0])
            dsts = np.ascontiguousarray(arr[:, 1])
            weights = np.ascontiguousarray(arr[:, 2])
            oob = (srcs < 0) | (srcs >= n) | (dsts < 0) | (dsts >= n)
            if oob.any():
                i = int(np.argmax(oob))
                raise GraphError(
                    f"edge ({int(srcs[i])}, {int(dsts[i])}) references a missing task"
                )
            loops = srcs == dsts
            if loops.any():
                i = int(np.argmax(loops))
                raise GraphError(
                    f"self-loop edges are not allowed (task {int(srcs[i])})"
                )
            nonpos = weights <= 0
            if nonpos.any():
                i = int(np.argmax(nonpos))
                raise GraphError(
                    f"edge ({int(srcs[i])}, {int(dsts[i])}) must have positive "
                    f"weight, got {int(weights[i])}; a zero-weight edge cannot "
                    "be represented — omit it (a zero matrix entry means "
                    "'no edge')"
                )
            presorted = False
        self._init_from_csr(sizes, srcs, dsts, weights, name, dense, presorted)

    @classmethod
    def from_edge_arrays(
        cls,
        task_sizes: Sequence[int] | np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
        weights: np.ndarray,
        name: str = "taskgraph",
    ) -> "TaskGraph":
        """Build directly from parallel edge arrays (the scale fast path).

        Performs the same validation as the triple constructor but stays
        vectorized end to end; edges need not be pre-sorted.
        """
        triples = np.stack(
            [
                np.asarray(srcs, dtype=np.int64),
                np.asarray(dsts, dtype=np.int64),
                np.asarray(weights, dtype=np.int64),
            ],
            axis=1,
        )
        return cls._from_arrays(task_sizes, triples, name)

    @classmethod
    def _from_arrays(
        cls, task_sizes: object, triples: np.ndarray, name: str
    ) -> "TaskGraph":
        self = cls.__new__(cls)
        sizes = np.asarray(task_sizes, dtype=np.int64).copy()
        if sizes.ndim != 1 or sizes.size == 0:
            raise GraphError("task_sizes must be a non-empty 1-D sequence")
        if (sizes <= 0).any():
            bad = int(np.argmax(sizes <= 0))
            raise GraphError(f"task {bad} has non-positive size {int(sizes[bad])}")
        n = sizes.size
        srcs, dsts, weights = triples[:, 0], triples[:, 1], triples[:, 2]
        oob = (srcs < 0) | (srcs >= n) | (dsts < 0) | (dsts >= n)
        if oob.any():
            i = int(np.argmax(oob))
            raise GraphError(
                f"edge ({int(srcs[i])}, {int(dsts[i])}) references a missing task"
            )
        if (srcs == dsts).any():
            i = int(np.argmax(srcs == dsts))
            raise GraphError(f"self-loop edges are not allowed (task {int(srcs[i])})")
        if (weights <= 0).any():
            i = int(np.argmax(weights <= 0))
            raise GraphError(
                f"edge ({int(srcs[i])}, {int(dsts[i])}) must have positive "
                f"weight, got {int(weights[i])}"
            )
        self._init_from_csr(sizes, srcs, dsts, weights, name, None, False)
        return self

    def _init_from_csr(
        self,
        sizes: np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
        weights: np.ndarray,
        name: str,
        dense: np.ndarray | None,
        presorted: bool,
    ) -> None:
        n = sizes.size
        self._sizes = sizes
        self.name = name
        if not presorted and srcs.size:
            order = np.lexsort((dsts, srcs))
            srcs, dsts, weights = srcs[order], dsts[order], weights[order]
            dup = (srcs[1:] == srcs[:-1]) & (dsts[1:] == dsts[:-1])
            if dup.any():
                i = int(np.argmax(dup))
                raise GraphError(
                    f"duplicate edge ({int(srcs[i])}, {int(dsts[i])}): each "
                    "task pair may appear at most once"
                )
        out_counts = np.bincount(srcs, minlength=n)
        self._out_ptr = np.concatenate(
            ([0], np.cumsum(out_counts))
        ).astype(np.int64)
        self._out_src = np.ascontiguousarray(srcs, dtype=np.int64)
        self._out_dst = np.ascontiguousarray(dsts, dtype=np.int64)
        self._out_w = np.ascontiguousarray(weights, dtype=np.int64)
        in_order = np.lexsort((srcs, dsts)) if srcs.size else np.empty(0, np.int64)
        in_counts = np.bincount(dsts, minlength=n)
        self._in_ptr = np.concatenate(([0], np.cumsum(in_counts))).astype(np.int64)
        self._in_src = np.ascontiguousarray(srcs[in_order], dtype=np.int64)
        self._in_dst = np.ascontiguousarray(dsts[in_order], dtype=np.int64)
        self._in_w = np.ascontiguousarray(weights[in_order], dtype=np.int64)
        for a in (
            self._out_ptr, self._out_src, self._out_dst, self._out_w,
            self._in_ptr, self._in_src, self._in_dst, self._in_w,
        ):
            a.flags.writeable = False
        self._dense = dense
        self._plan: SchedulePlan | None = None
        self._topo = self._topological_order_csr()  # raises on cycles

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks, the paper's ``np``."""
        return self._sizes.size

    @property
    def task_sizes(self) -> np.ndarray:
        """Execution time per task (read-only view), the paper's ``task_size``."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def prob_edge(self) -> np.ndarray:
        """The dense problem edge matrix (read-only view).

        Materialized lazily and cached; raises :class:`GraphError` above
        ``20_000`` tasks — the scale path must use the CSR accessors
        (:attr:`out_indptr` and friends, :meth:`edge_arrays`).
        """
        view = self._dense_matrix().view()
        view.flags.writeable = False
        return view

    def _dense_matrix(self) -> np.ndarray:
        if self._dense is None:
            n = self._sizes.size
            if n > _DENSE_LIMIT:
                gib = n * n * 8 / 2**30
                raise GraphError(
                    f"dense prob_edge for {n} tasks would allocate ~{gib:.0f} "
                    "GiB; use the CSR accessors (edge_arrays(), out_indptr, "
                    "in_indptr, ...) instead"
                )
            mat = np.zeros((n, n), dtype=np.int64)
            mat[self._out_src, self._out_dst] = self._out_w
            self._dense = mat
        return self._dense

    # -- CSR accessors (all read-only) ---------------------------------
    @property
    def out_indptr(self) -> np.ndarray:
        """CSR row pointer over out-edges (len ``n+1``)."""
        return self._out_ptr

    @property
    def out_indices(self) -> np.ndarray:
        """Destination task per out-edge, grouped by source, ascending."""
        return self._out_dst

    @property
    def out_weights(self) -> np.ndarray:
        """Edge weight per out-edge, aligned with :attr:`out_indices`."""
        return self._out_w

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR row pointer over in-edges (len ``n+1``)."""
        return self._in_ptr

    @property
    def in_indices(self) -> np.ndarray:
        """Source task per in-edge, grouped by destination, ascending."""
        return self._in_src

    @property
    def in_weights(self) -> np.ndarray:
        """Edge weight per in-edge, aligned with :attr:`in_indices`."""
        return self._in_w

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as ``(srcs, dsts, weights)`` sorted by ``(src, dst)``."""
        return self._out_src, self._out_dst, self._out_w

    def in_edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as ``(srcs, dsts, weights)`` sorted by ``(dst, src)``."""
        return self._in_src, self._in_dst, self._in_w

    @property
    def num_edges(self) -> int:
        return int(self._out_dst.size)

    @property
    def total_work(self) -> int:
        """Sum of all task sizes (serial execution time with zero comm)."""
        return int(self._sizes.sum())

    @property
    def total_comm(self) -> int:
        """Sum of all edge weights."""
        return int(self._out_w.sum())

    def weight(self, src: int, dst: int) -> int:
        """Communication weight of edge ``src -> dst`` (0 if absent)."""
        i = self.edge_index(src, dst)
        return int(self._out_w[i]) if i >= 0 else 0

    def edge_index(self, src: int, dst: int) -> int:
        """Position of edge ``src -> dst`` in the out-CSR arrays, -1 if absent."""
        lo, hi = int(self._out_ptr[src]), int(self._out_ptr[src + 1])
        i = lo + int(np.searchsorted(self._out_dst[lo:hi], dst))
        if i < hi and self._out_dst[i] == dst:
            return i
        return -1

    def has_edge(self, src: int, dst: int) -> bool:
        return self.edge_index(src, dst) >= 0

    def predecessors(self, task: int) -> np.ndarray:
        """Tasks with an edge into ``task`` (ascending, read-only)."""
        return self._in_src[self._in_ptr[task] : self._in_ptr[task + 1]]

    def successors(self, task: int) -> np.ndarray:
        """Tasks with an edge out of ``task`` (ascending, read-only)."""
        return self._out_dst[self._out_ptr[task] : self._out_ptr[task + 1]]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` records."""
        for s, d, w in zip(
            self._out_src.tolist(), self._out_dst.tolist(), self._out_w.tolist()
        ):
            yield Edge(s, d, w)

    def sources(self) -> np.ndarray:
        """Tasks with no predecessors (entry tasks)."""
        return np.flatnonzero(np.diff(self._in_ptr) == 0)

    def sinks(self) -> np.ndarray:
        """Tasks with no successors (exit tasks)."""
        return np.flatnonzero(np.diff(self._out_ptr) == 0)

    @property
    def topological_order(self) -> np.ndarray:
        """A topological ordering of the tasks (read-only view)."""
        view = self._topo.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def schedule_plan(self) -> SchedulePlan:
        """The cached level-structured in-edge layout for vectorized sweeps."""
        if self._plan is None:
            self._plan = self._build_plan()
        return self._plan

    def _build_plan(self) -> SchedulePlan:
        n = self._sizes.size
        in_counts = np.diff(self._in_ptr)
        indeg = in_counts.copy()
        frontier = np.flatnonzero(indeg == 0)
        parts: list[np.ndarray] = []
        while frontier.size:
            parts.append(frontier)
            eidx = _expand(
                self._out_ptr[frontier], self._out_ptr[frontier + 1]
            )
            targets = self._out_dst[eidx]
            np.subtract.at(indeg, targets, 1)
            frontier = np.unique(targets[indeg[targets] == 0])
        order = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        level_ptr = np.concatenate(
            ([0], np.cumsum([p.size for p in parts], dtype=np.int64))
        )
        cnt = in_counts[order]
        eptr = np.concatenate(([0], np.cumsum(cnt))).astype(np.int64)
        eperm = _expand(self._in_ptr[order], self._in_ptr[order + 1])
        plan = SchedulePlan(
            order=order,
            level_ptr=level_ptr,
            eptr=eptr,
            src=self._in_src[eperm],
            dst=np.repeat(order, cnt),
            eperm=eperm,
        )
        for a in (plan.order, plan.level_ptr, plan.eptr, plan.src, plan.dst,
                  plan.eperm):
            a.flags.writeable = False
        return plan

    def critical_path_length(self) -> int:
        """Length of the longest path counting node *and* edge weights.

        This equals the ideal-graph makespan when every edge crosses a
        cluster boundary, and lower-bounds it in general; it is mostly a
        sanity metric for generated workloads.
        """
        plan = self.schedule_plan()
        cost = self._in_w[plan.eperm]
        return int(sweep_finish_times(plan, self._sizes, cost).max())

    def degree(self, task: int) -> int:
        """Undirected degree (in + out) of ``task``."""
        return int(
            self._in_ptr[task + 1] - self._in_ptr[task]
            + self._out_ptr[task + 1] - self._out_ptr[task]
        )

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        n = self.num_tasks
        seen = np.zeros(n, dtype=bool)
        seen[0] = True
        frontier = np.asarray([0], dtype=np.int64)
        while frontier.size:
            out_e = _expand(self._out_ptr[frontier], self._out_ptr[frontier + 1])
            in_e = _expand(self._in_ptr[frontier], self._in_ptr[frontier + 1])
            nbrs = np.concatenate((self._out_dst[out_e], self._in_src[in_e]))
            frontier = np.unique(nbrs[~seen[nbrs]])
            seen[frontier] = True
        return bool(seen.all())

    def relabeled(self, order: Sequence[int]) -> "TaskGraph":
        """Return a copy with tasks renumbered by ``order``.

        ``order[new_id] = old_id``; used by generators that want canonical
        topological numbering.
        """
        idx = np.asarray(order, dtype=np.int64)
        if np.sort(idx).tolist() != list(range(self.num_tasks)):
            raise GraphError("relabel order must be a permutation of all tasks")
        inv = np.empty_like(idx)
        inv[idx] = np.arange(self.num_tasks)
        return TaskGraph.from_edge_arrays(
            self._sizes[idx],
            inv[self._out_src],
            inv[self._out_dst],
            self._out_w,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Dunder / conversion
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_tasks

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            np.array_equal(self._sizes, other._sizes)
            and np.array_equal(self._out_src, other._out_src)
            and np.array_equal(self._out_dst, other._out_dst)
            and np.array_equal(self._out_w, other._out_w)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges}, work={self.total_work})"
        )

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with ``size``/``weight`` attrs."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i in range(self.num_tasks):
            g.add_node(i, size=int(self._sizes[i]))
        for e in self.edges():
            g.add_edge(e.src, e.dst, weight=e.weight)
        return g

    @classmethod
    def from_networkx(cls, g, name: str | None = None) -> "TaskGraph":
        """Build from a :class:`networkx.DiGraph` with ``size``/``weight`` attrs.

        Node labels must be ``0..n-1``.  Missing ``size`` defaults to 1,
        missing ``weight`` defaults to 1.
        """
        n = g.number_of_nodes()
        if sorted(g.nodes) != list(range(n)):
            raise GraphError("networkx nodes must be labeled 0..n-1")
        sizes = [int(g.nodes[i].get("size", 1)) for i in range(n)]
        edges = [
            (int(u), int(v), int(d.get("weight", 1))) for u, v, d in g.edges(data=True)
        ]
        return cls(sizes, edges, name=name or str(g.name or "taskgraph"))

    def _topological_order_csr(self) -> np.ndarray:
        """Kahn's algorithm over the out-CSR arrays; raises on cycles.

        Visits in the exact order of the historical dense implementation
        (stack popped from the back, successors appended ascending) so
        every downstream pinned result is preserved.
        """
        n = self._sizes.size
        indeg = np.diff(self._in_ptr).tolist()
        out_ptr = self._out_ptr.tolist()
        out_dst = self._out_dst.tolist()
        ready = [i for i in range(n) if indeg[i] == 0]
        order: list[int] = []
        while ready:
            u = ready.pop()
            order.append(u)
            for v in out_dst[out_ptr[u] : out_ptr[u + 1]]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(order) != n:
            raise GraphError("problem graph contains a cycle; it must be a DAG")
        return np.asarray(order, dtype=np.int64)


def _expand(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], ends[i])`` for all i, vectorized."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_ends = np.repeat(np.cumsum(counts), counts)
    return (
        np.arange(total, dtype=np.int64)
        - rep_ends
        + np.repeat(counts, counts)
        + np.repeat(starts, counts)
    )


def _looks_like_triples(edges: Sequence) -> bool:
    """Heuristic: is ``edges`` a sequence of (src, dst, w) triples?"""
    first = edges[0]
    return (
        isinstance(first, (tuple, list, Edge))
        and len(first if not isinstance(first, Edge) else first.as_tuple()) == 3
    )
