"""The problem graph: a weighted DAG of tasks.

This is the paper's *problem graph* ``Gp = {Vp, Ep}`` (Sec. 2.1, Fig. 2).
Each node (task) carries an integer execution time (``task_size`` in the
paper's internal representation, Sec. 3) and each directed edge carries an
integer communication time (``prob_edge[i][j]``).

The canonical storage is the dense ``prob_edge`` matrix, exactly as in the
paper, because every algorithm in Sec. 4 is phrased over it.  Adjacency
lists, topological order, and transitive structure are derived and cached.
Tasks are numbered ``0..np-1`` (the paper numbers from 1; all internal
indices here are 0-based and the I/O layer preserves that convention).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..utils import GraphError, as_weight_matrix

__all__ = ["TaskGraph", "Edge"]


@dataclass(frozen=True)
class Edge:
    """A directed, weighted problem edge ``src -> dst``."""

    src: int
    dst: int
    weight: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.weight)


class TaskGraph:
    """A weighted task DAG (the paper's problem graph).

    Parameters
    ----------
    task_sizes:
        Execution time of each task, one entry per task.  All must be
        positive (a task takes at least one time unit).
    edges:
        Either a dense square matrix ``prob_edge`` (entry ``[i, j] > 0``
        means an edge ``i -> j`` with that communication weight) or an
        iterable of ``(src, dst, weight)`` triples.
    name:
        Optional label used in reports and serialized files.

    Raises
    ------
    GraphError
        If sizes are non-positive, an edge is self-looping or dangling, or
        the graph contains a cycle.
    """

    def __init__(
        self,
        task_sizes: Sequence[int] | np.ndarray,
        edges: object = (),
        name: str = "taskgraph",
    ) -> None:
        sizes = np.asarray(task_sizes, dtype=np.int64).copy()
        if sizes.ndim != 1:
            raise GraphError(f"task_sizes must be 1-D, got shape {sizes.shape}")
        if sizes.size == 0:
            raise GraphError("a task graph needs at least one task")
        if (sizes <= 0).any():
            bad = int(np.argmax(sizes <= 0))
            raise GraphError(f"task {bad} has non-positive size {int(sizes[bad])}")
        self._sizes = sizes
        n = sizes.size

        if isinstance(edges, (np.ndarray, dict)) or (
            isinstance(edges, Sequence) and edges and not _looks_like_triples(edges)
        ):
            mat = as_weight_matrix(edges, n)
        else:
            mat = np.zeros((n, n), dtype=np.int64)
            for src, dst, weight in edges:  # type: ignore[misc]
                if not (0 <= src < n and 0 <= dst < n):
                    raise GraphError(f"edge ({src}, {dst}) references a missing task")
                if src == dst:
                    raise GraphError(
                        f"self-loop edges are not allowed (task {src})"
                    )
                if weight <= 0:
                    raise GraphError(
                        f"edge ({src}, {dst}) must have positive weight, got "
                        f"{weight}; a zero-weight edge cannot be represented — "
                        "omit it (a zero matrix entry means 'no edge')"
                    )
                mat[src, dst] = int(weight)
        if np.diagonal(mat).any():
            raise GraphError("self-loop edges are not allowed")
        self._prob_edge = mat
        self.name = name
        self._topo = _topological_order(mat)  # raises on cycles
        self._preds: list[np.ndarray] = [np.flatnonzero(mat[:, j]) for j in range(n)]
        self._succs: list[np.ndarray] = [np.flatnonzero(mat[i, :]) for i in range(n)]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of tasks, the paper's ``np``."""
        return self._sizes.size

    @property
    def task_sizes(self) -> np.ndarray:
        """Execution time per task (read-only view), the paper's ``task_size``."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def prob_edge(self) -> np.ndarray:
        """The dense problem edge matrix (read-only view)."""
        view = self._prob_edge.view()
        view.flags.writeable = False
        return view

    @property
    def num_edges(self) -> int:
        return int(np.count_nonzero(self._prob_edge))

    @property
    def total_work(self) -> int:
        """Sum of all task sizes (serial execution time with zero comm)."""
        return int(self._sizes.sum())

    @property
    def total_comm(self) -> int:
        """Sum of all edge weights."""
        return int(self._prob_edge.sum())

    def weight(self, src: int, dst: int) -> int:
        """Communication weight of edge ``src -> dst`` (0 if absent)."""
        return int(self._prob_edge[src, dst])

    def has_edge(self, src: int, dst: int) -> bool:
        return self._prob_edge[src, dst] > 0

    def predecessors(self, task: int) -> np.ndarray:
        """Tasks with an edge into ``task``."""
        return self._preds[task]

    def successors(self, task: int) -> np.ndarray:
        """Tasks with an edge out of ``task``."""
        return self._succs[task]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` records."""
        srcs, dsts = np.nonzero(self._prob_edge)
        for s, d in zip(srcs.tolist(), dsts.tolist()):
            yield Edge(s, d, int(self._prob_edge[s, d]))

    def sources(self) -> np.ndarray:
        """Tasks with no predecessors (entry tasks)."""
        return np.flatnonzero(~self._prob_edge.any(axis=0))

    def sinks(self) -> np.ndarray:
        """Tasks with no successors (exit tasks)."""
        return np.flatnonzero(~self._prob_edge.any(axis=1))

    @property
    def topological_order(self) -> np.ndarray:
        """A topological ordering of the tasks (read-only view)."""
        view = self._topo.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def critical_path_length(self) -> int:
        """Length of the longest path counting node *and* edge weights.

        This equals the ideal-graph makespan when every edge crosses a
        cluster boundary, and lower-bounds it in general; it is mostly a
        sanity metric for generated workloads.
        """
        finish = np.zeros(self.num_tasks, dtype=np.int64)
        for t in self._topo.tolist():
            preds = self._preds[t]
            start = 0
            if preds.size:
                start = int((finish[preds] + self._prob_edge[preds, t]).max())
            finish[t] = start + self._sizes[t]
        return int(finish.max())

    def degree(self, task: int) -> int:
        """Undirected degree (in + out) of ``task``."""
        return int(self._preds[task].size + self._succs[task].size)

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        n = self.num_tasks
        adj = (self._prob_edge > 0) | (self._prob_edge.T > 0)
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(adj[u]).tolist():
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return bool(seen.all())

    def relabeled(self, order: Sequence[int]) -> "TaskGraph":
        """Return a copy with tasks renumbered by ``order``.

        ``order[new_id] = old_id``; used by generators that want canonical
        topological numbering.
        """
        idx = np.asarray(order, dtype=np.int64)
        if np.sort(idx).tolist() != list(range(self.num_tasks)):
            raise GraphError("relabel order must be a permutation of all tasks")
        inv = np.empty_like(idx)
        inv[idx] = np.arange(self.num_tasks)
        mat = self._prob_edge[np.ix_(idx, idx)]
        return TaskGraph(self._sizes[idx], mat, name=self.name)

    # ------------------------------------------------------------------
    # Dunder / conversion
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_tasks

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return np.array_equal(self._sizes, other._sizes) and np.array_equal(
            self._prob_edge, other._prob_edge
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges}, work={self.total_work})"
        )

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with ``size``/``weight`` attrs."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i in range(self.num_tasks):
            g.add_node(i, size=int(self._sizes[i]))
        for e in self.edges():
            g.add_edge(e.src, e.dst, weight=e.weight)
        return g

    @classmethod
    def from_networkx(cls, g, name: str | None = None) -> "TaskGraph":
        """Build from a :class:`networkx.DiGraph` with ``size``/``weight`` attrs.

        Node labels must be ``0..n-1``.  Missing ``size`` defaults to 1,
        missing ``weight`` defaults to 1.
        """
        n = g.number_of_nodes()
        if sorted(g.nodes) != list(range(n)):
            raise GraphError("networkx nodes must be labeled 0..n-1")
        sizes = [int(g.nodes[i].get("size", 1)) for i in range(n)]
        edges = [
            (int(u), int(v), int(d.get("weight", 1))) for u, v, d in g.edges(data=True)
        ]
        return cls(sizes, edges, name=name or str(g.name or "taskgraph"))


def _looks_like_triples(edges: Sequence) -> bool:
    """Heuristic: is ``edges`` a sequence of (src, dst, w) triples?"""
    first = edges[0]
    return (
        isinstance(first, (tuple, list, Edge))
        and len(first if not isinstance(first, Edge) else first.as_tuple()) == 3
    )


def _topological_order(mat: np.ndarray) -> np.ndarray:
    """Kahn's algorithm over the dense edge matrix; raises on cycles."""
    n = mat.shape[0]
    indeg = np.count_nonzero(mat, axis=0)
    ready = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    indeg = indeg.copy()
    while ready:
        u = ready.pop()
        order.append(u)
        for v in np.flatnonzero(mat[u]).tolist():
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if len(order) != n:
        raise GraphError("problem graph contains a cycle; it must be a DAG")
    return np.asarray(order, dtype=np.int64)
