"""Assignments: the bijection between abstract nodes and system nodes.

Paper Sec. 3.7: the assignment matrix ``assi[ns]`` stores, for each system
node, the id of the abstract node (cluster) mapped onto it (Fig. 23-a/b).
Because ``na == ns`` and clusters may not share processors, an assignment
is a permutation.

We keep the paper's orientation (``assi[system] = cluster``) as the
canonical array and provide the inverse (``placement[cluster] = system``)
because most algorithms index by cluster.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..topology.base import SystemGraph
from ..utils import MappingError, check_permutation
from .clustered import ClusteredGraph

__all__ = ["Assignment", "communication_matrix"]


class Assignment:
    """A bijection clusters <-> processors.

    Parameters
    ----------
    assi:
        ``assi[system_node] = cluster`` — the paper's orientation.  Must be
        a permutation of ``0..n-1``.
    """

    def __init__(self, assi: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(assi, dtype=np.int64)
        self._assi = check_permutation(arr, arr.size).copy()
        inv = np.empty_like(self._assi)
        inv[self._assi] = np.arange(self._assi.size)
        self._placement = inv
        self._assi.flags.writeable = False
        self._placement.flags.writeable = False

    # ------------------------------------------------------------------
    @classmethod
    def from_placement(cls, placement: Sequence[int] | np.ndarray) -> "Assignment":
        """Build from the inverse orientation ``placement[cluster] = system``."""
        arr = np.asarray(placement, dtype=np.int64)
        arr = check_permutation(arr, arr.size)
        assi = np.empty_like(arr)
        assi[arr] = np.arange(arr.size)
        return cls(assi)

    @classmethod
    def identity(cls, n: int) -> "Assignment":
        """Cluster ``i`` on system node ``i``."""
        return cls(np.arange(n))

    @classmethod
    def random(
        cls, n: int, rng: int | np.random.Generator | None = None
    ) -> "Assignment":
        """A uniformly random assignment (the paper's comparison baseline)."""
        from ..utils import as_rng

        return cls(as_rng(rng).permutation(n))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._assi.size

    @property
    def assi(self) -> np.ndarray:
        """``assi[system] = cluster`` (read-only), the paper's Fig. 23-b."""
        return self._assi

    @property
    def placement(self) -> np.ndarray:
        """``placement[cluster] = system`` (read-only)."""
        return self._placement

    def system_of(self, cluster: int) -> int:
        return int(self._placement[cluster])

    def cluster_on(self, system_node: int) -> int:
        return int(self._assi[system_node])

    def swapped(self, cluster_a: int, cluster_b: int) -> "Assignment":
        """New assignment with two clusters' processors exchanged."""
        if cluster_a == cluster_b:
            raise MappingError("cannot swap a cluster with itself")
        p = self._placement.copy()
        p[cluster_a], p[cluster_b] = p[cluster_b], p[cluster_a]
        return Assignment.from_placement(p)

    def with_placement_updates(self, updates: Mapping[int, int]) -> "Assignment":
        """New assignment with ``cluster -> system`` entries replaced.

        The updated vector must still be a permutation, i.e. the caller is
        responsible for moving *sets* of clusters onto *sets* of processors
        (that is exactly what the refinement's random re-placement does).
        """
        p = self._placement.copy()
        for cluster, system_node in updates.items():
            p[cluster] = system_node
        return Assignment.from_placement(p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return np.array_equal(self._assi, other._assi)

    def __hash__(self) -> int:
        """In-process-only hash (dict/set membership within one interpreter).

        Builtin ``hash()`` of bytes depends on ``PYTHONHASHSEED``, so this
        value must never be persisted or used as a cache/store key.
        Durable identity is the SHA-256 canonical-JSON fingerprint
        (:mod:`repro.service.fingerprint`), which never calls ``hash()``.
        """
        # repro: allow[det_builtin_hash] - in-process dict/set membership only
        return hash(self._assi.tobytes())

    def __repr__(self) -> str:
        return f"Assignment(assi={self._assi.tolist()})"


def communication_matrix(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> np.ndarray:
    """The paper's ``comm[np][np]`` (Sec. 4.3.4 algorithm I, Fig. 23-c).

    ``comm[i][j] = clus_edge[i][j] * shortest[sys(cluster(i))][sys(cluster(j))]``

    — each inter-cluster message pays its clustered weight once per hop of
    the shortest path between the host processors (store-and-forward,
    contention-free).  Intra-cluster entries stay 0 because ``clus_edge``
    is 0 there.
    """
    if clustered.num_clusters != system.num_nodes:
        raise MappingError(
            f"{clustered.num_clusters} clusters cannot map onto "
            f"{system.num_nodes} system nodes (na must equal ns)"
        )
    if assignment.size != system.num_nodes:
        raise MappingError(
            f"assignment covers {assignment.size} nodes, system has {system.num_nodes}"
        )
    labels = clustered.clustering.labels
    host = assignment.placement[labels]  # system node per task
    hops = system.shortest[np.ix_(host, host)]
    return (clustered.clus_edge * hops).astype(np.int64)
