"""Clusterings and the clustered problem graph.

The paper's first scheduling step groups the ``np`` problem nodes into
``na`` clusters (``na == ns``) and *removes the communication weight* of
every edge whose endpoints fall in the same cluster — precedence is kept,
cost becomes zero (Sec. 1, Sec. 2.1, Fig. 3).  The result is the
*clustered problem graph* ``Gc`` with edge matrix ``clus_edge`` (Fig. 19-a)
and cluster membership table ``clus_pnode`` (Fig. 19-b).

:class:`Clustering` is a plain partition (cluster id per task);
:class:`ClusteredGraph` binds a :class:`~repro.core.taskgraph.TaskGraph`
to a :class:`Clustering` and exposes the derived matrices.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..utils import GraphError
from .taskgraph import TaskGraph

__all__ = ["Clustering", "ClusteredGraph"]


class Clustering:
    """A partition of tasks ``0..np-1`` into clusters ``0..na-1``.

    Parameters
    ----------
    labels:
        ``labels[task] = cluster`` for every task.  Every cluster id in
        ``0..num_clusters-1`` must be used at least once (the mapping stage
        requires a bijection between clusters and processors, so empty
        clusters would waste a processor; callers that want empty clusters
        can renumber).
    num_clusters:
        Total cluster count ``na``.  Defaults to ``max(labels) + 1``.
    """

    def __init__(
        self, labels: Sequence[int] | np.ndarray, num_clusters: int | None = None
    ) -> None:
        arr = np.asarray(labels, dtype=np.int64).copy()
        if arr.ndim != 1 or arr.size == 0:
            raise GraphError("labels must be a non-empty 1-D sequence")
        if (arr < 0).any():
            raise GraphError("cluster labels must be non-negative")
        na = int(arr.max()) + 1 if num_clusters is None else int(num_clusters)
        if (arr >= na).any():
            raise GraphError(f"label {int(arr.max())} out of range for {na} clusters")
        used = np.bincount(arr, minlength=na)
        if (used == 0).any():
            empty = int(np.argmax(used == 0))
            raise GraphError(
                f"cluster {empty} is empty; every cluster must hold at least one task"
            )
        self._labels = arr
        self._na = na
        self._members: list[np.ndarray] = [np.flatnonzero(arr == c) for c in range(na)]

    @property
    def num_tasks(self) -> int:
        return self._labels.size

    @property
    def num_clusters(self) -> int:
        """Number of clusters, the paper's ``na``."""
        return self._na

    @property
    def labels(self) -> np.ndarray:
        """Cluster id per task (read-only view)."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def cluster_of(self, task: int) -> int:
        return int(self._labels[task])

    def members(self, cluster: int) -> np.ndarray:
        """Tasks in ``cluster``, ascending (a row of the paper's ``clus_pnode``)."""
        return self._members[cluster]

    def sizes(self) -> np.ndarray:
        """Number of tasks per cluster."""
        return np.asarray([m.size for m in self._members], dtype=np.int64)

    def load(self, graph: TaskGraph) -> np.ndarray:
        """Total task work per cluster under ``graph``'s task sizes."""
        return np.bincount(
            self._labels, weights=graph.task_sizes, minlength=self._na
        ).astype(np.int64)

    def clus_pnode(self) -> np.ndarray:
        """The paper's cluster matrix ``clus_pnode[na][np]`` (Fig. 19-b).

        Row ``c`` lists the member tasks of cluster ``c`` left-justified and
        padded with ``-1`` (the paper pads with blanks).
        """
        out = np.full((self._na, self.num_tasks), -1, dtype=np.int64)
        for c, mem in enumerate(self._members):
            out[c, : mem.size] = mem
        return out

    @classmethod
    def from_groups(
        cls, groups: Iterable[Iterable[int]], num_tasks: int | None = None
    ) -> "Clustering":
        """Build from an iterable of clusters, each an iterable of task ids."""
        group_list = [list(g) for g in groups]
        flat = [t for g in group_list for t in g]
        if not flat:
            raise GraphError("at least one non-empty group is required")
        n = (max(flat) + 1) if num_tasks is None else num_tasks
        if sorted(flat) != list(range(n)):
            raise GraphError("groups must partition tasks 0..n-1 exactly once each")
        labels = np.empty(n, dtype=np.int64)
        for c, g in enumerate(group_list):
            for t in g:
                labels[t] = c
        return cls(labels, num_clusters=len(group_list))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return self._na == other._na and np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return f"Clustering(tasks={self.num_tasks}, clusters={self._na})"


class ClusteredGraph:
    """A task graph together with a clustering (the paper's ``Gc``).

    Exposes the two matrices the mapping algorithms consume:

    * :attr:`clus_edge` — inter-cluster communication weights; intra-cluster
      entries are zeroed (Fig. 19-a).
    * the parent graph's ``prob_edge`` — still needed because precedence of
      intra-cluster edges survives clustering (Sec. 4.1 discusses exactly
      this trap: task 4's predecessor is only visible in ``prob_edge``).
    """

    def __init__(self, graph: TaskGraph, clustering: Clustering) -> None:
        if clustering.num_tasks != graph.num_tasks:
            raise GraphError(
                f"clustering covers {clustering.num_tasks} tasks but the graph "
                f"has {graph.num_tasks}"
            )
        self._graph = graph
        self._clustering = clustering
        labels = clustering.labels
        cross = labels[:, None] != labels[None, :]
        self._clus_edge = np.where(cross, graph.prob_edge, 0).astype(np.int64)

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def clustering(self) -> Clustering:
        return self._clustering

    @property
    def num_tasks(self) -> int:
        return self._graph.num_tasks

    @property
    def num_clusters(self) -> int:
        return self._clustering.num_clusters

    @property
    def clus_edge(self) -> np.ndarray:
        """Clustered problem edge matrix (read-only view)."""
        view = self._clus_edge.view()
        view.flags.writeable = False
        return view

    @property
    def prob_edge(self) -> np.ndarray:
        return self._graph.prob_edge

    @property
    def task_sizes(self) -> np.ndarray:
        return self._graph.task_sizes

    def cluster_of(self, task: int) -> int:
        return self._clustering.cluster_of(task)

    def comm_weight(self, src: int, dst: int) -> int:
        """Clustered communication weight of ``src -> dst`` (0 if intra-cluster)."""
        return int(self._clus_edge[src, dst])

    def cut_weight(self) -> int:
        """Total inter-cluster communication weight (the clustering's cut)."""
        return int(self._clus_edge.sum())

    def internal_weight(self) -> int:
        """Total communication weight absorbed inside clusters."""
        return self._graph.total_comm - self.cut_weight()

    def __repr__(self) -> str:
        return (
            f"ClusteredGraph(tasks={self.num_tasks}, clusters={self.num_clusters}, "
            f"cut={self.cut_weight()})"
        )
