"""Clusterings and the clustered problem graph.

The paper's first scheduling step groups the ``np`` problem nodes into
``na`` clusters (``na == ns``) and *removes the communication weight* of
every edge whose endpoints fall in the same cluster — precedence is kept,
cost becomes zero (Sec. 1, Sec. 2.1, Fig. 3).  The result is the
*clustered problem graph* ``Gc`` with edge matrix ``clus_edge`` (Fig. 19-a)
and cluster membership table ``clus_pnode`` (Fig. 19-b).

:class:`Clustering` is a plain partition (cluster id per task);
:class:`ClusteredGraph` binds a :class:`~repro.core.taskgraph.TaskGraph`
to a :class:`Clustering` and exposes the derived matrices.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..utils import GraphError
from .taskgraph import _DENSE_LIMIT, TaskGraph

__all__ = ["Clustering", "ClusteredGraph"]


class Clustering:
    """A partition of tasks ``0..np-1`` into clusters ``0..na-1``.

    Parameters
    ----------
    labels:
        ``labels[task] = cluster`` for every task.  Every cluster id in
        ``0..num_clusters-1`` must be used at least once (the mapping stage
        requires a bijection between clusters and processors, so empty
        clusters would waste a processor; callers that want empty clusters
        can renumber).
    num_clusters:
        Total cluster count ``na``.  Defaults to ``max(labels) + 1``.
    """

    def __init__(
        self, labels: Sequence[int] | np.ndarray, num_clusters: int | None = None
    ) -> None:
        arr = np.asarray(labels, dtype=np.int64).copy()
        if arr.ndim != 1 or arr.size == 0:
            raise GraphError("labels must be a non-empty 1-D sequence")
        if (arr < 0).any():
            raise GraphError("cluster labels must be non-negative")
        na = int(arr.max()) + 1 if num_clusters is None else int(num_clusters)
        if (arr >= na).any():
            raise GraphError(f"label {int(arr.max())} out of range for {na} clusters")
        used = np.bincount(arr, minlength=na)
        if (used == 0).any():
            empty = int(np.argmax(used == 0))
            raise GraphError(
                f"cluster {empty} is empty; every cluster must hold at least one task"
            )
        self._labels = arr
        self._na = na
        # Per-cluster member lists, ascending: one stable argsort + split
        # instead of na full scans (the difference between O(n log n) and
        # O(na * n) at 100k tasks x 1k clusters).
        order = np.argsort(arr, kind="stable").astype(np.int64)
        bounds = np.cumsum(used)[:-1]
        self._members: list[np.ndarray] = np.split(order, bounds)

    @property
    def num_tasks(self) -> int:
        return self._labels.size

    @property
    def num_clusters(self) -> int:
        """Number of clusters, the paper's ``na``."""
        return self._na

    @property
    def labels(self) -> np.ndarray:
        """Cluster id per task (read-only view)."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def cluster_of(self, task: int) -> int:
        return int(self._labels[task])

    def members(self, cluster: int) -> np.ndarray:
        """Tasks in ``cluster``, ascending (a row of the paper's ``clus_pnode``)."""
        return self._members[cluster]

    def sizes(self) -> np.ndarray:
        """Number of tasks per cluster."""
        return np.asarray([m.size for m in self._members], dtype=np.int64)

    def load(self, graph: TaskGraph) -> np.ndarray:
        """Total task work per cluster under ``graph``'s task sizes."""
        return np.bincount(
            self._labels, weights=graph.task_sizes, minlength=self._na
        ).astype(np.int64)

    def clus_pnode(self) -> np.ndarray:
        """The paper's cluster matrix ``clus_pnode[na][np]`` (Fig. 19-b).

        Row ``c`` lists the member tasks of cluster ``c`` left-justified and
        padded with ``-1`` (the paper pads with blanks).
        """
        out = np.full((self._na, self.num_tasks), -1, dtype=np.int64)
        for c, mem in enumerate(self._members):
            out[c, : mem.size] = mem
        return out

    @classmethod
    def from_groups(
        cls, groups: Iterable[Iterable[int]], num_tasks: int | None = None
    ) -> "Clustering":
        """Build from an iterable of clusters, each an iterable of task ids."""
        group_list = [list(g) for g in groups]
        flat = [t for g in group_list for t in g]
        if not flat:
            raise GraphError("at least one non-empty group is required")
        n = (max(flat) + 1) if num_tasks is None else num_tasks
        if sorted(flat) != list(range(n)):
            raise GraphError("groups must partition tasks 0..n-1 exactly once each")
        labels = np.empty(n, dtype=np.int64)
        for c, g in enumerate(group_list):
            for t in g:
                labels[t] = c
        return cls(labels, num_clusters=len(group_list))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return self._na == other._na and np.array_equal(self._labels, other._labels)

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return f"Clustering(tasks={self.num_tasks}, clusters={self._na})"


class ClusteredGraph:
    """A task graph together with a clustering (the paper's ``Gc``).

    Exposes the two matrices the mapping algorithms consume:

    * :attr:`clus_edge` — inter-cluster communication weights; intra-cluster
      entries are zeroed (Fig. 19-a).
    * the parent graph's ``prob_edge`` — still needed because precedence of
      intra-cluster edges survives clustering (Sec. 4.1 discusses exactly
      this trap: task 4's predecessor is only visible in ``prob_edge``).
    """

    def __init__(self, graph: TaskGraph, clustering: Clustering) -> None:
        if clustering.num_tasks != graph.num_tasks:
            raise GraphError(
                f"clustering covers {clustering.num_tasks} tasks but the graph "
                f"has {graph.num_tasks}"
            )
        self._graph = graph
        self._clustering = clustering
        labels = clustering.labels
        # Clustered weights stay in the graph's CSR edge layout: the weight
        # where the endpoints' clusters differ, zero where they match.  The
        # dense Fig. 19-a matrix is derived lazily for small instances only.
        srcs, dsts, w = graph.edge_arrays()
        self._cross_out_w = np.where(labels[srcs] != labels[dsts], w, 0)
        self._cross_out_w.flags.writeable = False
        in_srcs, in_dsts, in_w = graph.in_edge_arrays()
        self._cross_in_w = np.where(labels[in_srcs] != labels[in_dsts], in_w, 0)
        self._cross_in_w.flags.writeable = False
        self._cut = int(self._cross_out_w.sum())
        self._clus_dense: np.ndarray | None = None
        self._plan_w: np.ndarray | None = None

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def clustering(self) -> Clustering:
        return self._clustering

    @property
    def num_tasks(self) -> int:
        return self._graph.num_tasks

    @property
    def num_clusters(self) -> int:
        return self._clustering.num_clusters

    @property
    def clus_edge(self) -> np.ndarray:
        """Clustered problem edge matrix (read-only view).

        Dense Fig. 19-a form, materialized lazily; subject to the same
        size guard as :attr:`TaskGraph.prob_edge`.  Scale-path consumers
        use :attr:`cross_out_weights` / :attr:`cross_in_weights`, which
        stay aligned with the graph's CSR edge arrays.
        """
        if self._clus_dense is None:
            n = self.num_tasks
            if n > _DENSE_LIMIT:
                gib = n * n * 8 / 2**30
                raise GraphError(
                    f"dense clus_edge for {n} tasks would allocate ~{gib:.0f} "
                    "GiB; use cross_out_weights / cross_in_weights instead"
                )
            srcs, dsts, _ = self._graph.edge_arrays()
            mat = np.zeros((n, n), dtype=np.int64)
            mat[srcs, dsts] = self._cross_out_w
            self._clus_dense = mat
        view = self._clus_dense.view()
        view.flags.writeable = False
        return view

    @property
    def cross_out_weights(self) -> np.ndarray:
        """Clustered weight per edge, aligned with ``graph.edge_arrays()``
        (zero for intra-cluster edges; read-only)."""
        return self._cross_out_w

    @property
    def cross_in_weights(self) -> np.ndarray:
        """Clustered weight per edge, aligned with ``graph.in_edge_arrays()``
        (zero for intra-cluster edges; read-only)."""
        return self._cross_in_w

    def plan_weights(self) -> np.ndarray:
        """Clustered weight per edge in schedule-plan order (cached).

        Aligned with ``graph.schedule_plan().src/dst`` — the per-edge
        weight array the vectorized schedule sweeps consume.
        """
        if self._plan_w is None:
            plan = self._graph.schedule_plan()
            w = self._cross_in_w[plan.eperm]
            w.flags.writeable = False
            self._plan_w = w
        return self._plan_w

    @property
    def prob_edge(self) -> np.ndarray:
        return self._graph.prob_edge

    @property
    def task_sizes(self) -> np.ndarray:
        return self._graph.task_sizes

    def cluster_of(self, task: int) -> int:
        return self._clustering.cluster_of(task)

    def comm_weight(self, src: int, dst: int) -> int:
        """Clustered communication weight of ``src -> dst`` (0 if intra-cluster)."""
        i = self._graph.edge_index(src, dst)
        return int(self._cross_out_w[i]) if i >= 0 else 0

    def cut_weight(self) -> int:
        """Total inter-cluster communication weight (the clustering's cut)."""
        return self._cut

    def internal_weight(self) -> int:
        """Total communication weight absorbed inside clusters."""
        return self._graph.total_comm - self.cut_weight()

    def __repr__(self) -> str:
        return (
            f"ClusteredGraph(tasks={self.num_tasks}, clusters={self.num_clusters}, "
            f"cut={self.cut_weight()})"
        )
