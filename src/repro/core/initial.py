"""The critical-degree-guided initial assignment (paper Sec. 4.3.2).

Three phases, each growing the placement outward from what is already
placed:

1. Seed: the abstract node with the largest *critical degree* goes onto
   the system node with the largest degree.
2. Critical growth: while abstract nodes touched by critical abstract
   edges remain, pick the unplaced one with the largest critical degree
   that is connected *by a critical abstract edge* to an already-placed
   node, and put it on an unused system node adjacent to that anchor's
   processor; if no adjacent processor is free, use the closest free one.
3. Intensity growth: place the remaining abstract nodes the same way but
   ranked by communication intensity ``mca`` and anchored through plain
   abstract adjacency.

Documented interpretation choices (the 1991 text leaves them open; see
DESIGN.md Sec. 2):

* **Ties** — the paper says "select any qualifying node arbitrarily" at
  every choice point.  On the regular topologies the paper evaluates
  (hypercubes, meshes) *every* candidate has the same degree, so the
  tie-break carries nearly all of the placement quality.  The default
  ``tie_break="affinity"`` resolves ties by the candidate processor's
  total weighted distance to the processors of the new node's already-
  placed communication partners (critical weights counted first, full
  abstract weights second), then by degree, then by index / RNG.
  ``tie_break="degree"`` reproduces the literal degree-only reading, and
  ablation A2' in the benchmarks compares the two.
* **Multiple anchors** — when the new abstract node has several placed
  critical neighbors, any of their processors' free neighbors qualifies
  in step (b); the paper anchors on the single node found in (a), which
  is a subset of this behaviour.  Step (c)'s "closest" is taken to the
  nearest qualifying anchor.
* **Disconnected critical subgraph / abstract graph** — if no unplaced
  candidate is connected to the placed region, we fall back to the
  highest-ranked unplaced node and seed it on the best free system node
  (a fresh phase-1 step for the new component).
"""

from __future__ import annotations

import numpy as np

from ..topology.base import SystemGraph
from ..utils import MappingError, as_rng
from .abstract import AbstractGraph
from .assignment import Assignment
from .critical import CriticalityAnalysis

__all__ = ["initial_assignment"]

#: Critical-edge weight multiplier in the affinity score: one unit of
#: critical weight outranks any realistic amount of non-critical weight,
#: mirroring the paper's absolute priority of critical edges.
_CRITICAL_PRIORITY = 10_000


def initial_assignment(
    abstract: AbstractGraph,
    analysis: CriticalityAnalysis,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    tie_break: str = "affinity",
) -> Assignment:
    """Run the three-phase initial assignment; returns a full bijection.

    Parameters
    ----------
    tie_break:
        ``"affinity"`` (default) or ``"degree"`` — see module docstring.
    """
    if tie_break not in ("affinity", "degree"):
        raise ValueError(f"tie_break must be 'affinity' or 'degree', got {tie_break!r}")
    na = abstract.num_nodes
    ns = system.num_nodes
    if na != ns:
        raise MappingError(f"na ({na}) must equal ns ({ns}) for the mapping stage")
    gen = None if rng is None else as_rng(rng)

    placement = np.full(na, -1, dtype=np.int64)  # cluster -> system node
    sys_used = np.zeros(ns, dtype=bool)
    abs_placed = np.zeros(na, dtype=bool)

    c_abs = analysis.c_abs_edge
    crit_deg = analysis.critical_degree
    mca = abstract.mca
    weights = abstract.weights
    deg = system.deg
    shortest = system.shortest
    # Combined partner weights for the affinity tie-break: critical weight
    # dominates, total clustered weight breaks the rest.
    affinity_w = c_abs * _CRITICAL_PRIORITY + weights

    def pick(candidates: np.ndarray, score: np.ndarray) -> int:
        """Highest score wins; residual ties break by lowest index or rng."""
        best = candidates[score[candidates] == score[candidates].max()]
        if gen is not None and best.size > 1:
            return int(best[gen.integers(0, best.size)])
        return int(best[0])

    def pick_system_node(cluster: int, candidates: np.ndarray) -> int:
        """Choose a processor for ``cluster`` among ``candidates``.

        ``degree`` mode: the paper's literal rule (max degree, arbitrary
        ties).  ``affinity`` mode: minimal weighted distance to the
        processors of already-placed partners, degree as tie-break.
        """
        if tie_break == "degree" or candidates.size == 1:
            return pick(candidates, deg)
        partners = np.flatnonzero((affinity_w[cluster] > 0) & abs_placed)
        if partners.size == 0:
            return pick(candidates, deg)
        hosts = placement[partners]
        cost = (
            shortest[np.ix_(candidates, hosts)].astype(np.float64)
            * affinity_w[cluster, partners][None, :]
        ).sum(axis=1)
        # Lower cost is better; convert to a max-score with degree bonus.
        score = -cost * (deg.max() + 1.0)
        score = score + deg[candidates]
        best = candidates[score == score.max()]
        if gen is not None and best.size > 1:
            return int(best[gen.integers(0, best.size)])
        return int(best[0])

    def place(cluster: int, system_node: int) -> None:
        placement[cluster] = system_node
        sys_used[system_node] = True
        abs_placed[cluster] = True

    def free_sys() -> np.ndarray:
        return np.flatnonzero(~sys_used)

    def seed(cluster: int) -> None:
        """Phase-1-style placement on the best free system node."""
        place(cluster, pick_system_node(cluster, free_sys()))

    def grow(cluster: int, anchors: np.ndarray) -> None:
        """Place ``cluster`` adjacent to (or else nearest to) ``anchors``.

        ``anchors`` are the *system* nodes hosting the placed neighbors
        found in step (a).  Implements steps (b) and (c).
        """
        adjacent = np.flatnonzero(system.sys_edge[anchors].any(axis=0) & ~sys_used)
        if adjacent.size:  # step (b)
            place(cluster, pick_system_node(cluster, adjacent))
            return
        # Step (c): closest free node to any anchor, then the usual pick.
        free = free_sys()
        dist_to_anchor = shortest[np.ix_(free, anchors)].min(axis=1)
        nearest = free[dist_to_anchor == dist_to_anchor.min()]
        place(cluster, pick_system_node(cluster, nearest))

    def growth_phase(eligible_mask: np.ndarray, rank: np.ndarray, link: np.ndarray) -> None:
        """Shared driver for phases 2 and 3.

        ``eligible_mask`` limits which abstract nodes this phase must
        place, ``rank`` scores candidates, ``link`` is the adjacency used
        both for the "connected to a placed node" condition (step a) and
        to find the anchor processors.
        """
        while True:
            remaining = np.flatnonzero(eligible_mask & ~abs_placed)
            if remaining.size == 0:
                return
            # Step (a): candidates linked to a placed abstract node.
            connected = remaining[(link[remaining][:, abs_placed] > 0).any(axis=1)]
            if connected.size == 0:
                # Disconnected component: restart growth with a fresh seed.
                seed(pick(remaining, rank))
                continue
            cluster = pick(connected, rank)
            placed_neighbors = np.flatnonzero((link[cluster] > 0) & abs_placed)
            anchors = placement[placed_neighbors]
            grow(cluster, anchors)

    # ------------------------------------------------------------ phase 1
    seed_cluster = pick(np.arange(na), crit_deg)
    place(seed_cluster, pick(np.arange(ns), deg))

    # ------------------------------------------------------------ phase 2
    growth_phase(crit_deg > 0, crit_deg, c_abs)

    # ------------------------------------------------------------ phase 3
    growth_phase(np.ones(na, dtype=bool), mca, abstract.abs_edge)

    return Assignment.from_placement(placement)
