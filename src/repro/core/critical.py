"""Critical problem edges, critical abstract edges, critical degrees.

Paper Sec. 2.1 (definitions 2-5) and Sec. 4.2 (Theorems 1-2 and the three
algorithms).  An ideal edge is *critical* when increasing the weight of
the corresponding clustered problem edge by any amount would lengthen the
ideal makespan.  Theorems 1-2 turn this into a backward reachability
computation:

* start from the *latest tasks* (max ``i_end``),
* an edge ``j -> i`` into a marked task is critical iff it is **tight**
  (``i_edge[j][i] == clus_edge[j][i]``, i.e. zero slack),
* the tail of a critical edge becomes marked, and the search recurses.

Interpretation note (documented in DESIGN.md Sec. 2): the paper's
algorithm step 2(a) finds predecessors "in the matrix clus_edge", which
read literally skips intra-cluster edges (their ``clus_edge`` entry is 0).
But a tight intra-cluster edge transfers delay exactly like a tight
inter-cluster one (Lemma 1 applies with ``clus_edge == i_edge == 0``), so
skipping them would fail to mark upstream inter-cluster edges whose delay
provably reaches the latest task *through* a cluster.  We therefore
propagate through every tight problem edge by default and expose
``propagate_through_intra=False`` for the literal reading.  Intra-cluster
edges never contribute weight to critical *abstract* edges either way
(both endpoints share a cluster).

Critical abstract edge weights are the sums of critical problem edge
weights between cluster pairs (algorithm II); critical degrees are row
sums (algorithm III, the last column of ``c_abs_edge`` in Fig. 20-b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .abstract import AbstractGraph
from .clustered import ClusteredGraph
from .ideal import IdealSchedule, ideal_schedule

__all__ = ["CriticalityAnalysis", "analyze_criticality"]


@dataclass(frozen=True)
class CriticalityAnalysis:
    """All criticality artifacts for one clustered graph.

    Attributes
    ----------
    ideal:
        The ideal schedule the analysis is based on.
    crit_edge:
        ``crit_edge[j, i] = clus_edge[j, i]`` for every critical problem
        edge ``j -> i``, else 0 (the paper's ``crit_edge[np][np]``,
        Fig. 22-c).  Note a critical *intra*-cluster edge stores weight 0,
        matching its clustered weight.
    crit_mask:
        Boolean matrix marking critical problem edges (including tight
        intra-cluster edges when propagation crossed them).  This
        disambiguates "critical with weight 0" from "not critical".
    c_abs_edge:
        Critical abstract edge weights, symmetric ``na x na`` (Fig. 20-b
        without its trailing degree column).
    critical_degree:
        Per-abstract-node sum of incident critical abstract weights (the
        trailing column of the paper's ``c_abs_edge[na][na+1]``).
    on_critical_path:
        Boolean per task: reachable backward from a latest task through
        critical edges (or itself latest).
    """

    ideal: IdealSchedule
    crit_edge: np.ndarray
    crit_mask: np.ndarray
    c_abs_edge: np.ndarray
    critical_degree: np.ndarray
    on_critical_path: np.ndarray

    def critical_problem_edges(self) -> list[tuple[int, int]]:
        """Sorted ``(src, dst)`` pairs of critical problem edges."""
        srcs, dsts = np.nonzero(self.crit_mask)
        return sorted(zip(srcs.tolist(), dsts.tolist()))

    def critical_abstract_edges(self) -> list[tuple[int, int]]:
        """Sorted ``(a, b)`` with ``a < b`` of critical abstract edges."""
        sym = np.triu(self.c_abs_edge, 1)
        srcs, dsts = np.nonzero(sym)
        return sorted(zip(srcs.tolist(), dsts.tolist()))

    def clusters_with_critical_edges(self) -> np.ndarray:
        """Abstract nodes incident to at least one critical abstract edge."""
        return np.flatnonzero(self.critical_degree > 0)

    def is_abstract_edge_critical(self, a: int, b: int) -> bool:
        return bool(self.c_abs_edge[a, b] > 0)


def analyze_criticality(
    clustered: ClusteredGraph,
    ideal: IdealSchedule | None = None,
    *,
    propagate_through_intra: bool = True,
) -> CriticalityAnalysis:
    """Compute critical problem/abstract edges and critical degrees.

    Parameters
    ----------
    clustered:
        The clustered problem graph.
    ideal:
        Pre-computed ideal schedule (derived if omitted).
    propagate_through_intra:
        When True (default), criticality propagates backward through tight
        intra-cluster edges as well; see the module docstring.
    """
    if ideal is None:
        ideal = ideal_schedule(clustered)
    graph = clustered.graph
    n = graph.num_tasks
    clus = clustered.clus_edge
    labels = clustered.clustering.labels
    na = clustered.num_clusters

    crit_mask = np.zeros((n, n), dtype=bool)
    on_path = np.zeros(n, dtype=bool)

    # Backward sweep from the latest tasks (paper algorithm I, Sec. 4.2).
    frontier = ideal.latest_tasks().tolist()
    on_path[frontier] = True
    while frontier:
        v = frontier.pop()
        for u in graph.predecessors(v).tolist():
            tight = ideal.i_edge[u, v] == clus[u, v]
            if not tight:
                continue
            intra = labels[u] == labels[v]
            if intra and not propagate_through_intra:
                continue
            if not crit_mask[u, v]:
                crit_mask[u, v] = True
                if not on_path[u]:
                    on_path[u] = True
                    frontier.append(u)

    crit_edge = np.where(crit_mask, clus, 0).astype(np.int64)

    # Algorithm II: lift to critical abstract edges (inter-cluster only,
    # which holds automatically since intra entries of crit_edge are 0 —
    # but we also guard on the labels for clarity).
    c_abs = np.zeros((na, na), dtype=np.int64)
    srcs, dsts = np.nonzero(crit_mask)
    for s, d in zip(srcs.tolist(), dsts.tolist()):
        a, b = int(labels[s]), int(labels[d])
        if a == b:
            continue
        w = int(clus[s, d])
        c_abs[a, b] += w
        c_abs[b, a] += w

    # Algorithm III: critical degrees (row sums).
    degree = c_abs.sum(axis=1).astype(np.int64)

    for arr in (crit_edge, crit_mask, c_abs, degree, on_path):
        arr.flags.writeable = False
    return CriticalityAnalysis(
        ideal=ideal,
        crit_edge=crit_edge,
        crit_mask=crit_mask,
        c_abs_edge=c_abs,
        critical_degree=degree,
        on_critical_path=on_path,
    )
