"""Multilevel coarsen–map–refine mapping (the Scotch/Metis lineage).

The paper's two-phase strategy — cluster the problem graph, then map the
clusters onto processors — is the 1991 ancestor of today's *multilevel*
mapping: contract the graph into a hierarchy of progressively smaller
graphs, map the coarsest one (where search is cheap), then project the
assignment back level by level, refining at each resolution.  This
module grows the reproduction in that direction while reusing the
repo's existing primitives end to end:

* **Coarsening** — the mapping stage's unit of placement is the cluster,
  so level 0 of the hierarchy is the *abstract cluster graph* rendered
  as a :class:`~repro.core.taskgraph.TaskGraph` (node = cluster, node
  size = cluster work, edge weight = total inter-cluster communication;
  see :func:`abstract_taskgraph`).  Each contraction runs deterministic
  heavy-edge matching (:func:`heavy_edge_matching`) and merges matched
  pairs (:func:`contract_graph`), recording the projection map and the
  communication weight *absorbed* inside merged nodes — so total
  communication is conserved across levels
  (``coarse.total_comm + absorbed == fine.total_comm``, a tested
  invariant).  The machine is contracted in lockstep
  (:func:`match_processors` / :func:`contract_system`): exactly as many
  processor pairs merge as cluster pairs, keeping the bijection
  ``na == ns`` at every level.
* **Initial mapping** — any callable with the mapper calling convention
  maps the coarsest instance; the :mod:`repro.api` adapter plugs in any
  *registered* mapper here (``initial="critical"`` by default).  When no
  coarsening happens (``max_levels=1`` or the graph is already at or
  below ``min_coarse_tasks``) the callable receives the *original*
  instance untouched, so ``multilevel(initial=X, max_levels=1)`` is
  bit-identical to plain ``X``.
* **Uncoarsening** — :func:`project_assignment` expands each coarse
  node's children onto its coarse processor's children (spill-over
  children go to the free processor nearest their sibling), then
  :func:`refine_comm_volume` runs KL/FM-style boundary refinement on
  top of the O(deg) probe/commit machinery from
  :mod:`repro.core.incremental`
  (:class:`~repro.core.incremental.CommVolumeDelta`, the comm-volume
  aggregate of :class:`~repro.core.incremental.DeltaEvaluator` without
  the schedule state this loop never reads), committing only swaps
  that strictly reduce the hop-weighted communication volume.

Communication volume is *exactly* representable at every level of the
hierarchy (it is a sum over cluster pairs), which is why the refinement
optimizes it rather than the makespan; the makespan of the final
assignment is evaluated once, at full resolution, by the caller.

Edges of a level graph are stored low-id -> high-id (the abstract view
is undirected; a DAG orientation is required by :class:`TaskGraph` and
any total order gives one), so every level is a valid ``TaskGraph`` and
the whole hierarchy can be fed back into any graph-consuming tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from ..utils import MappingError
from .abstract import AbstractGraph
from .assignment import Assignment
from .clustered import ClusteredGraph, Clustering
from .incremental import CommVolumeDelta
from .taskgraph import TaskGraph, _expand

__all__ = [
    "Level",
    "MultilevelHierarchy",
    "MultilevelResult",
    "abstract_taskgraph",
    "build_hierarchy",
    "contract_graph",
    "contract_system",
    "heavy_edge_matching",
    "identity_clustering",
    "match_processors",
    "multilevel_map",
    "project_assignment",
    "refine_comm_volume",
    "refine_metric",
]


def abstract_taskgraph(clustered: ClusteredGraph) -> TaskGraph:
    """Level 0 of the hierarchy: the abstract cluster graph as a TaskGraph.

    Node ``c`` stands for cluster ``c`` with size = the cluster's total
    task work; the edge between clusters ``a < b`` carries the total
    clustered communication weight between them (both orientations
    summed, as in :class:`~repro.core.abstract.AbstractGraph`), stored
    ``a -> b`` so the result is a DAG by construction.  Total edge
    weight equals ``clustered.cut_weight()`` — communication is
    conserved when moving to the abstract view.
    """
    weights = AbstractGraph(clustered).weights
    mat = np.triu(weights, 1)
    return TaskGraph(
        clustered.clustering.load(clustered.graph),
        mat,
        name=f"{clustered.graph.name}@clusters",
    )


def identity_clustering(num_nodes: int) -> Clustering:
    """Every node is its own cluster (level graphs are mapped 1:1)."""
    return Clustering(np.arange(num_nodes), num_clusters=num_nodes)


def heavy_edge_matching(graph: TaskGraph, max_merges: int) -> list[tuple[int, int]]:
    """Deterministic heavy-edge matching: up to ``max_merges`` disjoint pairs.

    Undirected edges are visited by descending weight (ties by endpoint
    ids); a pair is taken when both endpoints are still unmatched.  The
    classic randomized-visit HEM is replaced by this global greedy so the
    whole multilevel pipeline is deterministic without consuming any RNG
    state (the sub-mapper gets the seed untouched).
    """
    if max_merges <= 0:
        return []
    srcs, dsts, weights = _undirected_pairs(graph)
    if not srcs.size:
        return []
    order = np.lexsort((dsts, srcs, -weights))
    matched = np.zeros(graph.num_tasks, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for k in order.tolist():
        u, v = int(srcs[k]), int(dsts[k])
        if matched[u] or matched[v]:
            continue
        matched[u] = matched[v] = True
        pairs.append((u, v))
        if len(pairs) >= max_merges:
            break
    return pairs


def _undirected_pairs(
    graph: TaskGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique undirected edges ``(lo, hi, weight)`` sorted by ``(lo, hi)``.

    Straight from the CSR edge arrays — equivalent to the nonzero pattern
    of ``triu(prob_edge + prob_edge.T, 1)`` without building either dense
    matrix (weights of coincident orientations are summed; a DAG cannot
    contain a 2-cycle, so in practice each pair appears once).
    """
    srcs, dsts, w = graph.edge_arrays()
    if not srcs.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    lo, hi = np.minimum(srcs, dsts), np.maximum(srcs, dsts)
    order = np.lexsort((hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    first = np.concatenate(([True], (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])))
    starts = np.flatnonzero(first)
    return lo[starts], hi[starts], np.add.reduceat(w, starts)


def _merge_map(num_nodes: int, pairs: list[tuple[int, int]]) -> np.ndarray:
    """``node_map[old] = new`` for merging ``pairs``; new ids are dense and
    ordered by each group's smallest old member, so contraction is stable."""
    rep = np.arange(num_nodes, dtype=np.int64)
    for u, v in pairs:
        lo, hi = (u, v) if u < v else (v, u)
        rep[hi] = lo
    reps = np.unique(rep)
    new_id = np.empty(num_nodes, dtype=np.int64)
    new_id[reps] = np.arange(reps.size)
    return new_id[rep]


def contract_graph(
    graph: TaskGraph, pairs: list[tuple[int, int]]
) -> tuple[TaskGraph, np.ndarray, int]:
    """Merge matched node pairs; returns ``(coarse, node_map, absorbed)``.

    ``node_map[fine] = coarse`` records the projection; ``absorbed`` is
    the communication weight of edges whose endpoints merged (it leaves
    the coarse graph but is conserved:
    ``coarse.total_comm + absorbed == graph.total_comm``).
    """
    n = graph.num_tasks
    node_map = _merge_map(n, pairs)
    nc = int(node_map.max()) + 1
    sizes = np.bincount(node_map, weights=graph.task_sizes, minlength=nc)
    srcs, dsts, w = _undirected_pairs(graph)
    a, b = node_map[srcs], node_map[dsts]
    inside = a == b
    absorbed = int(w[inside].sum())
    lo, hi = np.minimum(a[~inside], b[~inside]), np.maximum(a[~inside], b[~inside])
    w = w[~inside]
    if lo.size:
        # Aggregate parallel coarse edges without a dense nc x nc scatter.
        order = np.lexsort((hi, lo))
        lo, hi, w = lo[order], hi[order], w[order]
        first = np.concatenate(
            ([True], (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1]))
        )
        starts = np.flatnonzero(first)
        lo, hi, w = lo[starts], hi[starts], np.add.reduceat(w, starts)
    coarse = TaskGraph.from_edge_arrays(
        sizes.astype(np.int64), lo, hi, w, name=f"{graph.name}/2"
    )
    return coarse, node_map, absorbed


def match_processors(system: SystemGraph, num_merges: int) -> list[tuple[int, int]]:
    """``num_merges`` disjoint processor pairs, nearest pairs first.

    Greedy over all pairs by ``(distance, ids)``; on a connected machine
    any ``num_merges <= ns // 2`` is always achievable.
    """
    n = system.num_nodes
    if num_merges <= 0:
        return []
    if num_merges > n // 2:
        raise MappingError(
            f"cannot merge {num_merges} processor pairs on {n} processors"
        )
    iu = np.triu_indices(n, 1)
    order = np.lexsort((iu[1], iu[0], system.shortest[iu]))
    matched = np.zeros(n, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for k in order.tolist():
        p, q = int(iu[0][k]), int(iu[1][k])
        if matched[p] or matched[q]:
            continue
        matched[p] = matched[q] = True
        pairs.append((p, q))
        if len(pairs) >= num_merges:
            break
    return pairs


def contract_system(
    system: SystemGraph, pairs: list[tuple[int, int]]
) -> tuple[SystemGraph, np.ndarray]:
    """Merge matched processor pairs; returns ``(coarse, proc_map)``.

    Two coarse processors are linked when any of their members were;
    contraction of a connected machine stays connected, so the result
    is always a valid :class:`SystemGraph`.  On heterogeneous machines
    the coarse link inherits the *cheapest* member link (the contracted
    distances stay a lower envelope of the fine ones), so every level
    of the hierarchy keeps optimizing the weighted metric.
    """
    n = system.num_nodes
    proc_map = _merge_map(n, pairs)
    nc = int(proc_map.max()) + 1
    srcs, dsts = np.nonzero(system.sys_edge)
    a, b = proc_map[srcs], proc_map[dsts]
    adj = np.zeros((nc, nc), dtype=np.int64)
    adj[a, b] = 1
    np.fill_diagonal(adj, 0)
    link_weights = None
    if system.is_weighted:
        link_weights = np.zeros((nc, nc), dtype=np.int64)
        for i, j, w in zip(
            a.tolist(), b.tolist(), system.link_weights[srcs, dsts].tolist()
        ):
            if i != j and (link_weights[i, j] == 0 or w < link_weights[i, j]):
                link_weights[i, j] = link_weights[j, i] = w
    coarse = SystemGraph(adj, name=f"{system.name}/2", link_weights=link_weights)
    return coarse, proc_map


@dataclass(frozen=True)
class Level:
    """One resolution of the hierarchy (finest = index 0).

    ``node_map``/``proc_map`` project this level's nodes/processors onto
    the next-coarser level (``None`` at the coarsest level);
    ``absorbed`` is the communication weight the contraction *into the
    next level* internalized (0 at the coarsest level).
    """

    graph: TaskGraph
    system: SystemGraph
    node_map: np.ndarray | None = None
    proc_map: np.ndarray | None = None
    absorbed: int = 0


@dataclass(frozen=True)
class MultilevelHierarchy:
    """The full coarsening hierarchy, finest (level 0) to coarsest."""

    levels: list[Level]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> Level:
        return self.levels[-1]

    def sizes(self) -> list[int]:
        """Node count per level, finest first."""
        return [level.graph.num_tasks for level in self.levels]


def build_hierarchy(
    clustered: ClusteredGraph,
    system: SystemGraph,
    max_levels: int = 12,
    min_coarse_tasks: int = 8,
) -> MultilevelHierarchy:
    """Coarsen the abstract cluster graph and the machine in lockstep.

    Contraction stops when the next level would need more than
    ``max_levels`` levels in total, the graph is down to
    ``min_coarse_tasks`` nodes, or heavy-edge matching finds no pair to
    merge (no edges left).  Every level keeps ``na == ns``.
    """
    if clustered.num_clusters != system.num_nodes:
        raise MappingError(
            f"{clustered.num_clusters} clusters cannot map onto "
            f"{system.num_nodes} system nodes (na must equal ns)"
        )
    if max_levels < 1:
        raise MappingError(f"max_levels must be >= 1, got {max_levels}")
    if min_coarse_tasks < 1:
        raise MappingError(f"min_coarse_tasks must be >= 1, got {min_coarse_tasks}")
    graph = abstract_taskgraph(clustered)
    levels: list[Level] = []
    current_system = system
    while len(levels) + 1 < max_levels and graph.num_tasks > min_coarse_tasks:
        budget = min(graph.num_tasks - min_coarse_tasks, graph.num_tasks // 2)
        pairs = heavy_edge_matching(graph, budget)
        if not pairs:
            break
        coarse_graph, node_map, absorbed = contract_graph(graph, pairs)
        coarse_system, proc_map = contract_system(
            current_system, match_processors(current_system, len(pairs))
        )
        levels.append(Level(graph, current_system, node_map, proc_map, absorbed))
        graph, current_system = coarse_graph, coarse_system
    levels.append(Level(graph, current_system))
    return MultilevelHierarchy(levels)


def project_assignment(level: Level, coarse: Assignment) -> Assignment:
    """Expand a next-coarser assignment onto ``level``.

    Each coarse node's children land on its coarse processor's children
    in id order.  A merge on one side need not mirror a merge on the
    other, so a two-child node can sit on a one-child processor; the
    spilled child then takes the free processor nearest its sibling
    (ties by processor id), which the per-level refinement immediately
    gets to improve.  The result is always a valid bijection.
    """
    node_map, proc_map = level.node_map, level.proc_map
    if node_map is None or proc_map is None:
        raise MappingError("the coarsest level has nothing to project from")
    nc = int(node_map.max()) + 1
    if coarse.size != nc:
        raise MappingError(
            f"coarse assignment covers {coarse.size} nodes, expected {nc}"
        )
    n = node_map.size
    node_children: list[list[int]] = [[] for _ in range(nc)]
    for fine, parent in enumerate(node_map.tolist()):
        node_children[parent].append(fine)
    proc_children: list[list[int]] = [[] for _ in range(nc)]
    for fine, parent in enumerate(proc_map.tolist()):
        proc_children[parent].append(fine)

    placement = np.full(n, -1, dtype=np.int64)
    spilled: list[tuple[int, int]] = []  # (fine node, sibling's processor)
    free: list[int] = []
    for parent in range(nc):
        nodes = node_children[parent]
        procs = proc_children[int(coarse.placement[parent])]
        k = min(len(nodes), len(procs))
        for i in range(k):
            placement[nodes[i]] = procs[i]
        if len(nodes) > k:
            spilled.append((nodes[k], procs[0]))
        free.extend(procs[k:])

    dist = level.system.shortest
    free.sort()
    for node, sibling_proc in sorted(spilled):
        best = min(free, key=lambda q: (int(dist[sibling_proc, q]), q))
        free.remove(best)
        placement[node] = best
    return Assignment.from_placement(placement)


def refine_comm_volume(
    graph: TaskGraph,
    system: SystemGraph,
    assignment: Assignment,
    passes: int,
    reporter=None,
) -> tuple[Assignment, int, int, int]:
    """KL/FM-style boundary refinement of one level's assignment.

    Sweeps the nodes in order; for each node ``c`` and each of its
    graph neighbors ``d`` (heaviest first), proposes swapping ``c``
    with the occupants of the processors adjacent to ``d``'s host —
    i.e. tries to pull ``c`` next to the nodes it talks to most.  Each
    proposal is an O(deg) probe on the
    :class:`~repro.core.incremental.CommVolumeDelta` aggregate (the
    comm-volume half of the delta-evaluation machinery, without the
    schedule state this loop never reads); only strictly improving
    swaps commit, so every pass monotonically reduces the hop-weighted
    communication volume and the loop terminates.  Stops early when a
    full pass commits nothing.

    Returns ``(assignment, comm_volume, probes, swaps)``.
    """
    n = graph.num_tasks
    if n != system.num_nodes:
        raise MappingError(
            f"level graph has {n} nodes, system has {system.num_nodes}"
        )
    sym = graph.prob_edge + graph.prob_edge.T
    evaluator = CommVolumeDelta(sym, system, assignment)
    return _pairwise_sweep(sym, system, evaluator, passes, reporter)


def _neighbor_lists(sym: np.ndarray) -> list[list[int]]:
    """Per-node graph neighbors, heaviest edge first (ties by id)."""
    out: list[list[int]] = []
    for c in range(sym.shape[0]):
        nbrs = np.flatnonzero(sym[c])
        order = np.lexsort((nbrs, -sym[c, nbrs]))
        out.append(nbrs[order].tolist())
    return out


def _pairwise_sweep(
    sym: np.ndarray,
    system: SystemGraph,
    evaluator: CommVolumeDelta,
    passes: int,
    reporter=None,
) -> tuple[Assignment, int, int, int]:
    """The KL/FM sweep of :func:`refine_comm_volume` over any
    :class:`CommVolumeDelta` aggregate (default distances or a metric's
    pair matrix).

    ``reporter`` (an optional
    :class:`~repro.core.anytime.AnytimeReporter`) gets one checkpoint
    per completed pass and may stop the sweep between passes."""
    n = sym.shape[0]
    if passes <= 0 or n < 2:
        return evaluator.assignment, evaluator.volume, 0, 0

    neighbor_lists = _neighbor_lists(sym)
    if getattr(evaluator, "supports_bulk", False):
        return _pairwise_sweep_bulk(
            system, evaluator, neighbor_lists, passes, reporter
        )
    probes = swaps = 0
    for _ in range(passes):
        improved = False
        for c in range(n):
            for d in neighbor_lists[c]:
                target_procs = system.neighbors(evaluator.host(d))
                committed = False
                for q in target_procs.tolist():
                    occupant = evaluator.occupant(q)
                    if occupant == c:
                        continue
                    probes += 1
                    if evaluator.delta_swap(c, occupant) < 0:
                        evaluator.swap(c, occupant)
                        swaps += 1
                        improved = committed = True
                        break
                if committed:
                    break  # c moved; revisit its other neighbors next pass
        if reporter is not None:
            reporter.report(probes, evaluator.volume, evaluator.assignment)
            if reporter.should_stop():
                break
        if not improved:
            break
    return evaluator.assignment, evaluator.volume, probes, swaps


def _pairwise_sweep_bulk(
    system: SystemGraph,
    evaluator: CommVolumeDelta,
    neighbor_lists: list[list[int]],
    passes: int,
    reporter=None,
) -> tuple[Assignment, int, int, int]:
    """Bit-identical bulk form of the scalar sweep above.

    The scalar loop commits the *first* improving swap for each node
    ``c`` and then moves on — so the placement is fixed while ``c``'s
    whole candidate sequence (graph neighbors heaviest-first, each
    host's processor neighborhood in order) is probed.  That makes the
    sequence independent of the probe results: build it in one gather,
    score every candidate with one :meth:`CommVolumeDelta.delta_swaps`
    call, and the first negative entry is exactly the swap the scalar
    loop would have committed (and its index recovers the probe count).
    """
    n = len(neighbor_lists)
    nbr_arrs = [np.asarray(nbrs, dtype=np.int64) for nbrs in neighbor_lists]
    rows = [system.neighbors(p) for p in range(system.num_nodes)]
    adj_ptr = np.concatenate(
        ([0], np.cumsum([row.size for row in rows]))
    ).astype(np.int64)
    adj_idx = np.concatenate(rows).astype(np.int64)
    placement = evaluator.placement_view
    assi = evaluator.occupant_view
    probes = swaps = 0
    for _ in range(passes):
        improved = False
        for c in range(n):
            nbrs = nbr_arrs[c]
            if not nbrs.size:
                continue
            hosts = placement[nbrs]
            procs = adj_idx[_expand(adj_ptr[hosts], adj_ptr[hosts + 1])]
            occ = assi[procs]
            keep = occ != c
            if not keep.all():
                procs, occ = procs[keep], occ[keep]
            if not procs.size:
                continue
            negative = evaluator.delta_swaps(c, procs) < 0
            if negative.any():
                first = int(np.argmax(negative))
                probes += first + 1
                evaluator.swap(c, int(occ[first]))
                swaps += 1
                improved = True
            else:
                probes += int(procs.size)
        if reporter is not None:
            reporter.report(probes, evaluator.volume, evaluator.assignment)
            if reporter.should_stop():
                break
        if not improved:
            break
    return evaluator.assignment, evaluator.volume, probes, swaps


def refine_metric(
    graph: TaskGraph,
    system: SystemGraph,
    assignment: Assignment,
    passes: int,
    metric: str = "comm_volume",
    reporter=None,
) -> tuple[Assignment, float, int, int]:
    """:func:`refine_comm_volume` generalized to any registered analytic
    metric as the objective.

    ``metric="comm_volume"`` is the existing path, bit-identical to
    :func:`refine_comm_volume`.  Other analytic metrics run the same
    neighborhood sweep: metrics exposing a symmetric ``pair_matrix``
    (e.g. ``hop_bytes`` on unit-weight machines) keep the O(deg) probes
    on the :class:`~repro.core.incremental.CommVolumeDelta` aggregate;
    anything else falls back to probing full metric evaluations on the
    identity-clustered level graph.  Simulator-backed metrics are
    rejected — a sweep probing thousands of swaps cannot afford a
    simulation per probe.

    Returns ``(assignment, objective_value, probes, swaps)`` where the
    objective value is the metric's headline key on the final
    assignment.
    """
    if metric == "comm_volume":
        return refine_comm_volume(graph, system, assignment, passes, reporter)
    from ..metrics import METRICS  # deferred: repro.metrics imports repro.api

    m = METRICS.get(metric)
    if not getattr(m, "analytic", False):
        raise MappingError(
            f"refinement objective must be an analytic metric; "
            f"{metric!r} is simulator-backed"
        )
    n = graph.num_tasks
    if n != system.num_nodes:
        raise MappingError(
            f"level graph has {n} nodes, system has {system.num_nodes}"
        )
    level = ClusteredGraph(graph, identity_clustering(n))
    sym = graph.prob_edge + graph.prob_edge.T

    pair_fn = getattr(m, "pair_matrix", None)
    pair = pair_fn(system) if pair_fn is not None else None
    if pair is not None:
        evaluator = CommVolumeDelta(sym, system, assignment, metric=pair)
        refined, _, probes, swaps = _pairwise_sweep(
            sym, system, evaluator, passes, reporter
        )
        value = float(m.compute(level, system, refined)[metric])
        return refined, value, probes, swaps

    # Full-evaluation fallback: exact but O(metric) per probe.
    current = assignment
    value = float(m.compute(level, system, current)[metric])
    if passes <= 0 or n < 2:
        return current, value, 0, 0
    neighbor_lists = _neighbor_lists(sym)
    probes = swaps = 0
    for _ in range(passes):
        improved = False
        for c in range(n):
            for d in neighbor_lists[c]:
                target_procs = system.neighbors(int(current.placement[d]))
                committed = False
                for q in target_procs.tolist():
                    occupant = int(current.assi[q])
                    if occupant == c:
                        continue
                    probes += 1
                    candidate = current.swapped(c, occupant)
                    cand_value = float(m.compute(level, system, candidate)[metric])
                    if cand_value < value:
                        current, value = candidate, cand_value
                        swaps += 1
                        improved = committed = True
                        break
                if committed:
                    break
        if reporter is not None:
            reporter.report(probes, value, current)
            if reporter.should_stop():
                break
        if not improved:
            break
    return current, value, probes, swaps


# multilevel_map's ``refine_metric=`` keyword shadows the function above
# inside its body; keep a module-level alias to call through.
_refine_with_metric = refine_metric


@dataclass(frozen=True)
class MultilevelResult:
    """Outcome of :func:`multilevel_map`.

    ``comm_volume`` is the refinement objective's value on
    ``assignment`` — the hop-weighted communication volume under the
    default objective (exact for the original instance, because the
    level-0 abstract graph carries the full inter-cluster weights), or
    the chosen metric's headline value under ``refine_metric=...``.
    ``coarsened`` is False when the hierarchy collapsed to one level
    and the initial mapper ran on the original instance untouched.
    """

    assignment: Assignment
    hierarchy: MultilevelHierarchy
    comm_volume: int | float
    refine_probes: int
    refine_swaps: int

    @property
    def coarsened(self) -> bool:
        return self.hierarchy.num_levels > 1

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels

    @property
    def coarsest_nodes(self) -> int:
        return self.hierarchy.coarsest.graph.num_tasks


def multilevel_map(
    clustered: ClusteredGraph,
    system: SystemGraph,
    initial_mapper,
    max_levels: int = 12,
    min_coarse_tasks: int = 8,
    refine_passes: int = 4,
    refine_metric: str = "comm_volume",
    rng=None,
    reporter=None,
) -> MultilevelResult:
    """Coarsen, map the coarsest level with ``initial_mapper``, uncoarsen.

    ``initial_mapper`` is any callable ``(clustered, system, rng) ->
    Assignment`` — the :mod:`repro.api` adapter passes a registered
    mapper here.  When the hierarchy has a single level the callable
    receives the *original* ``(clustered, system)`` and its assignment
    is returned unrefined (the bit-identity contract); otherwise it
    receives the coarsest level graph under an identity clustering and
    the lockstep-coarsened machine, and the assignment is projected and
    refined level by level back to full resolution.

    ``refine_metric`` selects the refinement objective by registry name;
    any analytic metric is accepted (see :func:`refine_metric`, the
    function this keyword shadows).

    ``reporter`` (an optional
    :class:`~repro.core.anytime.AnytimeReporter`) receives anytime
    checkpoints from the *finest* level's refinement only — coarser
    levels' assignments have the wrong size to be anyone's best-so-far
    — and may stop that refinement between passes.
    """
    if refine_passes < 0:
        raise MappingError(f"refine_passes must be >= 0, got {refine_passes}")
    hierarchy = build_hierarchy(clustered, system, max_levels, min_coarse_tasks)
    levels = hierarchy.levels
    if len(levels) == 1:
        assignment = initial_mapper(clustered, system, rng)
        _, volume, _, _ = _refine_with_metric(
            levels[0].graph, levels[0].system, assignment, 0, refine_metric
        )
        return MultilevelResult(assignment, hierarchy, volume, 0, 0)

    coarsest = hierarchy.coarsest
    coarse_instance = ClusteredGraph(
        coarsest.graph, identity_clustering(coarsest.graph.num_tasks)
    )
    assignment = initial_mapper(coarse_instance, coarsest.system, rng)
    if assignment.size != coarsest.graph.num_tasks:
        raise MappingError(
            f"initial mapper returned an assignment over {assignment.size} "
            f"nodes, the coarsest level has {coarsest.graph.num_tasks}"
        )
    probes = swaps = 0
    volume: int | float = 0
    for level in reversed(levels[:-1]):
        assignment = project_assignment(level, assignment)
        assignment, volume, level_probes, level_swaps = _refine_with_metric(
            level.graph,
            level.system,
            assignment,
            refine_passes,
            refine_metric,
            reporter if level is levels[0] else None,
        )
        probes += level_probes
        swaps += level_swaps
    return MultilevelResult(assignment, hierarchy, volume, probes, swaps)
