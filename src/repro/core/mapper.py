"""High-level facade: the complete mapping strategy of the paper.

:class:`CriticalEdgeMapper` wires the full Fig. 1 pipeline together:

    clustered graph -> abstract graph -> ideal graph (lower bound)
                    -> critical edges  -> initial assignment
                    -> refinement (terminates at the lower bound)

and returns a :class:`MappingResult` holding every intermediate artifact
so experiments, tests and visualizations can inspect the pipeline without
recomputing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from ..utils import as_rng
from .abstract import AbstractGraph
from .assignment import Assignment
from .clustered import ClusteredGraph, Clustering
from .critical import CriticalityAnalysis, analyze_criticality
from .evaluate import Schedule, evaluate_assignment
from .ideal import IdealSchedule, ideal_schedule
from .initial import initial_assignment
from .refine import RefinementResult, refine_pairwise, refine_random
from .taskgraph import TaskGraph

__all__ = ["MappingResult", "CriticalEdgeMapper", "map_graph"]


@dataclass(frozen=True)
class MappingResult:
    """Everything produced by one end-to-end mapping run."""

    clustered: ClusteredGraph
    system: SystemGraph
    abstract: AbstractGraph
    ideal: IdealSchedule
    analysis: CriticalityAnalysis
    initial: Assignment
    initial_total_time: int
    refinement: RefinementResult
    schedule: Schedule

    @property
    def assignment(self) -> Assignment:
        """The final (best) assignment."""
        return self.refinement.assignment

    @property
    def total_time(self) -> int:
        """Makespan of the final assignment."""
        return self.refinement.total_time

    @property
    def lower_bound(self) -> int:
        return self.ideal.total_time

    @property
    def is_provably_optimal(self) -> bool:
        """True when the termination condition fired (Theorem 3)."""
        return self.refinement.reached_lower_bound

    def percent_over_lower_bound(self) -> float:
        """The paper's reporting metric: ``100 * total / lower_bound``.

        100.0 means the lower bound was met exactly.
        """
        return 100.0 * self.total_time / self.lower_bound

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappingResult(total_time={self.total_time}, "
            f"lower_bound={self.lower_bound}, "
            f"optimal={self.is_provably_optimal})"
        )


class CriticalEdgeMapper:
    """The paper's mapping strategy, configurable for the ablations.

    Parameters
    ----------
    refinement:
        ``"random"`` (the paper's random re-placement), ``"pairwise"``
        (the rejected alternative), or ``"none"`` (initial assignment
        only; ablation A1).
    refinement_trials:
        Trial budget; ``None`` uses the paper's ``ns``.
    use_critical_guidance:
        When False, the initial assignment sees a zeroed criticality
        analysis and degenerates to intensity/degree-guided greedy
        placement (ablation A2).
    propagate_through_intra:
        Forwarded to :func:`~repro.core.critical.analyze_criticality`.
    tie_break:
        Forwarded to :func:`~repro.core.initial.initial_assignment`
        (``"affinity"`` default, ``"degree"`` for the literal paper rule).
    rng:
        Seed or generator for tie-breaking and refinement randomness.
    """

    def __init__(
        self,
        refinement: str = "random",
        refinement_trials: int | None = None,
        use_critical_guidance: bool = True,
        propagate_through_intra: bool = True,
        tie_break: str = "affinity",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if refinement not in ("random", "pairwise", "none"):
            raise ValueError(
                f"refinement must be 'random', 'pairwise' or 'none', got {refinement!r}"
            )
        self.refinement = refinement
        self.refinement_trials = refinement_trials
        self.use_critical_guidance = use_critical_guidance
        self.propagate_through_intra = propagate_through_intra
        self.tie_break = tie_break
        self._rng = as_rng(rng)

    def map(self, clustered: ClusteredGraph, system: SystemGraph) -> MappingResult:
        """Run the full pipeline of Fig. 1 on one instance."""
        abstract = AbstractGraph(clustered)
        ideal = ideal_schedule(clustered)
        analysis = analyze_criticality(
            clustered, ideal, propagate_through_intra=self.propagate_through_intra
        )
        guidance = analysis if self.use_critical_guidance else _blank_analysis(analysis)

        init = initial_assignment(
            abstract, guidance, system, rng=self._rng, tie_break=self.tie_break
        )
        init_schedule = evaluate_assignment(clustered, system, init)

        if self.refinement == "none":
            refinement = RefinementResult(
                assignment=init,
                total_time=init_schedule.total_time,
                lower_bound=ideal.total_time,
                reached_lower_bound=init_schedule.total_time == ideal.total_time,
                trials=0,
                improved=False,
            )
        else:
            refine = refine_random if self.refinement == "random" else refine_pairwise
            refinement = refine(
                clustered,
                system,
                analysis,
                init,
                rng=self._rng,
                max_trials=self.refinement_trials,
            )

        schedule = (
            init_schedule
            if refinement.assignment == init
            else evaluate_assignment(clustered, system, refinement.assignment)
        )
        return MappingResult(
            clustered=clustered,
            system=system,
            abstract=abstract,
            ideal=ideal,
            analysis=analysis,
            initial=init,
            initial_total_time=init_schedule.total_time,
            refinement=refinement,
            schedule=schedule,
        )


def _blank_analysis(analysis: CriticalityAnalysis) -> CriticalityAnalysis:
    """A zeroed copy of ``analysis`` (no critical edges) for ablation A2."""
    zero_edge = np.zeros_like(analysis.crit_edge)
    zero_mask = np.zeros_like(analysis.crit_mask)
    zero_abs = np.zeros_like(analysis.c_abs_edge)
    zero_deg = np.zeros_like(analysis.critical_degree)
    zero_path = np.zeros_like(analysis.on_critical_path)
    for arr in (zero_edge, zero_mask, zero_abs, zero_deg, zero_path):
        arr.flags.writeable = False
    return CriticalityAnalysis(
        ideal=analysis.ideal,
        crit_edge=zero_edge,
        crit_mask=zero_mask,
        c_abs_edge=zero_abs,
        critical_degree=zero_deg,
        on_critical_path=zero_path,
    )


def map_graph(
    graph: TaskGraph,
    clustering: Clustering,
    system: SystemGraph,
    rng: int | np.random.Generator | None = None,
    **mapper_kwargs: object,
) -> MappingResult:
    """One-call convenience wrapper: cluster binding + mapping.

    >>> from repro.workloads import layered_random_dag
    >>> from repro.clustering import RandomClusterer
    >>> from repro.topology import hypercube
    >>> g = layered_random_dag(num_tasks=40, rng=1)
    >>> c = RandomClusterer(num_clusters=8).cluster(g, rng=1)
    >>> result = map_graph(g, c, hypercube(3), rng=1)
    >>> result.total_time >= result.lower_bound
    True
    """
    clustered = ClusteredGraph(graph, clustering)
    mapper = CriticalEdgeMapper(rng=rng, **mapper_kwargs)  # type: ignore[arg-type]
    return mapper.map(clustered, system)
