"""Refinement of an initial assignment (paper Sec. 4.3.3).

The paper refines by *random re-placement*: keep the **critical abstract
nodes** pinned (definition 5: nodes incident to a critical abstract edge
that the current assignment maps onto a single system edge — their
placement is exactly what the initial assignment worked for), randomly
re-place everything else, keep the better assignment, and allow ``ns``
such changes.  The refinement — and the whole mapping — stops the moment
any assignment's total time equals the ideal lower bound, because Theorem
3 then certifies optimality.

The paper reports that this random re-placement beats pairwise exchange
[2]; :func:`refine_pairwise` implements the pairwise-exchange alternative
so the claim can be tested (ablation A3 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from ..utils import as_rng
from .assignment import Assignment
from .clustered import ClusteredGraph
from .critical import CriticalityAnalysis
from .incremental import DeltaEvaluator

__all__ = [
    "RefinementResult",
    "critical_abstract_nodes",
    "refine_random",
    "refine_pairwise",
]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a refinement run.

    Attributes
    ----------
    assignment:
        Best assignment found.
    total_time:
        Its makespan.
    lower_bound:
        The ideal-graph makespan used for termination.
    reached_lower_bound:
        True when the termination condition fired — the assignment is then
        provably optimal (Theorem 3).
    trials:
        Number of candidate assignments evaluated (excluding the input).
    improved:
        True when refinement beat the initial assignment.
    """

    assignment: Assignment
    total_time: int
    lower_bound: int
    reached_lower_bound: bool
    trials: int
    improved: bool


def critical_abstract_nodes(
    analysis: CriticalityAnalysis, system: SystemGraph, assignment: Assignment
) -> np.ndarray:
    """Boolean mask of *critical abstract nodes* (paper definition 5).

    An abstract node is critical iff some incident critical abstract edge
    is mapped onto a single system edge (hosts at distance 1).  These are
    the nodes refinement must not move.
    """
    c_abs = analysis.c_abs_edge
    na = c_abs.shape[0]
    pinned = np.zeros(na, dtype=bool)
    hosts = assignment.placement
    srcs, dsts = np.nonzero(np.triu(c_abs, 1))
    for a, b in zip(srcs.tolist(), dsts.tolist()):
        if system.shortest[hosts[a], hosts[b]] == 1:
            pinned[a] = pinned[b] = True
    return pinned


def refine_random(
    clustered: ClusteredGraph,
    system: SystemGraph,
    analysis: CriticalityAnalysis,
    initial: Assignment,
    rng: int | np.random.Generator | None = None,
    max_trials: int | None = None,
) -> RefinementResult:
    """The paper's refinement procedure (Sec. 4.3.3, steps 1-4).

    Parameters
    ----------
    max_trials:
        Number of random re-placements to try; the paper fixes this to
        ``ns`` ("a total of ns changes are allowed"), which is the default.
    """
    gen = as_rng(rng)
    bound = analysis.ideal.total_time
    trials_allowed = system.num_nodes if max_trials is None else max_trials

    # Re-placements move many clusters at once, so each trial uses the
    # delta evaluator's full-evaluation fast path (no O(V^2) comm matrix).
    evaluator = DeltaEvaluator(clustered, system, initial)
    best = initial
    best_time = evaluator.total_time
    initial_time = best_time
    if best_time == bound:  # step 3: initial assignment already optimal
        return RefinementResult(best, best_time, bound, True, 0, False)

    pinned = critical_abstract_nodes(analysis, system, initial)
    movable = np.flatnonzero(~pinned)
    # The processors the movable clusters currently occupy are exactly the
    # processors not occupied by pinned clusters; re-placements permute the
    # movable clusters over that fixed pool (paper step 4-a).
    pool = initial.placement[movable]

    trials = 0
    if movable.size >= 2:
        for trials in range(1, trials_allowed + 1):
            perm = gen.permutation(movable.size)
            candidate = best.with_placement_updates(
                {int(c): int(p) for c, p in zip(movable, pool[perm])}
            )
            t = evaluator.evaluate(candidate)
            if t == bound:  # step 4-c: provably optimal, stop
                return RefinementResult(candidate, t, bound, True, trials, True)
            if t < best_time:  # step 4-d
                best, best_time = candidate, t
    return RefinementResult(
        best, best_time, bound, best_time == bound, trials, best_time < initial_time
    )


def refine_pairwise(
    clustered: ClusteredGraph,
    system: SystemGraph,
    analysis: CriticalityAnalysis,
    initial: Assignment,
    rng: int | np.random.Generator | None = None,
    max_trials: int | None = None,
) -> RefinementResult:
    """Pairwise-exchange refinement (the alternative the paper rejects).

    Each trial swaps two random *movable* clusters and keeps the swap when
    it helps; the same trial budget and termination condition as
    :func:`refine_random` make the two directly comparable (ablation A3).
    """
    gen = as_rng(rng)
    bound = analysis.ideal.total_time
    trials_allowed = system.num_nodes if max_trials is None else max_trials

    # Each trial swaps a pair within the current best assignment, so the
    # delta evaluator probes in O(affected region) and commits only
    # improvements — its state always mirrors ``best``.
    evaluator = DeltaEvaluator(clustered, system, initial)
    best = initial
    best_time = evaluator.total_time
    initial_time = best_time
    if best_time == bound:
        return RefinementResult(best, best_time, bound, True, 0, False)

    pinned = critical_abstract_nodes(analysis, system, initial)
    movable = np.flatnonzero(~pinned)

    trials = 0
    if movable.size >= 2:
        for trials in range(1, trials_allowed + 1):
            a, b = gen.choice(movable, size=2, replace=False)
            t = evaluator.probe_swap(int(a), int(b))
            if t == bound:
                evaluator.swap(int(a), int(b))
                return RefinementResult(
                    evaluator.assignment, t, bound, True, trials, True
                )
            if t < best_time:
                evaluator.swap(int(a), int(b))
                best, best_time = evaluator.assignment, t
    return RefinementResult(
        best, best_time, bound, best_time == bound, trials, best_time < initial_time
    )
