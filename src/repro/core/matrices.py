"""Paper-faithful bundle of the internal matrix representation (Sec. 3).

The library's classes each own their matrices; this module assembles the
complete set the paper enumerates in Sec. 3 / Figs. 18-23 for one mapping
instance, keyed by the paper's names.  It exists for inspection, teaching
and the I/O layer — algorithms use the typed objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from .abstract import AbstractGraph
from .assignment import Assignment, communication_matrix
from .clustered import ClusteredGraph
from .critical import CriticalityAnalysis, analyze_criticality
from .evaluate import evaluate_assignment
from .ideal import IdealSchedule, ideal_schedule

__all__ = ["PaperMatrices", "collect_matrices"]


@dataclass(frozen=True)
class PaperMatrices:
    """Every matrix of paper Sec. 3, under the paper's names.

    ``c_abs_edge`` includes the trailing critical-degree column, exactly as
    the paper's ``c_abs_edge[na][na+1]`` (Fig. 20-b).  ``assi``, ``comm``,
    ``start`` and ``end`` are only present when an assignment was supplied.

    ``route_prev`` is the one addition beyond the paper's set: the
    system's array-native routing table (the predecessor matrix of
    :class:`repro.sim.machine.RouteTable` — ``route_prev[s, v]`` is the
    node before ``v`` on the deterministic shortest route from ``s``),
    bundled so a dumped instance carries the concrete routes the
    simulator and congestion metrics will use, not just the distances.
    """

    prob_edge: np.ndarray       # Fig. 18
    task_size: np.ndarray       # Sec. 3.1(b)
    clus_edge: np.ndarray       # Fig. 19-a
    clus_pnode: np.ndarray      # Fig. 19-b (padded with -1)
    abs_edge: np.ndarray        # Fig. 20-a
    c_abs_edge: np.ndarray      # Fig. 20-b (with degree column)
    mca: np.ndarray             # Fig. 20-c
    sys_edge: np.ndarray        # Fig. 21-a
    shortest: np.ndarray        # Fig. 21-b
    deg: np.ndarray             # Fig. 21-c
    route_prev: np.ndarray      # routing predecessor matrix (not in paper)
    i_edge: np.ndarray          # Fig. 22-a
    i_start: np.ndarray         # Fig. 22-b
    i_end: np.ndarray           # Fig. 22-b
    crit_edge: np.ndarray       # Fig. 22-c
    assi: np.ndarray | None     # Fig. 23-b
    comm: np.ndarray | None     # Fig. 23-c
    start: np.ndarray | None    # Fig. 23-d
    end: np.ndarray | None      # Fig. 23-d

    def as_dict(self) -> dict[str, np.ndarray]:
        """All non-None matrices keyed by their paper names."""
        out: dict[str, np.ndarray] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


def collect_matrices(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment | None = None,
    *,
    ideal: IdealSchedule | None = None,
    analysis: CriticalityAnalysis | None = None,
) -> PaperMatrices:
    """Assemble the Sec. 3 matrices for one instance.

    Pass a pre-computed ``ideal``/``analysis`` to avoid recomputation when
    they already exist (e.g. from a :class:`~repro.core.mapper.MappingResult`).
    """
    # Late import: repro.sim consumes repro.core at package level, so the
    # reverse edge must stay out of module scope.
    from ..sim.machine import routing_table

    graph = clustered.graph
    abstract = AbstractGraph(clustered)
    if ideal is None:
        ideal = ideal_schedule(clustered)
    if analysis is None:
        analysis = analyze_criticality(clustered, ideal)

    na = clustered.num_clusters
    c_abs_with_degree = np.zeros((na, na + 1), dtype=np.int64)
    c_abs_with_degree[:, :na] = analysis.c_abs_edge
    c_abs_with_degree[:, na] = analysis.critical_degree

    assi = comm = start = end = None
    if assignment is not None:
        schedule = evaluate_assignment(clustered, system, assignment)
        assi = assignment.assi
        comm = schedule.comm
        start = schedule.start
        end = schedule.end

    return PaperMatrices(
        prob_edge=graph.prob_edge,
        task_size=graph.task_sizes,
        clus_edge=clustered.clus_edge,
        clus_pnode=clustered.clustering.clus_pnode(),
        abs_edge=abstract.abs_edge,
        c_abs_edge=c_abs_with_degree,
        mca=abstract.mca,
        sys_edge=system.sys_edge,
        shortest=system.shortest,
        deg=system.deg,
        route_prev=routing_table(system).prev,
        i_edge=ideal.i_edge,
        i_start=ideal.i_start,
        i_end=ideal.i_end,
        crit_edge=analysis.crit_edge,
        assi=assi,
        comm=comm,
        start=start,
        end=end,
    )
