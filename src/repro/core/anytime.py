"""Anytime checkpoints: let iterative mappers stream progress and be stopped.

The portfolio racer (:mod:`repro.portfolio`) runs several mappers on the
same instance at once and kills the losers early.  For that it needs two
things from an iterative algorithm:

* a stream of ``(iteration, best_metric, best_assignment)`` checkpoints
  emitted at the algorithm's natural progress boundaries (a temperature
  level, a tabu iteration, a GA generation, a refinement pass);
* a cheap, cross-process way to ask the algorithm to stop gracefully and
  return its best-so-far.

:class:`AnytimeReporter` is that contract.  Algorithms take an optional
``reporter`` argument and, when given one, call ``report(...)`` at each
boundary and bail out when ``should_stop()`` turns true.  With no
reporter (the default) they behave exactly as before — the hooks are
pure pass-throughs, so a never-stopped run is bit-identical to an
unhooked one.

:class:`FileReporter` is the concrete implementation used across the
``ProcessPoolExecutor`` boundary: checkpoints append to a JSONL file and
the stop signal is a sentinel file, both of which survive pickling and
work between unrelated processes.  A ``multiprocessing.Event`` would
not: pool workers are long-lived and receive tasks by pickle, which
events don't support.

``use_reporter`` / ``active_reporter`` carry a reporter through layers
that don't know about anytime reporting (the service's generic task
runner calls ``mapper.map(...)`` with a fixed signature); the arm worker
installs the reporter around the call and the adapter picks it up.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

from .assignment import Assignment

__all__ = [
    "AnytimeReporter",
    "FileReporter",
    "active_reporter",
    "use_reporter",
]


@runtime_checkable
class AnytimeReporter(Protocol):
    """What an iterative mapper needs to race: progress out, stop in."""

    def report(
        self, iteration: int, best_metric: float, best_assignment: Assignment
    ) -> None:
        """Record one checkpoint: best-so-far after ``iteration`` steps."""

    def should_stop(self) -> bool:
        """True when the algorithm should return its best-so-far now."""


class FileReporter:
    """Checkpoints as an append-only JSONL file, stop as a sentinel file.

    Both ends are plain paths, so the reporter pickles into pool workers
    and the controller process can follow the stream / raise the stop
    flag without any shared in-memory state.  Each line is::

        {"checkpoint": k, "iteration": it, "label": ..., "value": v,
         "assignment": [...]}

    ``checkpoint`` is the 1-based ordinal of the line — the racing
    fold's clock.  ``label`` names what ``value`` measures (e.g.
    ``"total_time"`` or ``"comm_volume"``), so the controller knows
    whether it can use the value directly or must re-score the
    serialized assignment under its own objective.
    """

    def __init__(self, checkpoint_path: str, stop_path: str, label: str) -> None:
        self.checkpoint_path = checkpoint_path
        self.stop_path = stop_path
        self.label = label
        self._count = 0

    def report(
        self, iteration: int, best_metric: float, best_assignment: Assignment
    ) -> None:
        self._count += 1
        line = json.dumps(
            {
                "checkpoint": self._count,
                "iteration": int(iteration),
                "label": self.label,
                "value": float(best_metric),
                "assignment": [int(c) for c in best_assignment.assi.tolist()],
            },
            sort_keys=True,
        )
        # One write per line: POSIX appends of this size are atomic
        # enough that the reader only ever sees whole lines plus at most
        # one torn tail, which it tolerates.
        with open(self.checkpoint_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def should_stop(self) -> bool:
        return os.path.exists(self.stop_path)

    @property
    def checkpoints_written(self) -> int:
        return self._count


_ACTIVE: list[AnytimeReporter] = []


def active_reporter() -> AnytimeReporter | None:
    """The reporter installed by the innermost :func:`use_reporter`, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_reporter(reporter: AnytimeReporter) -> Iterator[AnytimeReporter]:
    """Install ``reporter`` as the process-wide active reporter.

    Adapters whose ``map()`` signature cannot carry a reporter read it
    back with :func:`active_reporter`.  Scoped as a stack so a nested
    race (portfolio inside portfolio is rejected elsewhere, but defense
    in depth is cheap) restores the outer reporter on exit.
    """
    _ACTIVE.append(reporter)
    try:
        yield reporter
    finally:
        _ACTIVE.pop()
