"""Independent schedule validation.

:func:`verify_schedule` re-derives every constraint of the paper's
execution model from first principles and raises
:class:`ScheduleViolation` on the first breach.  It deliberately shares
no code with the evaluator it checks — the whole point is an independent
oracle for tests, for users consuming externally produced schedules, and
for debugging model changes.

Checked constraints:

1. durations: ``end[i] - start[i] == task_size[i]`` for every task;
2. release: entry tasks start at time >= 0;
3. precedence + communication: for every problem edge ``(u, v)``,
   ``start[v] >= end[u] + clus_edge[u][v] * dist(host(u), host(v))``;
4. tightness (optional): every task starts *exactly* when its last
   input arrives (the paper's as-soon-as-possible semantics) — disable
   for schedules from models that may insert idle time (e.g. the
   serialized simulator).
"""

from __future__ import annotations

import numpy as np

from ..topology.base import SystemGraph
from .assignment import Assignment
from .clustered import ClusteredGraph
from .evaluate import Schedule

__all__ = ["ScheduleViolation", "verify_schedule", "verify_times"]


class ScheduleViolation(AssertionError):
    """A schedule breaks the execution model's constraints."""


def verify_times(
    clustered: ClusteredGraph,
    system: SystemGraph,
    assignment: Assignment,
    start: np.ndarray,
    end: np.ndarray,
    *,
    require_asap: bool = True,
) -> None:
    """Validate raw start/end vectors against the paper's model."""
    graph = clustered.graph
    n = graph.num_tasks
    start = np.asarray(start)
    end = np.asarray(end)
    if start.shape != (n,) or end.shape != (n,):
        raise ScheduleViolation(
            f"start/end must have shape ({n},), got {start.shape}/{end.shape}"
        )
    if (start < 0).any():
        bad = int(np.argmax(start < 0))
        raise ScheduleViolation(f"task {bad} starts before time 0")
    durations = end - start
    if not np.array_equal(durations, graph.task_sizes):
        bad = int(np.argmax(durations != graph.task_sizes))
        raise ScheduleViolation(
            f"task {bad} runs for {int(durations[bad])} units, "
            f"size is {int(graph.task_sizes[bad])}"
        )

    labels = clustered.clustering.labels
    hosts = assignment.placement[labels]
    for e in graph.edges():
        hops = int(system.shortest[hosts[e.src], hosts[e.dst]])
        arrival = int(end[e.src]) + int(clustered.clus_edge[e.src, e.dst]) * hops
        if start[e.dst] < arrival:
            raise ScheduleViolation(
                f"edge ({e.src} -> {e.dst}): task {e.dst} starts at "
                f"{int(start[e.dst])} before its input arrives at {arrival}"
            )

    if require_asap:
        for t in range(n):
            preds = graph.predecessors(t)
            if preds.size == 0:
                if start[t] != 0:
                    raise ScheduleViolation(
                        f"entry task {t} idles until {int(start[t])} "
                        "(as-soon-as-possible semantics requires 0)"
                    )
                continue
            hops = system.shortest[hosts[preds], hosts[t]]
            ready = int((end[preds] + clustered.clus_edge[preds, t] * hops).max())
            if start[t] != ready:
                raise ScheduleViolation(
                    f"task {t} starts at {int(start[t])} but its inputs are "
                    f"complete at {ready} (as-soon-as-possible violated)"
                )


def verify_schedule(schedule: Schedule, *, require_asap: bool = True) -> None:
    """Validate a :class:`Schedule` object (see :func:`verify_times`).

    Additionally checks the stored ``comm`` matrix and ``total_time``
    against independent recomputation.
    """
    clustered = schedule.clustered
    system = schedule.system
    labels = clustered.clustering.labels
    hosts = schedule.assignment.placement[labels]
    expected_comm = clustered.clus_edge * system.shortest[np.ix_(hosts, hosts)]
    if not np.array_equal(schedule.comm, expected_comm):
        raise ScheduleViolation("stored comm matrix disagrees with the topology")
    if schedule.total_time != int(schedule.end.max()):
        raise ScheduleViolation(
            f"total_time {schedule.total_time} != max(end) {int(schedule.end.max())}"
        )
    verify_times(
        clustered,
        system,
        schedule.assignment,
        schedule.start,
        schedule.end,
        require_asap=require_asap,
    )
