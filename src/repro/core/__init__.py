"""Core of the reproduction: graphs, criticality, and the mapping strategy.

Everything in this package follows the paper's Sec. 2-4 exactly; see each
module's docstring for the section it implements and DESIGN.md for the
interpretation choices.
"""

from .abstract import AbstractGraph
from .anytime import AnytimeReporter, FileReporter, active_reporter, use_reporter
from .assignment import Assignment, communication_matrix
from .clustered import ClusteredGraph, Clustering
from .critical import CriticalityAnalysis, analyze_criticality
from .evaluate import Schedule, evaluate_assignment, total_time
from .ideal import IdealSchedule, ideal_schedule, lower_bound
from .incremental import (
    CardinalityDelta,
    CommVolumeDelta,
    DeltaEvaluator,
    IncrementalEvaluator,
)
from .listsched import ListSchedule, bottom_levels, list_schedule
from .initial import initial_assignment
from .mapper import CriticalEdgeMapper, MappingResult, map_graph
from .matrices import PaperMatrices, collect_matrices
from .multilevel import (
    MultilevelHierarchy,
    MultilevelResult,
    abstract_taskgraph,
    build_hierarchy,
    multilevel_map,
)
from .refine import (
    RefinementResult,
    critical_abstract_nodes,
    refine_pairwise,
    refine_random,
)
from .taskgraph import Edge, TaskGraph
from .validate import ScheduleViolation, verify_schedule, verify_times

__all__ = [
    "AbstractGraph",
    "AnytimeReporter",
    "Assignment",
    "FileReporter",
    "ClusteredGraph",
    "Clustering",
    "CardinalityDelta",
    "CommVolumeDelta",
    "CriticalEdgeMapper",
    "CriticalityAnalysis",
    "DeltaEvaluator",
    "Edge",
    "IdealSchedule",
    "IncrementalEvaluator",
    "ListSchedule",
    "MappingResult",
    "MultilevelHierarchy",
    "MultilevelResult",
    "PaperMatrices",
    "RefinementResult",
    "Schedule",
    "ScheduleViolation",
    "TaskGraph",
    "abstract_taskgraph",
    "active_reporter",
    "analyze_criticality",
    "bottom_levels",
    "build_hierarchy",
    "collect_matrices",
    "communication_matrix",
    "critical_abstract_nodes",
    "evaluate_assignment",
    "ideal_schedule",
    "initial_assignment",
    "list_schedule",
    "lower_bound",
    "map_graph",
    "multilevel_map",
    "refine_pairwise",
    "refine_random",
    "total_time",
    "use_reporter",
    "verify_schedule",
    "verify_times",
]
