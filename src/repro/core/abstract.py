"""The abstract graph: clusters as single nodes, collapsed edges.

Paper Sec. 2.1 (Fig. 4) and Sec. 3.3: every cluster becomes one *abstract
node*; all clustered problem edges between the same pair of clusters
collapse into one *abstract edge*.  Two matrices describe it:

* ``abs_edge[na][na]`` — 0/1 adjacency of abstract nodes (Fig. 20-a);
* ``mca[na]`` — *communication intensity*: for each abstract node, the sum
  of the weights of all clustered problem edges touching it (Fig. 20-c).
  ``mca`` drives phase 3 of the initial assignment.

The collapsed *weights* (total clustered weight per cluster pair) are also
kept because baselines (Bokhari, Lee) and diagnostics want them; the
paper's own mapper only needs adjacency plus the *critical* abstract
weights computed in :mod:`repro.core.critical`.
"""

from __future__ import annotations

import numpy as np

from .clustered import ClusteredGraph

__all__ = ["AbstractGraph"]


class AbstractGraph:
    """Clusters-as-nodes view of a :class:`~repro.core.clustered.ClusteredGraph`."""

    def __init__(self, clustered: ClusteredGraph) -> None:
        self._clustered = clustered
        na = clustered.num_clusters
        labels = clustered.clustering.labels

        # Aggregate task-level clustered weights up to cluster pairs.  The
        # direction of problem edges is irrelevant at this level (the paper's
        # abstract graph is undirected), so accumulate both orientations.
        # One scattered add over the graph's CSR edge arrays — no dense
        # task-pair matrix is ever touched.
        srcs, dsts, _ = clustered.graph.edge_arrays()
        cw = clustered.cross_out_weights
        m = cw > 0
        acc = np.zeros((na, na), dtype=np.int64)
        np.add.at(acc, (labels[srcs[m]], labels[dsts[m]]), cw[m])
        weights = acc + acc.T
        self._weights = weights
        self._abs_edge = (weights > 0).astype(np.int64)
        self._mca = weights.sum(axis=1).astype(np.int64)

    @property
    def clustered(self) -> ClusteredGraph:
        return self._clustered

    @property
    def num_nodes(self) -> int:
        """Number of abstract nodes, the paper's ``na``."""
        return self._clustered.num_clusters

    @property
    def abs_edge(self) -> np.ndarray:
        """0/1 abstract adjacency matrix (read-only view), Fig. 20-a."""
        view = self._abs_edge.view()
        view.flags.writeable = False
        return view

    @property
    def weights(self) -> np.ndarray:
        """Symmetric total clustered weight per cluster pair (read-only view)."""
        view = self._weights.view()
        view.flags.writeable = False
        return view

    @property
    def mca(self) -> np.ndarray:
        """Communication intensity per abstract node (read-only view), Fig. 20-c."""
        view = self._mca.view()
        view.flags.writeable = False
        return view

    def has_edge(self, a: int, b: int) -> bool:
        return bool(self._abs_edge[a, b])

    def neighbors(self, node: int) -> np.ndarray:
        """Abstract nodes adjacent to ``node``."""
        return np.flatnonzero(self._abs_edge[node])

    def num_edges(self) -> int:
        """Number of undirected abstract edges."""
        return int(np.triu(self._abs_edge, 1).sum())

    def __repr__(self) -> str:
        return f"AbstractGraph(nodes={self.num_nodes}, edges={self.num_edges()})"
