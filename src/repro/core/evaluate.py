"""Total-time evaluation of an assignment (paper Sec. 4.3.4).

Identical recurrence to the ideal schedule, but communication costs come
from the assignment-dependent ``comm`` matrix instead of ``clus_edge``:

    ``start[i] = max_j (end[j] + comm[j][i])``  over problem-graph preds j
    ``end[i]   = start[i] + task_size[i]``
    ``total_time = max_i end[i]``

The model is the paper's: store-and-forward shortest-path communication,
no link contention, and no serialization of independent tasks sharing a
processor (see DESIGN.md Sec. 2; the discrete-event simulator offers
higher-fidelity variants).

The returned :class:`Schedule` carries everything downstream consumers
need (Gantt rendering, per-task slack, comparison against the ideal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import SystemGraph
from ..utils import MappingError
from .assignment import Assignment, communication_matrix
from .clustered import ClusteredGraph
from .taskgraph import sweep_finish_times

__all__ = ["Schedule", "evaluate_assignment", "total_time"]


@dataclass(frozen=True)
class Schedule:
    """A complete schedule of a clustered graph under one assignment.

    Attributes
    ----------
    clustered, system, assignment:
        The inputs the schedule was computed from.
    comm:
        Task-pair communication matrix (the paper's ``comm[np][np]``).
    start, end:
        Start / end time per task (Fig. 23-d).
    total_time:
        Makespan (= ``max(end)``), the paper's single quality measure.
    """

    clustered: ClusteredGraph
    system: SystemGraph
    assignment: Assignment
    comm: np.ndarray
    start: np.ndarray
    end: np.ndarray
    total_time: int

    def latest_tasks(self) -> np.ndarray:
        """Tasks finishing at the makespan."""
        return np.flatnonzero(self.end == self.total_time)

    def processor_of(self, task: int) -> int:
        """Host processor of ``task`` under this schedule's assignment."""
        cluster = self.clustered.cluster_of(task)
        return self.assignment.system_of(cluster)

    def tasks_on(self, system_node: int) -> np.ndarray:
        """Tasks hosted on ``system_node``, ordered by start time."""
        cluster = self.assignment.cluster_on(system_node)
        members = self.clustered.clustering.members(cluster)
        return members[np.argsort(self.start[members], kind="stable")]

    def processor_busy_time(self) -> np.ndarray:
        """Sum of task sizes per processor (pure work, ignoring gaps)."""
        sizes = self.clustered.task_sizes
        labels = self.clustered.clustering.labels
        per_cluster = np.bincount(
            labels, weights=sizes, minlength=self.clustered.num_clusters
        )
        out = np.zeros(self.system.num_nodes, dtype=np.int64)
        out[self.assignment.placement] = per_cluster.astype(np.int64)
        return out

    def communication_volume(self) -> int:
        """Total hop-weighted communication (sum of ``comm``)."""
        return int(self.comm.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(total_time={self.total_time}, "
            f"system={self.system.name!r})"
        )


def evaluate_assignment(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> Schedule:
    """Run the paper's algorithms I-III of Sec. 4.3.4 and build a Schedule."""
    graph = clustered.graph
    comm = communication_matrix(clustered, system, assignment)
    n = graph.num_tasks
    sizes = graph.task_sizes

    start = np.zeros(n, dtype=np.int64)
    end = np.zeros(n, dtype=np.int64)
    for t in graph.topological_order.tolist():
        preds = graph.predecessors(t)
        s = 0
        if preds.size:
            s = int((end[preds] + comm[preds, t]).max())
        start[t] = s
        end[t] = s + sizes[t]

    comm.flags.writeable = False
    start.flags.writeable = False
    end.flags.writeable = False
    return Schedule(
        clustered=clustered,
        system=system,
        assignment=assignment,
        comm=comm,
        start=start,
        end=end,
        total_time=int(end.max()),
    )


def total_time(
    clustered: ClusteredGraph, system: SystemGraph, assignment: Assignment
) -> int:
    """Makespan only — the hot path of the refinement loop.

    Same recurrence as :func:`evaluate_assignment` (bit-identical result)
    but vectorized: tasks are processed level by level over the graph's
    cached :class:`~repro.core.taskgraph.SchedulePlan`, each level one
    gather plus a segmented max, and the O(np^2) communication matrix is
    never built — per-edge costs come straight from the clustered CSR
    weights and the topology distance matrix.
    """
    if clustered.num_clusters != system.num_nodes:
        raise MappingError(
            f"{clustered.num_clusters} clusters cannot map onto "
            f"{system.num_nodes} system nodes (na must equal ns)"
        )
    if assignment.size != system.num_nodes:
        raise MappingError(
            f"assignment covers {assignment.size} nodes, system has "
            f"{system.num_nodes}"
        )
    graph = clustered.graph
    plan = graph.schedule_plan()
    hosts = assignment.placement[clustered.clustering.labels]
    dist = system.shortest
    cost = clustered.plan_weights() * dist[hosts[plan.src], hosts[plan.dst]]
    end = sweep_finish_times(plan, graph.task_sizes, cost)
    return int(end.max())
