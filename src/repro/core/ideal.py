"""The ideal graph: schedule on the fully connected closure, lower bound.

Paper Sec. 2.1 (Fig. 6) and Sec. 4.1.  Mapping the clustered problem graph
onto the *system graph closure* (a complete graph, Fig. 5-b) makes every
inter-cluster communication cost exactly its clustered weight — there is a
unique, assignment-independent schedule:

    ``i_start[i] = max_j (i_end[j] + clus_edge[j][i])``  over predecessors j
    ``i_end[i]   = i_start[i] + task_size[i]``

Predecessors are found in ``prob_edge`` (intra-cluster precedence
survives; ``clus_edge`` contributes 0 for those).  The makespan of this
schedule is the paper's **lower bound** (Theorem 3): no assignment onto
the real topology can finish earlier, and any assignment matching it is
optimal — that is the refinement termination condition.

The *ideal edge matrix* ``i_edge[j][i] = i_start[i] - i_end[j]`` (for
problem edges) records per-edge slack and feeds the critical-edge
analysis: an edge with ``i_edge == clus_edge`` has no slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .clustered import ClusteredGraph
from .taskgraph import sweep_finish_times

__all__ = ["IdealSchedule", "ideal_schedule", "lower_bound"]


@dataclass(frozen=True)
class IdealSchedule:
    """The assignment-independent schedule on the closure (Fig. 6).

    Attributes
    ----------
    clustered:
        The clustered graph the schedule was derived from.
    i_start, i_end:
        Start / end time per task (the paper's ``i_start`` / ``i_end``,
        Fig. 22-b).
    i_edge:
        Ideal edge matrix: for every problem edge ``j -> i``,
        ``i_edge[j, i] = i_start[i] - i_end[j]`` (Fig. 22-a); zero where
        there is no problem edge.
    total_time:
        Makespan = ``max(i_end)``; the **lower bound** of Theorem 3.
    """

    clustered: ClusteredGraph
    i_start: np.ndarray
    i_end: np.ndarray
    i_edge: np.ndarray
    total_time: int

    def latest_tasks(self) -> np.ndarray:
        """Tasks terminating last (the paper's *latest tasks*, Sec. 2.1)."""
        return np.flatnonzero(self.i_end == self.total_time)

    def slack(self, src: int, dst: int) -> int:
        """Slack of problem edge ``src -> dst``: ``i_edge - clus_edge``.

        A slack of zero is the *tightness* precondition of Theorems 1–2.
        """
        return int(
            self.i_edge[src, dst] - self.clustered.clus_edge[src, dst]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IdealSchedule(tasks={self.i_start.size}, "
            f"total_time={self.total_time})"
        )


def ideal_schedule(clustered: ClusteredGraph) -> IdealSchedule:
    """Derive the ideal schedule (paper Sec. 4.1, algorithms I–III).

    The paper's algorithm I visits tasks whose predecessors are all done;
    that is a topological sweep, which :class:`TaskGraph` precomputes.
    """
    graph = clustered.graph
    n = graph.num_tasks
    clus = clustered.clus_edge
    sizes = graph.task_sizes

    i_start = np.zeros(n, dtype=np.int64)
    i_end = np.zeros(n, dtype=np.int64)
    for t in graph.topological_order.tolist():
        preds = graph.predecessors(t)
        start = 0
        if preds.size:
            start = int((i_end[preds] + clus[preds, t]).max())
        i_start[t] = start
        i_end[t] = start + sizes[t]

    # Algorithm III: i_edge[j][i] = i_start[i] - i_end[j] on problem edges.
    mask = graph.prob_edge > 0
    i_edge = np.zeros((n, n), dtype=np.int64)
    diff = i_start[None, :] - i_end[:, None]
    i_edge[mask] = diff[mask]

    i_start.flags.writeable = False
    i_end.flags.writeable = False
    i_edge.flags.writeable = False
    return IdealSchedule(
        clustered=clustered,
        i_start=i_start,
        i_end=i_end,
        i_edge=i_edge,
        total_time=int(i_end.max()),
    )


def lower_bound(clustered: ClusteredGraph) -> int:
    """The paper's lower bound: the ideal-graph makespan (algorithm II).

    Vectorized fast path: the same recurrence as :func:`ideal_schedule`
    swept level by level over the cached schedule plan, without building
    the O(np^2) ``i_edge`` matrix — usable on 100k-task instances where
    the full :class:`IdealSchedule` is not.
    """
    graph = clustered.graph
    plan = graph.schedule_plan()
    end = sweep_finish_times(plan, graph.task_sizes, clustered.plan_weights())
    return int(end.max())
