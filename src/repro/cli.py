"""Command-line interface: regenerate every table and figure of the paper.

::

    mimdmap table1 [--seed N] [--rows K]     # Table 1 + Fig. 25 (hypercubes)
    mimdmap table2 [--seed N] [--rows K]     # Table 2 + Fig. 26 (meshes)
    mimdmap table3 [--seed N] [--rows K]     # Table 3 + Fig. 27 (random)
    mimdmap example                          # worked example, Figs. 2-6/18-24
    mimdmap counterexamples                  # Sec. 2.2, Figs. 7-17 (exhaustive)
    mimdmap ablations [--seed N]             # A1-A3, A5 summaries
    mimdmap matrices                         # Sec. 3 matrix dump for the example
    mimdmap sensitivity [--seed N]           # workload-knob sensitivity sweeps
    mimdmap map --tasks N --topology F --size K [--mapper M] [--metrics a,b]
    mimdmap compare [--mappers a,b,...]      # all registered mappers, one instance
    mimdmap sweep SPEC.json [--workers N] [--out results.jsonl]  # scenario grid
    mimdmap list {mappers,clusterers,workloads,topologies,metrics,rules} [--json]
    mimdmap recommend --workload F --topology F --store F.jsonl  # learned default
    mimdmap serve [--port P] [--workers N] [--store F.jsonl]  # HTTP mapping service
    mimdmap serve --shard-index I --shard-count N [--queue-limit Q]  # fleet shard
    mimdmap gateway --shards host:port,host:port [--port P]  # fingerprint router
    mimdmap --version

Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed distribution version, falling back to the source tree.

    ``pip install -e .`` exposes the ``mimd-mapping-repro`` metadata;
    plain ``PYTHONPATH=src`` runs fall back to ``repro.__version__``.
    """
    from importlib import metadata

    try:
        return metadata.version("mimd-mapping-repro")
    except metadata.PackageNotFoundError:
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mimdmap",
        description=(
            "Reproduction of 'A Mapping Strategy for MIMD Computers' "
            "(Yang, Bic & Nicolau, ICPP 1991)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for num in (1, 2, 3):
        p = sub.add_parser(f"table{num}", help=f"regenerate Table {num} and its figure")
        p.add_argument("--seed", type=int, default=1991, help="experiment RNG seed")
        p.add_argument("--rows", type=int, default=None, help="number of experiments")
        p.add_argument(
            "--no-figure", action="store_true", help="omit the histogram figure"
        )

    sub.add_parser("example", help="run the worked example (Figs. 2-6, 18-24)")
    sub.add_parser(
        "counterexamples",
        help="prove the Sec. 2.2 counterexamples by exhaustive search",
    )
    p = sub.add_parser("ablations", help="run ablations A1-A3 and A5")
    p.add_argument("--seed", type=int, default=7)
    sub.add_parser("matrices", help="print the Sec. 3 matrices of the worked example")

    p = sub.add_parser("sensitivity", help="workload-knob sensitivity sweeps")
    p.add_argument("--seed", type=int, default=5)

    from .api import available_clusterers, available_mappers

    def add_instance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tasks", type=int, default=80, help="problem graph size np")
        p.add_argument(
            "--topology",
            default="hypercube",
            help="topology family (hypercube, mesh, torus, ring, chain, star, "
            "complete, random)",
        )
        p.add_argument("--size", type=int, default=8, help="system graph size ns")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--clusterer",
            default="random",
            choices=available_clusterers(),
            help="clustering algorithm for the np -> na step",
        )
        p.add_argument(
            "--input",
            default=None,
            metavar="FILE",
            help="load the instance from a JSON file (see repro.io.save_instance) "
            "instead of generating a random one; --tasks/--topology/--size are "
            "then ignored",
        )

    p = sub.add_parser("map", help="map one random workload and print the report")
    add_instance_args(p)
    p.add_argument(
        "--mapper",
        default="critical",
        choices=available_mappers(),
        help="mapping algorithm (default: the paper's critical-edge strategy)",
    )
    p.add_argument("--gantt", action="store_true", help="print the schedule chart")
    p.add_argument(
        "--metrics",
        default=None,
        metavar="NAMES",
        help="comma-separated registry metrics to score the mapping with "
        "(see 'mimdmap list metrics'), e.g. 'hop_bytes,sim_makespan'",
    )
    p.add_argument(
        "--sim-gantt",
        action="store_true",
        help="simulate the mapping (serialized processors, link contention) "
        "and print the simulator's chart",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the simulator's event trace as JSONL "
        "(see repro.sim.read_trace_jsonl)",
    )

    p = sub.add_parser(
        "compare", help="score every registered mapper on one random instance"
    )
    add_instance_args(p)
    p.add_argument(
        "--mappers",
        default=None,
        help="comma-separated mapper names (default: all registered)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for running the mappers in parallel",
    )

    p = sub.add_parser(
        "sweep",
        help="run a scenario grid from a JSON spec, streaming JSONL results",
    )
    p.add_argument("spec", help="sweep spec file (see README 'Sweeps')")
    p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="JSONL output path; an existing file resumes the sweep "
        "(completed runs are reused, only missing ones execute)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; results are identical at any worker count",
    )
    p.add_argument(
        "--quiet", action="store_true", help="omit per-run progress lines"
    )
    p.add_argument(
        "--no-table", action="store_true", help="omit the aggregate tables"
    )

    p = sub.add_parser(
        "lint",
        help="AST determinism & invariant linter (DET/INV rules, "
        "see README 'Static analysis')",
    )
    p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: ./src if present, else .)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report on stdout instead of text",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline of grandfathered findings "
        "(default: ./lint-baseline.json when present)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--rules",
        default=None,
        metavar="NAMES",
        help="comma-separated rule subset (see --list-rules)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (name, code, severity, summary)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for checking files in parallel "
        "(findings are identical at any worker count)",
    )

    p = sub.add_parser("list", help="list one registry's component names")
    p.add_argument(
        "axis",
        choices=[
            "mappers",
            "clusterers",
            "workloads",
            "topologies",
            "metrics",
            "rules",
        ],
        help="which registry to list",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (same shape as GET /registries/<kind>)",
    )

    p = sub.add_parser(
        "recommend",
        help="mine a result store for the learned-default mapper of a "
        "(workload family, topology family) key",
    )
    p.add_argument(
        "--workload",
        required=True,
        metavar="FAMILY",
        help="workload family key, e.g. 'fft' or 'layered_random'",
    )
    p.add_argument(
        "--topology",
        required=True,
        metavar="FAMILY",
        help="topology family key, e.g. 'hypercube' (specs like "
        "'hypercube:6' are reduced to their family)",
    )
    p.add_argument(
        "--store",
        required=True,
        metavar="FILE",
        help="the result store to mine (read-only: a live service can "
        "keep writing to it)",
    )
    p.add_argument(
        "--store-backend",
        default="auto",
        choices=["auto", "jsonl", "sqlite"],
        help="store backend (auto picks by suffix, like 'serve')",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable payload (same shape as GET /recommend)",
    )

    p = sub.add_parser(
        "serve",
        help="run the HTTP mapping service (POST /jobs, GET /jobs/<id>, "
        "GET /registries/<kind>)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8421,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="persistent worker-pool size (default: one per CPU)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help="durable result store; an existing file is recovered so "
        "previously solved jobs are served from cache across restarts",
    )
    p.add_argument(
        "--store-backend",
        default="auto",
        choices=["auto", "jsonl", "sqlite"],
        help="store persistence backend (auto picks by suffix: .db/.sqlite/"
        ".sqlite3 mean SQLite WAL, anything else JSONL)",
    )
    p.add_argument(
        "--store-sync",
        default="always",
        choices=["always", "never"],
        help="store durability: 'always' fsyncs every completed job before "
        "acknowledging it (default), 'never' only flushes to the OS",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="in-memory LRU capacity (evictions fall back to the store)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="admission bound: beyond N unfinished jobs new submissions get "
        "429 + Retry-After instead of queueing (default: unbounded; 0 "
        "refuses all new work but still serves cached results)",
    )
    p.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="back-off hint sent with 429 responses",
    )
    p.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help="serve as shard I of a --shard-count fleet: only fingerprints "
        "in this shard's keyspace slice are accepted (421 otherwise)",
    )
    p.add_argument(
        "--shard-count",
        type=int,
        default=None,
        metavar="N",
        help="total number of shards in the fleet (requires --shard-index)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="on SIGTERM, wait up to this long for in-flight jobs to finish "
        "before closing the store and exiting",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )

    p = sub.add_parser(
        "gateway",
        help="run the fingerprint-routing gateway over a fleet of "
        "'mimdmap serve' shards (POST /jobs routed by keyspace slice, "
        "GET /health aggregated)",
    )
    p.add_argument(
        "--shards",
        required=True,
        metavar="ADDRS",
        help="comma-separated shard addresses in fleet order, e.g. "
        "127.0.0.1:8431,127.0.0.1:8432 — order defines the keyspace slices, "
        "so every fleet member must use the same list",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8430,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts against an unresponsive shard before a 502",
    )
    p.add_argument(
        "--retry-delay",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="pause between retry attempts",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command: str = args.command

    if command in ("table1", "table2", "table3"):
        _run_table(int(command[-1]), args)
    elif command == "example":
        _run_example()
    elif command == "counterexamples":
        _run_counterexamples()
    elif command == "ablations":
        _run_ablations(args.seed)
    elif command == "matrices":
        _run_matrices()
    elif command == "sensitivity":
        _run_sensitivity(args.seed)
    elif command == "map":
        _run_map(args)
    elif command == "compare":
        _run_compare(args)
    elif command == "sweep":
        _run_sweep(args)
    elif command == "lint":
        _run_lint(args)
    elif command == "list":
        _run_list(args)
    elif command == "recommend":
        _run_recommend(args)
    elif command == "serve":
        _run_serve(args)
    elif command == "gateway":
        _run_gateway(args)
    else:  # pragma: no cover - argparse guards this
        raise SystemExit(f"unknown command {command!r}")
    return 0


def _run_table(number: int, args: argparse.Namespace) -> None:
    from .experiments import (
        format_figure,
        format_table,
        run_table1,
        run_table2,
        run_table3,
    )

    runner = {1: run_table1, 2: run_table2, 3: run_table3}[number]
    kwargs = {} if args.rows is None else {"rows": args.rows}
    rows = runner(rng=args.seed, **kwargs)
    print(format_table(rows, number))
    if not args.no_figure:
        print()
        print(format_figure(rows, 24 + number))


def _run_example() -> None:
    from .experiments import format_worked_example, run_worked_example

    print(format_worked_example(run_worked_example()))


def _run_counterexamples() -> None:
    from .experiments import (
        format_counterexample,
        run_bokhari_counterexample,
        run_lee_counterexample,
    )

    print(format_counterexample(run_bokhari_counterexample()))
    print()
    print(format_counterexample(run_lee_counterexample()))


def _run_ablations(seed: int) -> None:
    from .analysis import render_table
    from .experiments import (
        run_baseline_comparison,
        run_exchange_ablation,
        run_guidance_ablation,
        run_refinement_ablation,
    )

    studies = [
        ("A1 — initial assignment vs + refinement", run_refinement_ablation),
        ("A2 — critical guidance on/off", run_guidance_ablation),
        ("A3 — random replacement vs pairwise exchange", run_exchange_ablation),
        ("A5 — all mappers, total time (% of lower bound)", run_baseline_comparison),
    ]
    for title, runner in studies:
        rows = runner(rng=seed)
        variants = list(rows[0].values)
        body = [
            [row.instance]
            + [f"{100 * row.values[v] / row.lower_bound:.0f}%" for v in variants]
            for row in rows
        ]
        print(render_table(["instance"] + variants, body, title=title))
        print()


def _run_matrices() -> None:
    from .core import Assignment, collect_matrices
    from .io import format_paper_matrices
    from .workloads import (
        running_example_assignment_vector,
        running_example_clustered,
        running_example_system,
    )

    clustered = running_example_clustered()
    system = running_example_system()
    assignment = Assignment(running_example_assignment_vector())
    print(format_paper_matrices(collect_matrices(clustered, system, assignment)))


def _run_sensitivity(seed: int) -> None:
    from .experiments import (
        format_sweep,
        sweep_comm_ratio,
        sweep_edge_density,
        sweep_problem_size,
    )

    print(format_sweep(sweep_comm_ratio(rng=seed), "Communication weight ceiling"))
    print()
    print(format_sweep(sweep_edge_density(rng=seed), "DAG density (extra edges/task)"))
    print()
    print(format_sweep(sweep_problem_size(rng=seed), "Problem size np"))


def _cli_error(command: str, message: str) -> "SystemExit":
    """One-line diagnostic on stderr and exit code 2 (usage/input error)."""
    print(f"mimdmap {command}: error: {message}", file=sys.stderr)
    return SystemExit(2)


def _build_instance(args: argparse.Namespace):
    """One (clustered graph, system) instance from the CLI knobs or a file.

    Bad input — an unreadable/invalid ``--input`` file or out-of-range
    ``--tasks``/``--size`` — exits with code 2 and a one-line message
    instead of a traceback.
    """
    from .api import get_clusterer
    from .core import ClusteredGraph
    from .topology import by_name
    from .utils import GraphError, MappingError
    from .workloads import layered_random_dag

    command: str = args.command
    try:
        if args.input is not None:
            graph, system, clustering, _ = _load_input(command, args.input)
        else:
            if args.tasks < 1:
                raise _cli_error(command, f"--tasks must be >= 1, got {args.tasks}")
            if args.size < 1:
                raise _cli_error(
                    command, f"--size (processor count) must be >= 1, got {args.size}"
                )
            system = by_name(args.topology, args.size, rng=args.seed)
            graph = layered_random_dag(num_tasks=args.tasks, rng=args.seed)
            clustering = None
        if clustering is None:
            clustering = get_clusterer(
                args.clusterer, num_clusters=system.num_nodes
            ).cluster(graph, rng=args.seed)
        return ClusteredGraph(graph, clustering), system
    except (GraphError, MappingError) as exc:
        raise _cli_error(command, str(exc)) from None


def _load_input(command: str, path: str):
    """Load an instance file, converting every failure to a clean exit 2."""
    import json

    from .io import load_instance

    try:
        return load_instance(path)
    except OSError as exc:
        raise _cli_error(
            command, f"cannot read input file {path!r}: {exc.strerror or exc}"
        ) from None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise _cli_error(
            command, f"input file {path!r} is not a valid instance: {exc}"
        ) from None


def _run_map(args: argparse.Namespace) -> None:
    from .analysis import compute_metrics, format_metrics, render_gantt
    from .api import solve_instance
    from .core import evaluate_assignment
    from .utils import MappingError

    clustered, system = _build_instance(args)
    outcome = solve_instance(clustered, system, mapper=args.mapper, rng=args.seed)
    schedule = evaluate_assignment(clustered, system, outcome.assignment)

    extra = None
    if args.metrics is not None:
        from .metrics import evaluate_metrics

        specs = [name.strip() for name in args.metrics.split(",") if name.strip()]
        if not specs:
            raise _cli_error(
                "map", "--metrics needs at least one metric name "
                "(see 'mimdmap list metrics')"
            )
        try:
            extra = evaluate_metrics(clustered, system, outcome.assignment, specs)
        except MappingError as exc:
            raise _cli_error("map", str(exc)) from None

    print(f"workload   : {clustered.graph}")
    print(f"machine    : {system}")
    print(f"clusterer  : {args.clusterer}")
    print(f"mapper     : {outcome.mapper}")
    print(f"lower bound: {outcome.lower_bound}")
    print(
        f"mapped     : {outcome.total_time} "
        f"({outcome.percent_of_lower_bound():.1f}% of the bound, "
        f"optimal: {outcome.is_provably_optimal})"
    )
    print(f"assignment : {outcome.assignment.assi.tolist()}")
    print()
    print(format_metrics(compute_metrics(schedule), extra=extra))
    if args.gantt:
        print()
        print(render_gantt(schedule, max_rows=60))
    if args.sim_gantt or args.trace_out is not None:
        from .analysis import render_sim_gantt
        from .sim import SimConfig, simulate, write_trace_jsonl

        config = SimConfig(serialize_processors=True, link_contention=True)
        result = simulate(clustered, system, outcome.assignment, config=config)
        if args.trace_out is not None:
            try:
                records = write_trace_jsonl(result, args.trace_out)
            except OSError as exc:
                raise _cli_error(
                    "map",
                    f"cannot write trace file {args.trace_out!r}: "
                    f"{exc.strerror or exc}",
                ) from None
            print()
            print(f"wrote {records} trace records to {args.trace_out}")
        if args.sim_gantt:
            print()
            print(
                render_sim_gantt(
                    result, num_processors=system.num_nodes, max_rows=60
                )
            )


def _run_compare(args: argparse.Namespace) -> None:
    from .api import available_mappers, compare, format_comparison

    if args.workers < 1:
        raise _cli_error("compare", f"--workers must be >= 1, got {args.workers}")
    mappers = None
    if args.mappers is not None:
        names = [name.strip() for name in args.mappers.split(",") if name.strip()]
        seen: set[str] = set()
        mappers = [m for m in names if not (m in seen or seen.add(m))]
        if not mappers:
            raise _cli_error(
                "compare",
                "--mappers needs at least one mapper name "
                f"(choose from {', '.join(available_mappers())})",
            )
        unknown = sorted(set(mappers) - set(available_mappers()))
        if unknown:
            raise _cli_error(
                "compare",
                f"unknown mapper(s) {', '.join(unknown)} "
                f"(choose from {', '.join(available_mappers())})",
            )
    clustered, system = _build_instance(args)
    outcomes = compare(
        clustered,
        system,
        mappers=mappers,
        seed=args.seed,
        max_workers=args.workers,
    )
    print(f"workload   : {clustered.graph}")
    print(f"machine    : {system}")
    print(f"clusterer  : {args.clusterer}")
    print()
    print(format_comparison(outcomes))


def _run_sweep(args: argparse.Namespace) -> None:
    import json

    from .api import format_sweep, load_spec, run_scenarios
    from .api.scenario import ScenarioError
    from .utils import GraphError, MappingError

    if args.workers < 1:
        raise _cli_error("sweep", f"--workers must be >= 1, got {args.workers}")
    try:
        scenarios = load_spec(args.spec)
    except OSError as exc:
        raise _cli_error(
            "sweep", f"cannot read spec file {args.spec!r}: {exc.strerror or exc}"
        ) from None
    except json.JSONDecodeError as exc:
        raise _cli_error(
            "sweep", f"spec file {args.spec!r} is not valid JSON: {exc}"
        ) from None
    except ScenarioError as exc:
        raise _cli_error("sweep", str(exc)) from None

    total = sum(s.replicas for s in scenarios)
    print(f"sweep: {len(scenarios)} scenarios, {total} runs", flush=True)

    done = 0

    def progress(record: dict) -> None:
        nonlocal done
        done += 1
        if args.quiet:
            return
        o = record["outcome"]
        pct = 100.0 * o["total_time"] / o["lower_bound"]
        print(
            f"[{done}/{total}] {record['run']['label']} "
            f"(r{record['run']['replica']}): total={o['total_time']} "
            f"bound={o['lower_bound']} ({pct:.1f}%)",
            flush=True,
        )

    try:
        result = run_scenarios(
            scenarios, out=args.out, max_workers=args.workers, on_record=progress
        )
    except (GraphError, MappingError) as exc:
        raise _cli_error("sweep", str(exc)) from None
    except OSError as exc:
        raise _cli_error(
            "sweep",
            f"cannot write output file {args.out!r}: {exc.strerror or exc}",
        ) from None
    if args.out:
        print(
            f"wrote {len(result.records)} records to {args.out} "
            f"({result.executed} executed, {result.reused} reused)"
        )
    if not args.no_table:
        print()
        print(format_sweep(result.records))


def _run_lint(args: argparse.Namespace) -> None:
    """Run the determinism/invariant linter; exit 1 on new findings."""
    import os

    from .lint import (
        RULES,
        BaselineError,
        apply_baseline,
        format_json,
        format_text,
        load_baseline,
        rule_catalog,
        run_lint,
        save_baseline,
    )

    if args.list_rules:
        for rule in rule_catalog():
            print(
                f"{rule['code']:<8} {rule['name']:<24} "
                f"{rule['severity']:<8} {rule['summary']}"
            )
        return

    if args.workers < 1:
        raise _cli_error("lint", f"--workers must be >= 1, got {args.workers}")
    rule_names = None
    if args.rules is not None:
        rule_names = [name.strip() for name in args.rules.split(",") if name.strip()]
        if not rule_names:
            raise _cli_error(
                "lint", "--rules needs at least one rule name (see --list-rules)"
            )
        for name in rule_names:
            if name not in RULES:
                raise _cli_error("lint", f"unknown rule {name!r}; {RULES.suggest(name)}")

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    try:
        result = run_lint(paths, rule_names=rule_names, max_workers=args.workers)
    except FileNotFoundError as exc:
        raise _cli_error("lint", str(exc)) from None
    except OSError as exc:
        raise _cli_error("lint", f"cannot read {exc.filename!r}: {exc.strerror or exc}") from None

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = (
            "lint-baseline.json" if os.path.isfile("lint-baseline.json") else None
        )

    if args.update_baseline:
        if args.no_baseline:
            raise _cli_error(
                "lint", "--update-baseline and --no-baseline are contradictory"
            )
        target = args.baseline or "lint-baseline.json"
        try:
            count = save_baseline(target, result.findings)
        except OSError as exc:
            raise _cli_error(
                "lint",
                f"cannot write baseline {target!r}: {exc.strerror or exc}",
            ) from None
        print(f"wrote {count} grandfathered finding(s) to {target}")
        return

    entries: list = []
    if baseline_path is not None and not args.no_baseline:
        try:
            entries = load_baseline(baseline_path)
        except OSError as exc:
            raise _cli_error(
                "lint",
                f"cannot read baseline {baseline_path!r}: {exc.strerror or exc}",
            ) from None
        except BaselineError as exc:
            raise _cli_error("lint", str(exc)) from None
    diff = apply_baseline(result.findings, entries)

    if args.json:
        print(format_json(result, diff))
    else:
        print(format_text(result, diff))
    if diff.new:
        raise SystemExit(1)


def _run_list(args: argparse.Namespace) -> None:
    import json

    from .api import registry_listing

    listing = registry_listing(args.axis)
    if args.json:
        print(json.dumps(listing, sort_keys=True))
    else:
        for name in listing["names"]:
            print(name)


def _run_recommend(args: argparse.Namespace) -> None:
    import json
    from pathlib import Path

    from .portfolio.recommend import mine_records
    from .service.backends import read_records
    from .utils import MappingError

    if not Path(args.store).exists():
        raise _cli_error("recommend", f"store {args.store!r} does not exist")
    try:
        records = read_records(args.store, backend=args.store_backend)
    except MappingError as exc:
        raise _cli_error("recommend", str(exc)) from None
    payload = mine_records(records, args.workload, args.topology)
    if payload is None:
        raise _cli_error(
            "recommend",
            f"no recorded history for workload={args.workload!r} "
            f"topology={args.topology!r} in {args.store}",
        )
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return
    best = payload["recommendation"]
    print(
        f"{payload['workload']} x {payload['topology']} "
        f"({payload['samples']} recorded solve(s)):"
    )
    for rank, entry in enumerate([best] + list(payload["alternatives"]), 1):
        params = (
            json.dumps(entry["params"], sort_keys=True) if entry["params"] else "{}"
        )
        print(
            f"  {rank}. {entry['mapper']} params={params} "
            f"mean%bound={entry['mean_percent_of_bound']:.2f} "
            f"mean_wall={entry['mean_wall_time']:.4f}s "
            f"samples={entry['samples']}"
        )


class _DrainRequested(Exception):
    """SIGTERM arrived: stop accepting, finish in-flight work, exit 0."""


def _install_sigterm_drain() -> None:
    """Route SIGTERM through :class:`_DrainRequested` (POSIX main thread).

    ``serve_forever`` runs on the main thread, so raising from the
    handler unwinds the accept loop cleanly and lands in the drain
    sequence below — the shard's graceful-shutdown contract.
    """
    import signal

    def handler(signum: int, frame: object) -> None:
        raise _DrainRequested

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:  # pragma: no cover - non-main thread (embedded use)
        pass


def _run_serve(args: argparse.Namespace) -> None:
    from .service import MappingService, StoreLockedError, make_server
    from .service.shard import KeyspaceSlice
    from .utils import MappingError

    if args.workers is not None and args.workers < 1:
        raise _cli_error("serve", f"--workers must be >= 1, got {args.workers}")
    if args.cache_size < 1:
        raise _cli_error("serve", f"--cache-size must be >= 1, got {args.cache_size}")
    if not (0 <= args.port <= 65535):
        raise _cli_error("serve", f"--port must be in [0, 65535], got {args.port}")
    if args.queue_limit is not None and args.queue_limit < 0:
        raise _cli_error(
            "serve", f"--queue-limit must be >= 0, got {args.queue_limit}"
        )
    if (args.shard_index is None) != (args.shard_count is None):
        raise _cli_error(
            "serve", "--shard-index and --shard-count must be given together"
        )
    keyspace = None
    if args.shard_index is not None:
        try:
            keyspace = KeyspaceSlice.for_shard(args.shard_index, args.shard_count)
        except MappingError as exc:
            raise _cli_error("serve", str(exc)) from None
    try:
        service = MappingService(
            max_workers=args.workers,
            store_path=args.store,
            store_backend=args.store_backend,
            store_sync=args.store_sync,
            cache_size=args.cache_size,
            queue_limit=args.queue_limit,
            retry_after=args.retry_after,
            keyspace=keyspace,
        )
    except StoreLockedError as exc:
        raise _cli_error("serve", str(exc)) from None
    except MappingError as exc:
        raise _cli_error("serve", str(exc)) from None
    try:
        server = make_server(
            service, host=args.host, port=args.port, quiet=not args.verbose
        )
    except OSError as exc:
        service.close()
        raise _cli_error(
            "serve",
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}",
        ) from None
    host, port = server.server_address[:2]
    if service.cache.store is not None:
        print(
            f"store: {service.cache.store.path} "
            f"[{service.cache.store.backend_name}] "
            f"({service.cache.store.recovered} result(s) recovered)",
            flush=True,
        )
    if keyspace is not None:
        print(
            f"shard {args.shard_index}/{args.shard_count}: keyspace "
            f"{keyspace.describe()}",
            flush=True,
        )
    _install_sigterm_drain()
    draining = False
    try:
        # The smoke tooling greps this exact line for the bound
        # (ephemeral) port.  Printed inside the try: a SIGTERM landing
        # between the announcement and the accept loop must still drain.
        print(f"serving on http://{host}:{port}", flush=True)
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    except _DrainRequested:
        draining = True
        print("draining: no longer accepting, finishing in-flight jobs", flush=True)
    finally:
        server.server_close()
        left = service.drain(timeout=args.drain_timeout)
        service.close()
        if draining:
            if left:
                print(f"drain timeout: {left} job(s) abandoned", flush=True)
            else:
                print("drained: in-flight jobs finished, store flushed", flush=True)


def _run_gateway(args: argparse.Namespace) -> None:
    from .service.shard import make_gateway
    from .utils import MappingError

    shards = [s.strip() for s in args.shards.split(",") if s.strip()]
    if not shards:
        raise _cli_error(
            "gateway", "--shards needs at least one host:port address"
        )
    if not (0 <= args.port <= 65535):
        raise _cli_error("gateway", f"--port must be in [0, 65535], got {args.port}")
    if args.retries < 0:
        raise _cli_error("gateway", f"--retries must be >= 0, got {args.retries}")
    if args.retry_delay < 0:
        raise _cli_error(
            "gateway", f"--retry-delay must be >= 0, got {args.retry_delay}"
        )
    try:
        server = make_gateway(
            shards,
            host=args.host,
            port=args.port,
            retries=args.retries,
            retry_delay=args.retry_delay,
            quiet=not args.verbose,
        )
    except MappingError as exc:
        raise _cli_error("gateway", str(exc)) from None
    except OSError as exc:
        raise _cli_error(
            "gateway",
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}",
        ) from None
    host, port = server.server_address[:2]
    for index, (address, keyslice) in enumerate(zip(server.shards, server.slices)):
        print(f"shard {index}: {address} owns {keyslice.describe()}", flush=True)
    _install_sigterm_drain()
    # The smoke tooling greps this exact line for the bound (ephemeral) port.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, _DrainRequested):
        print("shutting down", flush=True)
    finally:
        server.server_close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
