"""One-call entry points: ``solve`` an instance, render a ``compare`` table.

The facade is the narrow waist of the library::

    from repro.api import solve
    outcome = solve(graph, clustering, system, mapper="tabu", rng=7)

accepts any registered mapper by name, wires the clustering to the graph,
and returns the uniform :class:`~repro.api.outcome.MapOutcome`.

Both entry points are thin clients of the process-wide
:func:`repro.service.default_service`: a solve with a registry-named
mapper and an integer seed is content-addressed, so repeating it returns
the service's stored outcome bit-identically instead of recomputing
(see :mod:`repro.service`).  Everything else (instantiated mappers,
generator or ``None`` rngs) executes unconditionally, exactly as before.
"""

from __future__ import annotations

import numpy as np

from ..core.clustered import ClusteredGraph, Clustering
from ..core.taskgraph import TaskGraph
from ..topology.base import SystemGraph
from .outcome import MapOutcome
from .registry import Mapper

__all__ = ["solve", "solve_instance", "format_comparison"]


def solve(
    graph: TaskGraph,
    clustering: Clustering,
    system: SystemGraph,
    mapper: str | Mapper = "critical",
    rng: int | np.random.Generator | None = None,
    **params: object,
) -> MapOutcome:
    """Map ``graph`` (under ``clustering``) onto ``system`` with one mapper.

    ``mapper`` is a registry name (see
    :func:`~repro.api.registry.available_mappers`) or an already-built
    :class:`~repro.api.registry.Mapper`; ``params`` go to the mapper
    factory when a name is given.

    >>> from repro.api import solve
    >>> from repro.workloads import layered_random_dag
    >>> from repro.clustering import RandomClusterer
    >>> from repro.topology import hypercube
    >>> g = layered_random_dag(num_tasks=40, rng=1)
    >>> c = RandomClusterer(num_clusters=8).cluster(g, rng=1)
    >>> outcome = solve(g, c, hypercube(3), mapper="tabu", rng=1)
    >>> outcome.total_time >= outcome.lower_bound
    True
    """
    return solve_instance(
        ClusteredGraph(graph, clustering), system, mapper=mapper, rng=rng, **params
    )


def solve_instance(
    clustered: ClusteredGraph,
    system: SystemGraph,
    mapper: str | Mapper = "critical",
    rng: int | np.random.Generator | None = None,
    **params: object,
) -> MapOutcome:
    """Like :func:`solve` for an already-clustered instance.

    Delegates to the default :class:`~repro.service.MappingService`, so
    identical (instance, mapper, params, seed) calls anywhere in the
    process share one cached result.
    """
    from ..service import default_service

    return default_service().solve_instance(
        clustered, system, mapper=mapper, rng=rng, **params
    )


def format_comparison(outcomes: list[MapOutcome]) -> str:
    """Render a ``compare()`` result as the paper-style normalized table.

    Raises :class:`ValueError` on an empty list.  The instance's lower
    bound is shared by every outcome, so it is taken from the input
    before the display sort rather than from the sorted list.
    """
    from ..analysis.tables import render_table

    if not outcomes:
        raise ValueError(
            "format_comparison needs at least one MapOutcome; "
            "got an empty list"
        )
    bound = outcomes[0].lower_bound
    body = []
    for o in sorted(outcomes, key=lambda o: o.total_time):
        body.append(
            [
                o.mapper,
                str(o.total_time),
                f"{o.percent_of_lower_bound():.1f}%",
                "yes" if o.reached_lower_bound else "no",
                str(o.evaluations),
                f"{o.wall_time:.3f}s",
            ]
        )
    return render_table(
        ["mapper", "total time", "% of bound", "optimal", "evals", "wall"],
        body,
        title=f"Mapper comparison (lower bound = {bound})",
    )
