"""The clusterer, workload, and topology registries.

These three :class:`~repro.api.registry.Registry` instances make every
axis of a mapping experiment addressable by name, exactly like the
mapper axis:

* **clusterers** — ``get_clusterer("dsc", num_clusters=8)`` wraps the
  classes in :mod:`repro.clustering`;
* **workloads** — ``get_workload("fft")(points_log2=4)`` wraps the task
  graph generators in :mod:`repro.workloads` (build with
  :func:`build_workload` to thread an ``rng`` uniformly);
* **topologies** — ``build_topology("torus2d:4x4")`` absorbs
  :func:`repro.topology.generators.by_name` into one ``family:args``
  spec grammar shared by the CLI, scenarios, and sweeps.

Registered generators keep their original signatures — the registries
wrap them, they do not replace them.  Deterministic generators silently
accept (and ignore) the uniform ``rng`` keyword so callers never need to
special-case stochastic vs. deterministic components.
"""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Mapping

import numpy as np

from ..clustering import (
    BandClusterer,
    BlockClusterer,
    Clusterer,
    DscClusterer,
    EdgeZeroClusterer,
    LinearClusterer,
    LoadBalanceClusterer,
    RandomClusterer,
    RoundRobinClusterer,
)
from ..core.taskgraph import TaskGraph
from ..topology import generators as topo
from ..topology.base import SystemGraph
from ..workloads import (
    broadcast_tree,
    cholesky_dag,
    diamond_lattice,
    divide_conquer_dag,
    fft_dag,
    fork_join_dag,
    gaussian_elimination_dag,
    gnp_dag,
    layered_random_dag,
    lu_dag,
    map_reduce_dag,
    pipeline_dag,
    reduction_tree,
    series_parallel_dag,
    stencil_sweep_dag,
    triangular_solve_dag,
    wavefront_dag,
)
from .registry import Registry, UnknownComponentError

__all__ = [
    "CLUSTERERS",
    "WORKLOADS",
    "TOPOLOGIES",
    "available_clusterers",
    "available_workloads",
    "available_topologies",
    "get_clusterer",
    "get_workload",
    "build_workload",
    "build_topology",
    "parse_topology_spec",
    "register_clusterer",
    "register_workload",
    "register_topology",
    "registry_listing",
]

#: The clustering axis: names -> Clusterer subclasses.
CLUSTERERS = Registry("clusterer")

#: The workload axis: names -> task-graph generator callables.
WORKLOADS = Registry("workload")

#: The topology axis: family names -> system-graph builder callables.
TOPOLOGIES = Registry("topology")


def register_clusterer(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a :class:`~repro.clustering.Clusterer` factory under ``name``."""
    return CLUSTERERS.register(name)


def register_workload(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a task-graph generator under ``name``.

    The generator is wrapped so it uniformly accepts an ``rng`` keyword
    (ignored when the underlying generator is deterministic).
    """

    def decorate(func: Callable[..., TaskGraph]) -> Callable[..., TaskGraph]:
        WORKLOADS.register(name)(_with_uniform_rng(func))
        return func

    return decorate


def register_topology(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a system-graph builder under ``name`` (see :func:`build_topology`)."""

    def decorate(func: Callable[..., SystemGraph]) -> Callable[..., SystemGraph]:
        TOPOLOGIES.register(name)(_with_uniform_rng(func))
        return func

    return decorate


def available_clusterers() -> list[str]:
    """Sorted names of every registered clusterer."""
    return CLUSTERERS.available()


def available_workloads() -> list[str]:
    """Sorted names of every registered workload generator."""
    return WORKLOADS.available()


def available_topologies() -> list[str]:
    """Sorted names of every registered topology family."""
    return TOPOLOGIES.available()


def registry_listing(kind: str) -> dict[str, object]:
    """Machine-readable listing of one registry, by plural kind name.

    The single serialization behind both ``mimdmap list --json`` and the
    service's ``GET /registries/<kind>`` endpoint, so scripts and HTTP
    clients see identical shapes::

        {"kind": "mappers", "count": 8, "names": ["annealing", ...]}
    """
    from ..lint import RULES
    from ..metrics import METRICS
    from .registry import MAPPERS

    registries = {
        "mappers": MAPPERS,
        "clusterers": CLUSTERERS,
        "workloads": WORKLOADS,
        "topologies": TOPOLOGIES,
        "metrics": METRICS,
        "rules": RULES,
    }
    if kind not in registries:
        raise UnknownComponentError(
            f"unknown registry {kind!r}; "
            f"available: {', '.join(sorted(registries))}"
        )
    names = registries[kind].available()
    return {"kind": kind, "count": len(names), "names": names}


def get_clusterer(name: str, num_clusters: int, **params: object) -> Clusterer:
    """Instantiate the clusterer registered under ``name``."""
    return CLUSTERERS.get(name, num_clusters=num_clusters, **params)


def get_workload(name: str) -> Callable[..., TaskGraph]:
    """The workload generator registered under ``name`` (rng-uniform wrapper)."""
    return WORKLOADS.factory(name)


def build_workload(
    name: str,
    params: Mapping[str, object] | None = None,
    rng: int | np.random.Generator | None = None,
) -> TaskGraph:
    """Build one task graph from a registered generator.

    ``rng`` seeds stochastic generators and is ignored by deterministic
    ones, so sweep code can thread seeds without special-casing.
    """
    return get_workload(name)(**dict(params or {}), rng=rng)


def parse_topology_spec(spec: str) -> tuple[str, tuple[int, ...]]:
    """Split a ``family[:NxM...]`` topology spec into (family, int args).

    Examples: ``"hypercube:3"`` -> ``("hypercube", (3,))``,
    ``"torus2d:4x4"`` -> ``("torus2d", (4, 4))``, ``"petersen"`` ->
    ``("petersen", ())``.  The family must be a registered topology;
    malformed argument lists raise :class:`UnknownComponentError`-adjacent
    registry errors that name the bad spec.
    """
    family, _, arg_part = spec.strip().partition(":")
    family = family.strip()
    if family not in TOPOLOGIES:
        raise UnknownComponentError(
            f"unknown topology {family!r} (in spec {spec!r}); "
            f"{TOPOLOGIES.suggest(family)}"
        )
    args: tuple[int, ...] = ()
    if arg_part:
        try:
            args = tuple(int(a) for a in arg_part.split("x"))
        except ValueError:
            raise UnknownComponentError(
                f"topology spec {spec!r} has malformed arguments {arg_part!r}; "
                "expected integers separated by 'x', e.g. 'torus2d:4x4'"
            ) from None
    return family, args


def build_topology(
    spec: str, rng: int | np.random.Generator | None = None
) -> SystemGraph:
    """Build one system graph from a ``family:args`` spec string.

    ``"hypercube:3"`` is an 8-node cube, ``"torus2d:4x4"`` a 16-node
    torus, ``"random:8"`` a seeded random connected topology (``rng``
    feeds the stochastic families and is ignored elsewhere).
    """
    family, args = parse_topology_spec(spec)
    builder = TOPOLOGIES.factory(family)
    try:
        return builder(*args, rng=rng)
    except TypeError:
        raise UnknownComponentError(
            f"topology spec {spec!r} has the wrong number of arguments "
            f"for family {family!r}"
        ) from None


def _with_uniform_rng(func: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a generator so it accepts ``rng`` whether or not it uses it."""
    if "rng" in inspect.signature(func).parameters:
        return func

    @functools.wraps(func)
    def build(*args: object, rng: object = None, **kwargs: object) -> Any:
        return func(*args, **kwargs)

    return build


# --- built-in clusterer registrations ---------------------------------------

CLUSTERERS.register("random")(RandomClusterer)
CLUSTERERS.register("round_robin")(RoundRobinClusterer)
CLUSTERERS.register("block")(BlockClusterer)
CLUSTERERS.register("band")(BandClusterer)
CLUSTERERS.register("load_balance")(LoadBalanceClusterer)
CLUSTERERS.register("linear")(LinearClusterer)
CLUSTERERS.register("edge_zero")(EdgeZeroClusterer)
CLUSTERERS.register("dsc")(DscClusterer)

# --- built-in workload registrations ----------------------------------------

for _name, _gen in {
    "layered_random": layered_random_dag,
    "gnp": gnp_dag,
    "series_parallel": series_parallel_dag,
    "fft": fft_dag,
    "fork_join": fork_join_dag,
    "divide_conquer": divide_conquer_dag,
    "pipeline": pipeline_dag,
    "map_reduce": map_reduce_dag,
    "stencil": stencil_sweep_dag,
    "gaussian": gaussian_elimination_dag,
    "cholesky": cholesky_dag,
    "lu": lu_dag,
    "triangular_solve": triangular_solve_dag,
    "wavefront": wavefront_dag,
    "reduction_tree": reduction_tree,
    "broadcast_tree": broadcast_tree,
    "diamond": diamond_lattice,
}.items():
    WORKLOADS.register(_name)(_with_uniform_rng(_gen))

# --- built-in topology registrations ----------------------------------------

for _name, _gen in {
    "hypercube": topo.hypercube,
    "mesh2d": topo.mesh2d,
    "mesh3d": topo.mesh3d,
    "torus2d": topo.torus2d,
    "torus3d": topo.torus3d,
    "ring": topo.ring,
    "chain": topo.chain,
    "star": topo.star,
    "complete": topo.complete,
    "kbipartite": topo.complete_bipartite,
    "btree": topo.binary_tree,
    "ccc": topo.cube_connected_cycles,
    "debruijn": topo.de_bruijn,
    "kautz": topo.kautz,
    "butterfly": topo.butterfly,
    "chordal": topo.chordal_ring,
    "petersen": topo.petersen,
    "random": topo.random_connected,
    "regular": topo.random_regular,
}.items():
    TOPOLOGIES.register(_name)(_with_uniform_rng(_gen))

# by_name's size-based families ride along so legacy "--topology mesh
# --size 12" specs parse through the same registry (squarest factoring).
TOPOLOGIES.register("mesh")(
    _with_uniform_rng(lambda size: topo.by_name("mesh", size))
)
TOPOLOGIES.register("torus")(
    _with_uniform_rng(lambda size: topo.by_name("torus", size))
)
