"""Declarative scenario specs: one named point of the experiment grid.

A :class:`Scenario` pins all four axes of a mapping experiment —
workload x clustering x topology x mapper — by registry name, plus
per-axis parameters, a base seed, and a replica count::

    s = Scenario(workload="fft", workload_params={"points_log2": 4},
                 clustering="dsc", topology="hypercube:3", mapper="tabu")

Scenarios are frozen, validate every axis against its registry at
construction (errors name the bad axis), and round-trip losslessly
through plain dicts and JSON files.  :meth:`Scenario.grid` expands a
cross product of axis choices into concrete scenarios, which is how
sweep specs describe whole paper tables in a few lines; see
:mod:`repro.api.sweep` for the engine that runs them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..utils import MappingError
from .components import (
    CLUSTERERS,
    WORKLOADS,
    parse_topology_spec,
)
from .registry import MAPPERS, RegistryError

__all__ = ["Scenario", "ScenarioError", "expand_spec", "load_spec"]

#: Axis name -> the registry its selections are validated against
#: (topology validates through the spec grammar instead).
_AXIS_REGISTRIES = {
    "workload": WORKLOADS,
    "clustering": CLUSTERERS,
    "mapper": MAPPERS,
}


class ScenarioError(MappingError):
    """An invalid scenario: the message always names the offending axis."""


@dataclass(frozen=True)
class Scenario:
    """One concrete experiment: four axis selections + params + seeding.

    Parameters
    ----------
    workload, clustering, mapper:
        Registry names (see ``mimdmap list workloads`` etc.).
    topology:
        A ``family:args`` spec, e.g. ``"hypercube:3"`` or
        ``"torus2d:4x4"`` (see
        :func:`repro.api.components.build_topology`).
    workload_params, clustering_params, mapper_params:
        Keyword parameters for the respective factories.  The clusterer's
        ``num_clusters`` is implied by the topology's node count.
    seed:
        Base seed; every replica derives independent per-stage streams
        from it (see :func:`repro.api.sweep.derive_run_seeds`).
    replicas:
        How many independently seeded repetitions the sweep runs.
    name:
        Optional label; :meth:`key` is the canonical identity either way.
    metrics:
        Metric specs (registry names, ``{"name", "params"}`` mappings, or
        ``(name, params)`` pairs) evaluated on every run's final
        assignment and recorded alongside the outcome (see
        :mod:`repro.metrics`).  Empty = no extra metrics (the historical
        behavior, and the historical :meth:`key`).

    Validation happens at construction and always names the bad axis:

    >>> from repro.api import Scenario
    >>> s = Scenario(workload="fft", workload_params={"points_log2": 3},
    ...              topology="hypercube:2", mapper="tabu", seed=7)
    >>> s.clustering            # axes not given fall back to defaults
    'random'
    >>> Scenario(workload="not_a_workload", topology="hypercube:2")
    ... # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    repro.api.scenario.ScenarioError: scenario axis 'workload': ...
    """

    workload: str
    topology: str
    clustering: str = "random"
    mapper: str = "critical"
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    clustering_params: Mapping[str, Any] = field(default_factory=dict)
    mapper_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    replicas: int = 1
    name: str = ""
    metrics: Any = ()

    def __post_init__(self) -> None:
        for axis, registry in _AXIS_REGISTRIES.items():
            value = getattr(self, axis)
            if not isinstance(value, str) or value not in registry:
                raise ScenarioError(
                    f"scenario axis {axis!r}: unknown {registry.kind} {value!r}; "
                    f"{registry.suggest(value)}"
                )
        try:
            parse_topology_spec(self.topology)
        except RegistryError as exc:
            raise ScenarioError(f"scenario axis 'topology': {exc}") from None
        for axis in ("workload_params", "clustering_params", "mapper_params"):
            params = getattr(self, axis)
            if not isinstance(params, Mapping) or not all(
                isinstance(k, str) for k in params
            ):
                raise ScenarioError(
                    f"scenario axis {axis!r}: expected a mapping with string "
                    f"keys, got {params!r}"
                )
            object.__setattr__(self, axis, dict(params))
        if self.mapper == "portfolio" and (
            self.mapper_params.get("arms", "auto") == "auto"
        ):
            # A scenario run must be a pure function of its spec (sweep
            # resume, service fingerprints); arms="auto" consults the
            # service's mutable solve history, so it is rejected here.
            raise ScenarioError(
                "scenario axis 'mapper_params': portfolio scenarios need an "
                "explicit 'arms' list; arms='auto' depends on recorded "
                "history and cannot be part of a reproducible spec"
            )
        if (
            not isinstance(self.replicas, int)
            or isinstance(self.replicas, bool)
            or self.replicas < 1
        ):
            raise ScenarioError(
                f"scenario axis 'replicas': must be an int >= 1, got "
                f"{self.replicas!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ScenarioError(
                f"scenario axis 'seed': must be an int, got {self.seed!r}"
            )
        if isinstance(self.metrics, str):
            raise ScenarioError(
                "scenario axis 'metrics': expected a list of metric specs, "
                f"got the bare string {self.metrics!r}; wrap it in a list"
            )
        if self.metrics:
            # Deferred import: repro.metrics pulls in the simulator stack,
            # which plain (metric-less) scenarios never need.
            from ..metrics import build_metrics, normalize_metric_specs

            try:
                normalized = tuple(normalize_metric_specs(self.metrics))
                build_metrics(normalized)  # eager param validation
            except MappingError as exc:
                raise ScenarioError(f"scenario axis 'metrics': {exc}") from None
            object.__setattr__(self, "metrics", normalized)
        else:
            object.__setattr__(self, "metrics", ())

    # -- identity -------------------------------------------------------

    def key(self) -> str:
        """Canonical identity string (stable across processes and runs).

        The ``metrics=`` segment appears only when metrics were
        requested, so metric-less scenarios keep their historical keys
        (resume checkpoints and service fingerprints stay valid).
        """
        parts = [
            _axis_key("workload", self.workload, self.workload_params),
            _axis_key("clustering", self.clustering, self.clustering_params),
            f"topology={self.topology}",
            _axis_key("mapper", self.mapper, self.mapper_params),
        ]
        if self.metrics:
            from ..metrics import metric_label

            parts.append(
                "metrics=" + ",".join(metric_label(n, p) for n, p in self.metrics)
            )
        parts.append(f"seed={self.seed}")
        return "/".join(parts)

    def label(self) -> str:
        """Human-facing name: the explicit ``name`` or a derived one."""
        if self.name:
            return self.name
        return f"{self.workload}|{self.clustering}|{self.topology}|{self.mapper}"

    def group_key(self) -> str:
        """Identity of the scenario *group*: every axis except the mapper.

        Scenarios sharing a group are the rows of one paper-style
        head-to-head comparison table (same instance, different mappers).
        """
        return "/".join(
            [
                _axis_key("workload", self.workload, self.workload_params),
                _axis_key("clustering", self.clustering, self.clustering_params),
                f"topology={self.topology}",
                f"seed={self.seed}",
            ]
        )

    # -- dict / JSON round trip ----------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; ``from_dict`` restores an equal scenario."""
        out: dict[str, Any] = {
            "workload": self.workload,
            "topology": self.topology,
            "clustering": self.clustering,
            "mapper": self.mapper,
            "seed": self.seed,
            "replicas": self.replicas,
        }
        for axis in ("workload_params", "clustering_params", "mapper_params"):
            params = getattr(self, axis)
            if params:
                out[axis] = dict(params)
        if self.name:
            out["name"] = self.name
        if self.metrics:
            out["metrics"] = [
                name if not params else {"name": name, "params": dict(params)}
                for name, params in self.metrics
            ]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys raise :class:`ScenarioError`."""
        if not isinstance(data, Mapping):
            raise ScenarioError(f"a scenario must be a mapping, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario field(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {sorted(known)}"
            )
        missing = [axis for axis in ("workload", "topology") if axis not in data]
        if missing:
            raise ScenarioError(
                f"scenario axis {missing[0]!r}: required but missing"
            )
        return cls(**dict(data))

    def to_json(self, path: str | Path) -> None:
        """Write the scenario to ``path`` as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "Scenario":
        """Read one scenario back from :meth:`to_json` output."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- grid expansion -------------------------------------------------

    @classmethod
    def grid(
        cls,
        workload: object,
        topology: object,
        clustering: object = "random",
        mapper: object = "critical",
        *,
        seed: int = 0,
        replicas: int = 1,
        name: str = "",
        metrics: object = (),
    ) -> list["Scenario"]:
        """Cross-product expansion: one scenario per axis combination.

        Each axis accepts a single choice or a list of choices; a choice
        is a registry name, a ``{"name": ..., "params": {...}}`` mapping
        (the JSON-spec form), or a ``(name, params)`` pair.  Expansion
        order is workload-major, then clustering, topology, mapper —
        deterministic, so sweep resume files stay aligned.  ``metrics``
        (like ``seed``/``replicas``) applies to every produced scenario.
        """
        scenarios = []
        for w_name, w_params in _axis_choices("workload", workload):
            for c_name, c_params in _axis_choices("clustering", clustering):
                for t_name, t_params in _axis_choices("topology", topology):
                    if t_params:
                        raise ScenarioError(
                            "scenario axis 'topology': parameters belong in "
                            f"the spec string (got params {t_params!r} for "
                            f"{t_name!r}); write e.g. 'torus2d:4x4'"
                        )
                    for m_name, m_params in _axis_choices("mapper", mapper):
                        scenarios.append(
                            cls(
                                workload=w_name,
                                topology=t_name,
                                clustering=c_name,
                                mapper=m_name,
                                workload_params=w_params,
                                clustering_params=c_params,
                                mapper_params=m_params,
                                seed=seed,
                                replicas=replicas,
                                name=name,
                                metrics=metrics,
                            )
                        )
        return scenarios


def expand_spec(spec: Mapping[str, Any]) -> list[Scenario]:
    """Expand a sweep-spec dict into concrete scenarios.

    Two spec shapes are accepted (and may be combined):

    * ``{"grid": {"workload": [...], "topology": [...], ...},
      "seed": 7, "replicas": 2, "metrics": ["hop_bytes", ...]}`` — cross
      product via :meth:`Scenario.grid` (``metrics`` applies to every
      grid-produced scenario);
    * ``{"scenarios": [{...}, {...}]}`` — explicit scenario dicts (which
      carry their own ``"metrics"`` key if wanted).
    """
    if not isinstance(spec, Mapping):
        raise ScenarioError(f"a sweep spec must be a mapping, got {spec!r}")
    unknown = sorted(
        set(spec) - {"grid", "scenarios", "seed", "replicas", "name", "metrics"}
    )
    if unknown:
        raise ScenarioError(
            f"unknown sweep-spec key(s) {', '.join(map(repr, unknown))}; "
            "expected 'grid', 'scenarios', 'seed', 'replicas', 'name', 'metrics'"
        )
    scenarios: list[Scenario] = []
    if "grid" in spec:
        grid = spec["grid"]
        if not isinstance(grid, Mapping):
            raise ScenarioError(f"'grid' must be a mapping of axes, got {grid!r}")
        bad = sorted(set(grid) - {"workload", "clustering", "topology", "mapper"})
        if bad:
            raise ScenarioError(
                f"unknown grid axis(es) {', '.join(map(repr, bad))}; expected "
                "'workload', 'clustering', 'topology', 'mapper'"
            )
        for axis in ("workload", "topology"):
            if axis not in grid:
                raise ScenarioError(f"scenario axis {axis!r}: required but missing")
        seed = spec.get("seed", 0)
        replicas = spec.get("replicas", 1)
        name = spec.get("name", "")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ScenarioError(
                f"scenario axis 'seed': must be an int, got {seed!r}"
            )
        if not isinstance(replicas, int) or isinstance(replicas, bool):
            raise ScenarioError(
                f"scenario axis 'replicas': must be an int >= 1, got {replicas!r}"
            )
        if not isinstance(name, str):
            raise ScenarioError(
                f"scenario axis 'name': must be a string, got {name!r}"
            )
        scenarios.extend(
            Scenario.grid(
                workload=grid["workload"],
                topology=grid["topology"],
                clustering=grid.get("clustering", "random"),
                mapper=grid.get("mapper", "critical"),
                seed=seed,
                replicas=replicas,
                name=name,
                metrics=spec.get("metrics", ()),
            )
        )
    for entry in spec.get("scenarios", ()):
        scenarios.append(Scenario.from_dict(entry))
    if not scenarios:
        raise ScenarioError(
            "sweep spec produced no scenarios; give a 'grid' and/or a "
            "non-empty 'scenarios' list"
        )
    return scenarios


def load_spec(path: str | Path) -> list[Scenario]:
    """Read a sweep-spec JSON file and expand it (see :func:`expand_spec`)."""
    return expand_spec(json.loads(Path(path).read_text()))


def _axis_key(axis: str, name: str, params: Mapping[str, Any]) -> str:
    if not params:
        return f"{axis}={name}"
    inner = ",".join(f"{k}={params[k]!r}" for k in sorted(params))
    return f"{axis}={name}[{inner}]"


def _axis_choices(
    axis: str, choices: object
) -> list[tuple[str, dict[str, Any]]]:
    """Normalize one grid axis to ``[(name, params), ...]``."""
    if isinstance(choices, (str, Mapping, tuple)):
        choices = [choices]
    elif not isinstance(choices, Iterable):
        raise ScenarioError(
            f"scenario axis {axis!r}: expected a choice or list of choices, "
            f"got {choices!r}"
        )
    out: list[tuple[str, dict[str, Any]]] = []
    for choice in choices:
        if isinstance(choice, str):
            out.append((choice, {}))
        elif isinstance(choice, Mapping):
            extra = sorted(set(choice) - {"name", "params"})
            if "name" not in choice or extra:
                raise ScenarioError(
                    f"scenario axis {axis!r}: a mapping choice needs a 'name' "
                    f"and optional 'params', got {dict(choice)!r}"
                )
            out.append((choice["name"], dict(choice.get("params") or {})))
        elif isinstance(choice, tuple) and len(choice) == 2:
            name, params = choice
            out.append((name, dict(params or {})))
        else:
            raise ScenarioError(
                f"scenario axis {axis!r}: cannot interpret choice {choice!r} "
                "(use a name, a (name, params) pair, or "
                "{'name': ..., 'params': {...}})"
            )
    if not out:
        raise ScenarioError(f"scenario axis {axis!r}: needs at least one choice")
    return out
