"""Batch engine: fan problem instances across mappers, optionally in parallel.

Two entry points:

* :func:`solve_many` — one mapper over a list of instances;
* :func:`compare` — every (or a chosen subset of) registered mapper over
  one instance, the head-to-head the paper's Sec. 5 tables are built on.

Both derive one independent seed per (instance, mapper) work item from a
single base seed via :class:`numpy.random.SeedSequence`, so results are
bit-identical whether the batch runs serially or on a process pool, and
regardless of worker count or completion order.  Parallelism runs on
process workers (the schedule evaluation is CPU-bound numpy work that
holds the GIL) owned by the *default* :class:`repro.service.MappingService`
— one persistent pool shared by every batch in the process, so repeated
calls pay pool startup once instead of per call.  Batches that cannot
actually go parallel (``max_workers=1``, a single work item, or the
``max_workers=None`` default on a single-CPU host) run inline and never
touch a pool at all; an *explicit* ``max_workers > 1`` is honored as
given.
"""

from __future__ import annotations

import os
import zlib
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any
from dataclasses import dataclass

import numpy as np

from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import MappingError
from .outcome import MapOutcome
from .registry import Mapper, get_mapper

__all__ = [
    "ProblemInstance",
    "compare",
    "derive_seed",
    "iter_item_outcomes",
    "params_tag",
    "solve_many",
]


@dataclass(frozen=True)
class ProblemInstance:
    """One mapping problem: a clustered graph bound to a target machine."""

    clustered: ClusteredGraph
    system: SystemGraph
    name: str = ""

    def __post_init__(self) -> None:
        if self.clustered.num_clusters != self.system.num_nodes:
            raise MappingError(
                f"instance {self.name!r}: {self.clustered.num_clusters} clusters "
                f"cannot map onto {self.system.num_nodes} system nodes"
            )


def derive_seed(
    base_seed: int, index: int, mapper: str, params_tag: int = 0
) -> int:
    """Deterministic per-work-item seed.

    Mixes the batch's base seed, the work-item index, the mapper name,
    and (when non-zero) a fingerprint of the mapper's constructor
    parameters through a :class:`numpy.random.SeedSequence`, giving
    statistically independent streams that do not depend on execution
    order.  Work items are therefore keyed by (mapper, params, instance):
    the same mapper name under different parameters — or the same
    configuration at a different batch slot — draws a different stream.
    """
    tag = zlib.crc32(mapper.encode("utf-8"))
    entropy = [int(base_seed), int(index), tag]
    if params_tag:
        entropy.append(int(params_tag))
    ss = np.random.SeedSequence(entropy)
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def params_tag(params: Mapping[str, object]) -> int:
    """Stable non-zero fingerprint of mapper parameters (0 for none)."""
    if not params:
        return 0
    blob = repr(sorted(params.items())).encode("utf-8")
    return zlib.crc32(blob) or 1


@dataclass(frozen=True)
class _WorkItem:
    """Everything a worker process needs to run one mapper on one instance.

    The mapper *instance* travels in the item (the protocol requires
    mappers to be picklable), so custom mappers registered at runtime
    work on any multiprocessing start method — workers never need to
    re-resolve registry names.
    """

    index: int
    instance: ProblemInstance
    mapper: Mapper
    seed: int = 0


def _solve_item(item: _WorkItem) -> MapOutcome:
    return item.mapper.map(item.instance.clustered, item.instance.system, rng=item.seed)


def iter_item_outcomes(
    items: Sequence[Any],
    max_workers: int | None,
    solve: Callable[[Any], MapOutcome] = _solve_item,
    service: Any = None,
) -> Iterator[tuple[object, MapOutcome]]:
    """Yield ``(item, solve(item))`` pairs as work completes.

    The serial path yields in input order; the process-pool path yields
    in completion order, which is what lets sweeps stream results to
    disk while slower instances are still running.  Each item's outcome
    depends only on the item itself, so completion order never changes
    any result.

    The serial path is taken whenever the batch cannot actually go
    parallel — ``max_workers == 1``, a single item, or the
    ``max_workers=None`` default on a single-CPU host — and runs
    entirely inline: no process pool is created or contacted (an
    explicit ``max_workers > 1`` request is honored as given).
    Parallel batches run on the persistent pool of
    ``service`` (default: :func:`repro.service.default_service`), which
    survives between calls; at most ``max_workers`` items are in flight
    at once even though the shared pool may be larger.

    ``solve`` defaults to running a prepared :class:`_WorkItem`; callers
    with cheaper-to-ship work units (the scenario sweep sends specs and
    builds instances worker-side) pass their own module-level function
    (it must be picklable, like the items).
    """
    if max_workers is not None and max_workers < 1:
        raise MappingError(f"max_workers must be >= 1, got {max_workers}")
    workers = min(max_workers or os.cpu_count() or 1, len(items))
    if workers <= 1:
        for item in items:
            yield item, solve(item)
        return
    if service is None:
        from ..service import default_service

        service = default_service()
    yield from service.run_on_pool(items, solve, max_workers=workers)


def _run_items(items: Sequence[_WorkItem], max_workers: int | None) -> list[MapOutcome]:
    # Callers construct items with index == position, so completion order
    # can be folded back into input order directly.
    outcomes: list[MapOutcome | None] = [None] * len(items)
    for item, outcome in iter_item_outcomes(items, max_workers):
        outcomes[item.index] = outcome
    return outcomes


def solve_many(
    instances: Iterable[ProblemInstance | tuple[ClusteredGraph, SystemGraph]],
    mapper: str | Mapper = "critical",
    *,
    seed: int | None = 0,
    max_workers: int | None = 1,
    **params: object,
) -> list[MapOutcome]:
    """Run one mapper over many instances; results keep input order.

    Parameters
    ----------
    instances:
        :class:`ProblemInstance` objects or bare ``(clustered, system)``
        pairs.
    mapper:
        A registry name, or an already-built (picklable) :class:`Mapper`.
    seed:
        Base seed; each instance gets its own derived seed (see
        :func:`derive_seed`).  ``None`` draws a fresh nondeterministic
        base seed.
    max_workers:
        ``1`` (default) runs serially in-process; larger values use a
        process pool.  ``None`` uses one worker per CPU (never more than
        one per instance).
    params:
        Forwarded to the mapper factory, identically for every instance
        (only valid with a mapper *name*).

    >>> from repro.api import solve_many
    >>> from repro.core import ClusteredGraph
    >>> from repro.workloads import layered_random_dag
    >>> from repro.clustering import RandomClusterer
    >>> from repro.topology import hypercube
    >>> g = layered_random_dag(num_tasks=20, rng=1)
    >>> c = RandomClusterer(num_clusters=4).cluster(g, rng=1)
    >>> clustered, system = ClusteredGraph(g, c), hypercube(2)
    >>> outcomes = solve_many([(clustered, system)] * 2, mapper="random", seed=7)
    >>> [o.mapper for o in outcomes]
    ['random', 'random']
    >>> outcomes[0].total_time >= outcomes[0].lower_bound
    True
    """
    if isinstance(mapper, str):
        built = get_mapper(mapper, **params)
    elif params:
        raise TypeError(
            "mapper parameters can only be given with a mapper *name*; "
            f"got an instantiated mapper and params {sorted(params)}"
        )
    else:
        built = mapper
    base = _resolve_base_seed(seed)
    tag = params_tag(params)
    normalized = [_as_instance(obj, i) for i, obj in enumerate(instances)]
    items = [
        _WorkItem(
            index=i,
            instance=inst,
            mapper=built,
            seed=derive_seed(base, i, built.name, tag),
        )
        for i, inst in enumerate(normalized)
    ]
    return _run_items(items, max_workers)


def compare(
    clustered: ClusteredGraph,
    system: SystemGraph,
    mappers: Sequence[str | tuple[str, dict[str, object]]] | None = None,
    *,
    seed: int | None = 0,
    max_workers: int | None = 1,
    mapper_params: dict[str, dict[str, object]] | None = None,
) -> list[MapOutcome]:
    """Score several mapper configurations head-to-head on one instance.

    ``mappers`` defaults to every registered mapper (sorted by name).
    Each entry is either a registry name or a ``(name, params)`` pair, so
    the *same* mapper can appear several times under different parameters
    — every entry stays a distinct work item (nothing is deduplicated)
    and gets its own seed derived from (slot, name, params) via
    :func:`derive_seed`.  ``mapper_params`` supplies per-name defaults,
    e.g. ``{"random": {"samples": 50}}``; an entry's own params override
    them key by key.  Returns one :class:`MapOutcome` per entry, in the
    order requested.

    >>> from repro.api import compare
    >>> from repro.core import ClusteredGraph
    >>> from repro.workloads import layered_random_dag
    >>> from repro.clustering import RandomClusterer
    >>> from repro.topology import hypercube
    >>> g = layered_random_dag(num_tasks=20, rng=1)
    >>> c = RandomClusterer(num_clusters=4).cluster(g, rng=1)
    >>> outcomes = compare(ClusteredGraph(g, c), hypercube(2),
    ...                    mappers=["critical", ("random", {"samples": 5})],
    ...                    seed=7)
    >>> [o.mapper for o in outcomes]
    ['critical', 'random']
    """
    from .registry import available_mappers

    specs = list(mappers) if mappers is not None else available_mappers()
    base = _resolve_base_seed(seed)
    instance = ProblemInstance(clustered, system, name="compare")
    mapper_params = mapper_params or {}
    items = []
    for slot, spec in enumerate(specs):
        if isinstance(spec, str):
            name, own = spec, {}
        else:
            name, own = spec
        merged = {**mapper_params.get(name, {}), **dict(own)}
        items.append(
            _WorkItem(
                index=slot,
                instance=instance,
                mapper=get_mapper(name, **merged),
                seed=derive_seed(base, slot, name, params_tag(merged)),
            )
        )
    return _run_items(items, max_workers)


def _resolve_base_seed(seed: int | None) -> int:
    if seed is not None:
        return int(seed)
    return int(np.random.SeedSequence().generate_state(1, dtype=np.uint64)[0])


def _as_instance(
    obj: ProblemInstance | tuple[ClusteredGraph, SystemGraph], index: int
) -> ProblemInstance:
    if isinstance(obj, ProblemInstance):
        return obj
    clustered, system = obj
    return ProblemInstance(clustered, system, name=f"instance{index}")
