"""Mapper protocol and the name -> mapper-factory registry.

Every mapping algorithm in the repo is reachable through one uniform
interface::

    mapper = get_mapper("tabu", iterations=60)
    outcome = mapper.map(clustered, system, rng=7)

Registration happens via the :func:`register_mapper` class decorator (see
:mod:`repro.api.adapters` for the built-in registrations).  The registry
is what lets the experiment runner, the CLI, and the batch engine accept
a mapper *name* instead of hard-coding imports.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import MappingError
from .outcome import MapOutcome

__all__ = [
    "Mapper",
    "DuplicateMapperError",
    "UnknownMapperError",
    "available_mappers",
    "get_mapper",
    "register_mapper",
]


@runtime_checkable
class Mapper(Protocol):
    """What the facade and batch engine require of a mapper.

    ``name`` identifies the mapper in reports; ``map`` runs it on one
    instance.  Mappers must be deterministic given ``rng`` (an int seed
    or a :class:`numpy.random.Generator`) and must be picklable so the
    batch engine can ship them to worker processes.
    """

    name: str

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome: ...


class DuplicateMapperError(MappingError):
    """A mapper name was registered twice."""


class UnknownMapperError(MappingError):
    """A mapper name is not in the registry."""


_REGISTRY: dict[str, Callable[..., Mapper]] = {}


def register_mapper(name: str) -> Callable[[type], type]:
    """Class decorator registering a mapper factory under ``name``.

    The decorated class gains a ``name`` attribute; instantiating it with
    keyword parameters must yield a :class:`Mapper`.
    """
    if not name or not name.islower() or not name.replace("_", "").isalnum():
        raise MappingError(
            f"mapper names must be lowercase identifiers, got {name!r}"
        )

    def decorate(factory: type) -> type:
        if name in _REGISTRY:
            raise DuplicateMapperError(
                f"mapper {name!r} is already registered "
                f"(by {_REGISTRY[name].__qualname__})"
            )
        factory.name = name
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_mappers() -> list[str]:
    """Sorted names of every registered mapper."""
    return sorted(_REGISTRY)


def get_mapper(name: str, **params: object) -> Mapper:
    """Instantiate the mapper registered under ``name`` with ``params``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownMapperError(
            f"unknown mapper {name!r}; available: {', '.join(available_mappers())}"
        ) from None
    return factory(**params)
