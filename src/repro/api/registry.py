"""Generic named-component registries, and the mapper registry built on one.

Every axis of a mapping experiment — mappers, clusterers, workloads,
topologies — is addressable by name through a :class:`Registry`::

    mapper = get_mapper("tabu", iterations=60)
    outcome = mapper.map(clustered, system, rng=7)

All four registries share the same machinery and therefore the same
name-validation rule and the same duplicate/unknown error messages; only
the component *kind* differs.  The mapper registry lives here (the
:class:`Mapper` protocol is its contract); the clusterer, workload, and
topology registries live in :mod:`repro.api.components`.

Registration happens via the :meth:`Registry.register` decorator (see
:mod:`repro.api.adapters` for the built-in mapper registrations).  The
registries are what let the experiment runner, the CLI, the batch engine,
and the scenario sweep accept component *names* instead of hard-coding
imports.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from ..core.clustered import ClusteredGraph
from ..topology.base import SystemGraph
from ..utils import MappingError
from .outcome import MapOutcome

__all__ = [
    "Mapper",
    "Registry",
    "RegistryError",
    "DuplicateComponentError",
    "UnknownComponentError",
    "DuplicateMapperError",
    "UnknownMapperError",
    "MAPPERS",
    "available_mappers",
    "get_mapper",
    "register_mapper",
]


@runtime_checkable
class Mapper(Protocol):
    """What the facade and batch engine require of a mapper.

    ``name`` identifies the mapper in reports; ``map`` runs it on one
    instance.  Mappers must be deterministic given ``rng`` (an int seed
    or a :class:`numpy.random.Generator`) and must be picklable so the
    batch engine can ship them to worker processes.
    """

    name: str

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome: ...


class RegistryError(MappingError):
    """Base class of every registry failure."""


class DuplicateComponentError(RegistryError):
    """A component name was registered twice in the same registry."""


class UnknownComponentError(RegistryError):
    """A component name is not in the registry it was looked up in."""


class DuplicateMapperError(DuplicateComponentError):
    """A mapper name was registered twice."""


class UnknownMapperError(UnknownComponentError):
    """A mapper name is not in the registry."""


class Registry:
    """A ``name -> factory`` table for one axis of the experiment grid.

    Parameters
    ----------
    kind:
        Singular component kind used in messages, e.g. ``"mapper"``.
    duplicate_error, unknown_error:
        Exception classes raised on double registration / failed lookup
        (must subclass the generic registry errors, so callers can catch
        either the specific or the generic type).

    Names must be lowercase identifiers (``[a-z0-9_]+``, starting
    non-empty); the rule and its message are identical across all
    registries.
    """

    def __init__(
        self,
        kind: str,
        *,
        duplicate_error: type[DuplicateComponentError] = DuplicateComponentError,
        unknown_error: type[UnknownComponentError] = UnknownComponentError,
    ) -> None:
        self.kind = kind
        self._duplicate_error = duplicate_error
        self._unknown_error = unknown_error
        self._factories: dict[str, Callable[..., Any]] = {}

    def validate_name(self, name: str) -> None:
        """Reject anything but a lowercase identifier, uniformly."""
        if not name or not name.islower() or not name.replace("_", "").isalnum():
            raise RegistryError(
                f"{self.kind} names must be lowercase identifiers, got {name!r}"
            )

    def register(
        self, name: str
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a factory under ``name``.

        Class factories gain a ``name`` attribute (the :class:`Mapper`
        protocol requires one); plain functions are stored as-is.
        """
        self.validate_name(name)

        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._factories:
                raise self._duplicate_error(
                    f"{self.kind} {name!r} is already registered "
                    f"(by {self._factories[name].__qualname__})"
                )
            if isinstance(factory, type):
                factory.name = name  # type: ignore[attr-defined]
            self._factories[name] = factory
            return factory

        return decorate

    def get(self, name: str, **params: object) -> Any:
        """Instantiate the component registered under ``name`` with ``params``."""
        return self.factory(name)(**params)

    def factory(self, name: str) -> Callable[..., Any]:
        """The raw registered factory (no instantiation).

        Unknown names raise with near-miss suggestions (``did you mean
        'multilevel'?``) when the name resembles a registered one, and
        only fall back to the full listing when nothing is close.
        """
        try:
            return self._factories[name]
        except KeyError:
            raise self._unknown_error(
                f"unknown {self.kind} {name!r}; {self.suggest(name)}"
            ) from None

    def suggest(self, name: str) -> str:
        """A ``did you mean ...?`` hint for ``name``, or the full listing."""
        matches = difflib.get_close_matches(str(name), self.available(), n=3)
        if matches:
            return "did you mean " + " or ".join(repr(m) for m in matches) + "?"
        return f"available: {', '.join(self.available())}"

    def available(self) -> list[str]:
        """Sorted names of every registered component."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, names={self.available()})"


#: The mapper axis: names -> mapper factories (see repro.api.adapters).
MAPPERS = Registry(
    "mapper",
    duplicate_error=DuplicateMapperError,
    unknown_error=UnknownMapperError,
)


def register_mapper(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class decorator registering a mapper factory under ``name``.

    The decorated class gains a ``name`` attribute; instantiating it with
    keyword parameters must yield a :class:`Mapper`.
    """
    return MAPPERS.register(name)


def available_mappers() -> list[str]:
    """Sorted names of every registered mapper."""
    return MAPPERS.available()


def get_mapper(name: str, **params: object) -> Mapper:
    """Instantiate the mapper registered under ``name`` with ``params``."""
    return MAPPERS.get(name, **params)
