"""The mapper-agnostic result type shared by every registered mapper.

Each of the repo's mappers historically returned its own dataclass
(:class:`~repro.core.mapper.MappingResult`, ``AnnealResult``,
``BokhariResult``, ...) with bespoke fields.  :class:`MapOutcome` is the
common denominator the :mod:`repro.api` facade normalizes them to, so
experiments, the CLI, and the batch engine can treat all mappers
uniformly.  Mapper-specific detail (mean random time, cardinality,
generation count, ...) survives in :attr:`MapOutcome.extras`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.assignment import Assignment
from ..utils import MappingError

__all__ = ["MapOutcome"]


@dataclass(frozen=True)
class MapOutcome:
    """Uniform outcome of one mapper on one (clustered graph, system) instance.

    Parameters
    ----------
    mapper:
        Registry name of the mapper that produced this outcome.
    assignment:
        The best assignment found.
    total_time:
        Makespan of ``assignment`` under the paper's execution model.
    lower_bound:
        The ideal-graph lower bound of the instance (Theorem 2).
    evaluations:
        Objective evaluations (or refinement trials, for the
        critical-edge strategy) spent by the search.
    reached_lower_bound:
        True when the search terminated by hitting the bound (Theorem 3),
        which certifies optimality.
    wall_time:
        Wall-clock seconds spent inside the mapper.
    extras:
        Mapper-specific scalars (e.g. ``mean_total_time`` for the random
        baseline, ``cardinality`` for Bokhari).  Treat as read-only.
    metrics:
        Requested metric values (see :mod:`repro.metrics`): registry-
        driven scores of the final assignment, keyed by metric output
        name.  Empty unless a caller asked for metrics (the sweep's
        ``metrics=[...]`` axis, the CLI's ``--metrics``).  Treat as
        read-only.
    portfolio:
        Racing diagnostics when the ``portfolio`` mapper produced this
        outcome: the objective, the kill ratio, the winning arm, and a
        per-arm audit trail (status, deterministic kill ordinal,
        checkpoint count).  Empty for every other mapper.  Contains only
        values that are a pure function of the arm configuration and
        seeds, so records stay byte-identical across worker counts.
        Treat as read-only.
    """

    mapper: str
    assignment: Assignment
    total_time: int
    lower_bound: int
    evaluations: int
    reached_lower_bound: bool
    wall_time: float
    extras: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    portfolio: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.lower_bound <= 0:
            raise MappingError(f"lower bound must be positive, got {self.lower_bound}")
        if self.total_time < self.lower_bound:
            raise MappingError(
                f"mapper {self.mapper!r} reports total time {self.total_time} "
                f"below the lower bound {self.lower_bound} — the bound proof "
                "or the mapper is broken"
            )

    @property
    def is_provably_optimal(self) -> bool:
        """Alias of :attr:`reached_lower_bound` (Theorem 3 fired)."""
        return self.reached_lower_bound

    def percent_of_lower_bound(self) -> float:
        """The paper's reporting metric: ``100 * total_time / lower_bound``."""
        return 100.0 * self.total_time / self.lower_bound

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MapOutcome(mapper={self.mapper!r}, total_time={self.total_time}, "
            f"lower_bound={self.lower_bound}, optimal={self.reached_lower_bound})"
        )
