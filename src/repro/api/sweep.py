"""The scenario sweep engine: run a grid, stream JSONL, resume, aggregate.

:func:`run_scenarios` is the scaling workhorse on top of the declarative
:class:`~repro.api.scenario.Scenario` layer:

* every (scenario, replica) run gets independent per-stage seed streams
  derived from the scenario's base seed, so results are bit-identical at
  any worker count and any completion order;
* runs execute on the same process-pool engine as
  :func:`~repro.api.batch.solve_many`, but results are *streamed* to a
  JSONL file as they complete (written in input order, so the file is
  byte-stable too);
* an existing output file acts as a checkpoint: records already present
  are reused verbatim and only the missing runs re-execute, which makes
  long sweeps resumable after a crash or truncation;
* :func:`format_sweep` aggregates the records into the paper-style
  per-group mapper-comparison tables.

Records deliberately exclude wall-clock time — everything in the file is
a pure function of the spec, which is what makes resume + parallelism
safe to verify byte-for-byte.
"""

from __future__ import annotations

import os
import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core.clustered import ClusteredGraph
from ..io.jsonl import read_jsonl, write_record
from ..utils import MappingError
from .batch import ProblemInstance, iter_item_outcomes
from .components import build_topology, build_workload, get_clusterer
from .outcome import MapOutcome
from .registry import get_mapper
from .scenario import Scenario

__all__ = [
    "SweepResult",
    "derive_run_seeds",
    "format_sweep",
    "run_key",
    "run_scenario_once",
    "run_scenarios",
    "summarize_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """What one :func:`run_scenarios` call did.

    ``records`` holds every run's record in spec order (reused and fresh
    alike); ``executed`` / ``reused`` count how many were computed this
    call vs. recovered from the output file's checkpoint.
    """

    records: list[dict[str, Any]]
    executed: int
    reused: int

    def __len__(self) -> int:
        return len(self.records)


def run_key(scenario: Scenario, replica: int) -> str:
    """Identity of one concrete run — the JSONL dedupe/resume key."""
    return f"{scenario.key()}#r{replica}"


def derive_run_seeds(scenario: Scenario, replica: int) -> tuple[int, int, int, int]:
    """Independent (workload, clustering, topology, mapper) seeds for one run.

    Mixing the scenario's canonical key keeps streams independent across
    grid points even when they share a base seed; mixing the replica
    index keeps repetitions independent of each other.  Nothing depends
    on execution order, which is what makes sweeps reproducible at any
    worker count.
    """
    entropy = [int(scenario.seed), zlib.crc32(scenario.key().encode()), int(replica)]
    state = np.random.SeedSequence(entropy).generate_state(4, dtype=np.uint64)
    return tuple(int(s) for s in state)


def build_scenario_instance(
    scenario: Scenario, replica: int = 0
) -> tuple[ProblemInstance, int]:
    """Materialize one run: (problem instance, mapper seed).

    Builds the topology, the workload, and the clustering from their
    registries with this run's derived seeds; failures are re-raised
    with the scenario label attached so sweep errors are attributable.
    """
    wseed, cseed, tseed, mseed = derive_run_seeds(scenario, replica)
    try:
        system = build_topology(scenario.topology, rng=tseed)
        graph = build_workload(scenario.workload, scenario.workload_params, rng=wseed)
        if graph.num_tasks < system.num_nodes:
            raise MappingError(
                f"workload {scenario.workload!r} produced {graph.num_tasks} "
                f"tasks but topology {scenario.topology!r} has "
                f"{system.num_nodes} nodes; every node needs a cluster"
            )
        clusterer = get_clusterer(
            scenario.clustering,
            num_clusters=system.num_nodes,
            **scenario.clustering_params,
        )
        clustering = clusterer.cluster(graph, rng=cseed)
        instance = ProblemInstance(
            ClusteredGraph(graph, clustering),
            system,
            name=run_key(scenario, replica),
        )
    except MappingError as exc:
        raise MappingError(f"scenario {scenario.label()!r}: {exc}") from None
    return instance, mseed


@dataclass(frozen=True)
class _RunItem:
    """One sweep run, shipped to workers as the (cheap) spec itself.

    Instances are built worker-side from the derived seeds — shipping the
    scenario instead of a materialized :class:`ProblemInstance` keeps the
    parent's memory bounded and parallelizes graph/clustering
    construction along with the mapping.
    """

    index: int
    scenario: Scenario
    replica: int


def run_scenario_once(scenario: Scenario, replica: int = 0) -> MapOutcome:
    """Execute one (scenario, replica) run — the *single* definition of
    what a scenario run is, shared by the sweep engine and the service's
    async scenario jobs (whose cache fingerprints rely on both paths
    producing bit-identical outcomes).

    When the scenario requests metrics, they are evaluated on the final
    assignment here, so every consumer of a scenario run (sweep records,
    service job results) sees the same ``outcome.metrics``."""
    instance, mapper_seed = build_scenario_instance(scenario, replica)
    mapper = get_mapper(scenario.mapper, **scenario.mapper_params)
    outcome = mapper.map(instance.clustered, instance.system, rng=mapper_seed)
    if scenario.metrics:
        from dataclasses import replace

        from ..metrics import evaluate_metrics

        outcome = replace(
            outcome,
            metrics=evaluate_metrics(
                instance.clustered,
                instance.system,
                outcome.assignment,
                scenario.metrics,
            ),
        )
    return outcome


def _solve_run(item: _RunItem) -> MapOutcome:
    return run_scenario_once(item.scenario, item.replica)


def run_scenarios(
    scenarios: Iterable[Scenario],
    *,
    out: str | Path | None = None,
    max_workers: int | None = 1,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    service: Any = None,
) -> SweepResult:
    """Run every (scenario, replica) pair, streaming results to ``out``.

    Parameters
    ----------
    scenarios:
        Concrete scenarios (e.g. from :meth:`Scenario.grid` or
        :func:`~repro.api.scenario.load_spec`).  Each contributes
        ``replicas`` runs.
    out:
        JSONL path.  Records found there (from a previous, possibly
        truncated run) — or in the ``<out>.tmp`` left by an interrupted
        resume — are reused instead of re-executed.  Records stream to
        ``<out>.tmp`` in spec order as runs complete and the finished
        file atomically replaces ``out``, so an existing checkpoint is
        never truncated before the sweep succeeds, and a finished
        sweep's bytes are identical however it was produced.
    max_workers:
        ``1`` runs serially (inline, no process pool at all); larger
        values fan runs across the persistent pool of the default
        :class:`repro.service.MappingService` (results are identical
        either way — see :func:`derive_run_seeds`), so back-to-back
        sweeps reuse warm workers.
    on_record:
        Optional callback invoked with each record in spec order as it
        is finalized (for progress reporting).
    service:
        An explicit :class:`repro.service.MappingService` to run on
        (default: the process-wide one).

    >>> from repro.api import Scenario, run_scenarios
    >>> scenarios = Scenario.grid(
    ...     workload={"name": "diamond", "params": {"width": 3}},
    ...     topology="hypercube:2",
    ...     mapper=["critical", "random"],
    ...     seed=7,
    ... )
    >>> result = run_scenarios(scenarios)
    >>> len(result.records)
    2
    >>> sorted(r["scenario"]["mapper"] for r in result.records)
    ['critical', 'random']
    """
    runs = [
        (scenario, replica)
        for scenario in scenarios
        for replica in range(scenario.replicas)
    ]
    if not runs:
        raise MappingError("run_scenarios needs at least one scenario")
    keys = [run_key(s, r) for s, r in runs]
    if len(set(keys)) != len(keys):
        dupe = next(k for k in keys if keys.count(k) > 1)
        raise MappingError(
            f"duplicate scenario run {dupe!r}; every (scenario, replica) in a "
            "sweep must be unique for resume keys to work"
        )

    cached = _load_checkpoint(out, set(keys))
    fresh_items = [
        _RunItem(index=index, scenario=scenario, replica=replica)
        for index, (scenario, replica) in enumerate(runs)
        if keys[index] not in cached
    ]

    by_index: dict[int, dict[str, Any]] = {
        i: cached[key] for i, key in enumerate(keys) if key in cached
    }
    ordered: list[dict[str, Any]] = []
    # Stream to <out>.tmp and atomically replace on success, so the
    # existing checkpoint survives a crash mid-resume; the .tmp prefix is
    # itself a checkpoint the next resume reads.
    tmp = Path(f"{out}.tmp") if out is not None else None
    fh = tmp.open("w") if tmp is not None else None
    try:
        def flush_ready() -> None:
            while len(ordered) < len(runs) and len(ordered) in by_index:
                record = by_index.pop(len(ordered))
                ordered.append(record)
                if fh is not None:
                    write_record(fh, record)
                if on_record is not None:
                    on_record(record)

        flush_ready()
        for item, outcome in iter_item_outcomes(
            fresh_items, max_workers, solve=_solve_run, service=service
        ):
            by_index[item.index] = _make_record(item.scenario, item.replica, outcome)
            flush_ready()
    finally:
        if fh is not None:
            fh.close()
    if tmp is not None:
        os.replace(tmp, out)
    return SweepResult(
        records=ordered, executed=len(fresh_items), reused=len(cached)
    )


def summarize_sweep(
    records: Sequence[dict[str, Any]],
) -> list[tuple[str, list[dict[str, Any]]]]:
    """Group records into paper-style comparison blocks.

    A block is one scenario *group* — same workload/clustering/topology/
    seed, different mappers — aggregated over replicas.  Each row dict
    carries the mapper label, replica count, mean total time, mean
    percent-of-bound, and how many replicas hit the bound; when records
    carry requested metrics, the row gains a ``"metrics"`` dict of
    per-key means over the replicas that reported them.
    """
    groups: dict[str, dict[str, list[dict[str, Any]]]] = {}
    order: list[str] = []
    for record in records:
        group = record["group"]
        if group not in groups:
            groups[group] = {}
            order.append(group)
        groups[group].setdefault(record["run"]["mapper_label"], []).append(record)
    summaries = []
    for group in order:
        rows = []
        for label, recs in groups[group].items():
            times = [r["outcome"]["total_time"] for r in recs]
            bounds = [r["outcome"]["lower_bound"] for r in recs]
            row = {
                "mapper": label,
                "replicas": len(recs),
                "mean_total_time": float(np.mean(times)),
                "mean_percent_of_bound": float(
                    np.mean([100.0 * t / b for t, b in zip(times, bounds)])
                ),
                "optimal": sum(
                    r["outcome"]["reached_lower_bound"] for r in recs
                ),
            }
            metric_values: dict[str, list[float]] = {}
            for r in recs:
                for k, v in r["outcome"].get("metrics", {}).items():
                    metric_values.setdefault(k, []).append(float(v))
            if metric_values:
                row["metrics"] = {
                    k: float(np.mean(vs)) for k, vs in sorted(metric_values.items())
                }
            rows.append(row)
        rows.sort(key=lambda row: row["mean_total_time"])
        summaries.append((group, rows))
    return summaries


def format_sweep(records: Sequence[dict[str, Any]]) -> str:
    """Render :func:`summarize_sweep` as the paper-style tables."""
    from ..analysis.tables import render_table

    if not records:
        raise ValueError("format_sweep needs at least one record")
    blocks = []
    for group, rows in summarize_sweep(records):
        metric_keys = sorted({k for row in rows for k in row.get("metrics", {})})
        body = [
            [
                row["mapper"],
                f"{row['mean_total_time']:.1f}",
                f"{row['mean_percent_of_bound']:.1f}%",
                f"{row['optimal']}/{row['replicas']}",
            ]
            + [
                f"{row['metrics'][k]:g}" if k in row.get("metrics", {}) else "-"
                for k in metric_keys
            ]
            for row in rows
        ]
        blocks.append(
            render_table(
                ["mapper", "mean total time", "% of bound", "optimal"]
                + metric_keys,
                body,
                title=group,
            )
        )
    return "\n\n".join(blocks)


def _make_record(
    scenario: Scenario, replica: int, outcome: MapOutcome
) -> dict[str, Any]:
    """One JSONL record: pure function of (scenario, replica).

    ``wall_time`` is deliberately omitted — records must be bit-identical
    across runs and worker counts for resume verification to work.
    """
    mapper_label = scenario.mapper + (
        "[" + ",".join(
            f"{k}={scenario.mapper_params[k]!r}"
            for k in sorted(scenario.mapper_params)
        ) + "]"
        if scenario.mapper_params
        else ""
    )
    record: dict[str, Any] = {
        "key": run_key(scenario, replica),
        "group": scenario.group_key(),
        "scenario": scenario.to_dict(),
        "run": {
            "replica": replica,
            "label": scenario.label(),
            "mapper_label": mapper_label,
        },
        "outcome": {
            "mapper": outcome.mapper,
            "total_time": int(outcome.total_time),
            "lower_bound": int(outcome.lower_bound),
            "evaluations": int(outcome.evaluations),
            "reached_lower_bound": bool(outcome.reached_lower_bound),
            "assignment": [int(p) for p in outcome.assignment.assi.tolist()],
            "extras": {k: float(v) for k, v in sorted(outcome.extras.items())},
        },
    }
    if outcome.metrics:
        # Key present only when metrics were requested, keeping
        # metric-less sweeps byte-identical to their historical records.
        record["outcome"]["metrics"] = {
            k: float(v) for k, v in sorted(outcome.metrics.items())
        }
    if outcome.portfolio:
        # Racing diagnostics (winner, per-arm kill ordinals) are a pure
        # function of the arm configuration and seeds — deterministic
        # at any worker count — so they belong in the record; the key
        # only appears for portfolio scenarios, like metrics above.
        record["outcome"]["portfolio"] = outcome.portfolio
    return record


def _load_checkpoint(
    out: str | Path | None, expected_keys: set[str]
) -> dict[str, dict[str, Any]]:
    """Records from a previous (possibly truncated) run of the same sweep.

    Reads both the finished file and a ``<out>.tmp`` left behind by an
    interrupted resume.  Only records whose key belongs to the current
    sweep are reused; anything else (a different spec written to the
    same path, garbage) is dropped and recomputed.
    """
    if out is None:
        return {}
    cached: dict[str, dict[str, Any]] = {}
    for path in (Path(out), Path(f"{out}.tmp")):
        if not path.exists():
            continue
        for record in read_jsonl(path, tolerate_partial=True):
            key = record.get("key") if isinstance(record, dict) else None
            if key in expected_keys and key not in cached:
                cached[key] = record
    return cached
