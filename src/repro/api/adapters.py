"""Built-in mapper registrations: the paper's strategy and all baselines.

Each adapter is a thin, picklable wrapper that normalizes one of the
existing mapping entry points (:class:`~repro.core.mapper.CriticalEdgeMapper`,
:func:`~repro.baselines.annealing.anneal_mapping`, ...) to the uniform
:class:`~repro.api.outcome.MapOutcome`.  The wrapped functions keep their
original signatures and result types — the adapters call them, they do
not replace them.

Registered names: ``critical``, ``random``, ``bokhari``, ``lee``,
``annealing``, ``quenching``, ``genetic``, ``tabu``, ``multilevel``,
``portfolio``.

``multilevel`` is the first *composing* mapper: its ``initial=`` /
``initial_params=`` parameters name another registered mapper that
solves the coarsest level of the hierarchy (see
:mod:`repro.core.multilevel`), so its parameter set nests a full
sub-mapper configuration — which the service fingerprint canonicalizes
recursively, keeping cache keys exact.  ``portfolio`` composes further:
it races a whole list of configured mappers (:mod:`repro.portfolio`)
and returns the winner's outcome.

The iterative adapters additionally pick up the process-wide anytime
reporter (:func:`repro.core.anytime.active_reporter`) installed by the
portfolio racer, threading it into their underlying algorithms; the
``anytime_label`` class attribute names the objective their checkpoint
values measure.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..baselines.annealing import anneal_mapping
from ..baselines.bokhari import bokhari_mapping
from ..baselines.genetic import genetic_mapping
from ..baselines.lee_aggarwal import lee_mapping
from ..baselines.random_map import average_random_mapping
from ..baselines.tabu import tabu_mapping
from ..core.anytime import active_reporter
from ..core.clustered import ClusteredGraph
from ..core.evaluate import total_time
from ..core.ideal import lower_bound
from ..core.mapper import CriticalEdgeMapper
from ..core.multilevel import multilevel_map
from ..topology.base import SystemGraph
from ..utils import MappingError, Stopwatch
from .outcome import MapOutcome
from .registry import register_mapper

__all__ = [
    "CriticalEdgeAdapter",
    "RandomMappingAdapter",
    "BokhariAdapter",
    "LeeAggarwalAdapter",
    "AnnealingAdapter",
    "QuenchingAdapter",
    "GeneticAdapter",
    "TabuAdapter",
    "MultilevelAdapter",
    "PortfolioAdapter",
]


@register_mapper("critical")
class CriticalEdgeAdapter:
    """The paper's critical-edge strategy (initial assignment + refinement)."""

    def __init__(
        self,
        refinement: str = "random",
        refinement_trials: int | None = None,
        use_critical_guidance: bool = True,
        propagate_through_intra: bool = True,
        tie_break: str = "affinity",
    ) -> None:
        self.refinement = refinement
        self.refinement_trials = refinement_trials
        self.use_critical_guidance = use_critical_guidance
        self.propagate_through_intra = propagate_through_intra
        self.tie_break = tie_break

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        with Stopwatch() as sw:
            result = CriticalEdgeMapper(
                refinement=self.refinement,
                refinement_trials=self.refinement_trials,
                use_critical_guidance=self.use_critical_guidance,
                propagate_through_intra=self.propagate_through_intra,
                tie_break=self.tie_break,
                rng=rng,
            ).map(clustered, system)
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=result.total_time,
            lower_bound=result.lower_bound,
            evaluations=result.refinement.trials,
            reached_lower_bound=result.is_provably_optimal,
            wall_time=sw.elapsed,
            extras={"initial_total_time": float(result.initial_total_time)},
        )


@register_mapper("random")
class RandomMappingAdapter:
    """Averaged random mapping (the paper's Sec. 5 comparison baseline).

    ``total_time``/``assignment`` report the best of the ``samples``
    draws; the paper's reported *mean* lands in ``extras["mean_total_time"]``.
    """

    def __init__(self, samples: int = 20) -> None:
        self.samples = samples

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            stats = average_random_mapping(
                clustered, system, samples=self.samples, rng=rng
            )
        return MapOutcome(
            mapper=self.name,
            assignment=stats.best_assignment,
            total_time=stats.best_total_time,
            lower_bound=bound,
            evaluations=stats.samples,
            reached_lower_bound=stats.best_total_time <= bound,
            wall_time=sw.elapsed,
            extras={
                "mean_total_time": stats.mean_total_time,
                "worst_total_time": float(stats.worst_total_time),
            },
        )


@register_mapper("bokhari")
class BokhariAdapter:
    """Bokhari's cardinality hill climbing, scored on total time."""

    def __init__(
        self, restarts: int = 4, max_passes: int = 20, weighted: bool = False
    ) -> None:
        self.restarts = restarts
        self.max_passes = max_passes
        self.weighted = weighted

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            result = bokhari_mapping(
                clustered,
                system,
                rng=rng,
                restarts=self.restarts,
                max_passes=self.max_passes,
                weighted=self.weighted,
            )
            time = total_time(clustered, system, result.assignment)
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=time,
            lower_bound=bound,
            evaluations=result.evaluations,
            reached_lower_bound=time <= bound,
            wall_time=sw.elapsed,
            extras={"cardinality": float(result.cardinality)},
        )


@register_mapper("lee")
class LeeAggarwalAdapter:
    """Lee & Aggarwal's communication-cost search, scored on total time."""

    def __init__(self, restarts: int = 4, max_passes: int = 20) -> None:
        self.restarts = restarts
        self.max_passes = max_passes

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            result = lee_mapping(
                clustered,
                system,
                rng=rng,
                restarts=self.restarts,
                max_passes=self.max_passes,
            )
            time = total_time(clustered, system, result.assignment)
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=time,
            lower_bound=bound,
            evaluations=result.evaluations,
            reached_lower_bound=time <= bound,
            wall_time=sw.elapsed,
            extras={"communication_cost": float(result.cost)},
        )


class _AnnealBase:
    """Shared plumbing of the annealing and quenching adapters."""

    quench = False
    anytime_label = "total_time"

    def __init__(
        self,
        initial_temperature: float | None = None,
        cooling: float = 0.95,
        moves_per_temperature: int | None = None,
        min_temperature: float = 0.1,
    ) -> None:
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.moves_per_temperature = moves_per_temperature
        self.min_temperature = min_temperature

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            result = anneal_mapping(
                clustered,
                system,
                rng=rng,
                lower_bound=bound,
                initial_temperature=self.initial_temperature,
                cooling=self.cooling,
                moves_per_temperature=self.moves_per_temperature,
                min_temperature=self.min_temperature,
                quench=self.quench,
                reporter=active_reporter(),
            )
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=result.total_time,
            lower_bound=bound,
            evaluations=result.evaluations,
            reached_lower_bound=result.reached_lower_bound,
            wall_time=sw.elapsed,
        )


@register_mapper("annealing")
class AnnealingAdapter(_AnnealBase):
    """Classic simulated annealing on the total-time objective (ref [3])."""


@register_mapper("quenching")
class QuenchingAdapter(_AnnealBase):
    """Zero-temperature annealing, i.e. randomized hill climbing (ref [14])."""

    quench = True


@register_mapper("genetic")
class GeneticAdapter:
    """Permutation GA (order crossover, tournament selection, elitism)."""

    anytime_label = "total_time"

    def __init__(
        self,
        population: int = 30,
        generations: int = 40,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.2,
        tournament: int = 3,
    ) -> None:
        self.population = population
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.tournament = tournament

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            result = genetic_mapping(
                clustered,
                system,
                rng=rng,
                population=self.population,
                generations=self.generations,
                crossover_rate=self.crossover_rate,
                mutation_rate=self.mutation_rate,
                tournament=self.tournament,
                lower_bound=bound,
                reporter=active_reporter(),
            )
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=result.total_time,
            lower_bound=bound,
            evaluations=result.evaluations,
            reached_lower_bound=result.reached_lower_bound,
            wall_time=sw.elapsed,
            extras={"generations": float(result.generations)},
        )


@register_mapper("multilevel")
class MultilevelAdapter:
    """Coarsen–map–refine on top of any registered sub-mapper.

    Contracts the abstract cluster graph (heavy-edge matching) and the
    machine in lockstep, maps the coarsest level with the ``initial``
    sub-mapper, then projects back level by level with KL/FM-style
    communication-volume refinement (:mod:`repro.core.multilevel`).

    Parameters
    ----------
    initial:
        Registry name of the mapper that solves the coarsest level
        (validated eagerly; near-misses get a suggestion).
    initial_params:
        Constructor parameters for the sub-mapper.
    max_levels:
        Hierarchy depth cap, counting the original resolution;
        ``max_levels=1`` disables coarsening entirely, making the result
        bit-identical to running ``initial`` directly.
    min_coarse_tasks:
        Stop coarsening once a level has at most this many nodes.
    refine_passes:
        KL/FM sweeps per level during uncoarsening (0 disables
        refinement; projection alone then decides the placement).
    refine_metric:
        Registry name of the analytic metric the refinement minimizes
        (default ``"comm_volume"``, the historical objective; see
        :func:`repro.core.multilevel.refine_metric`).  Simulator-backed
        metrics are rejected eagerly.
    """

    def __init__(
        self,
        initial: str = "critical",
        initial_params: Mapping[str, object] | None = None,
        max_levels: int = 12,
        min_coarse_tasks: int = 8,
        refine_passes: int = 4,
        refine_metric: str = "comm_volume",
    ) -> None:
        from .registry import get_mapper

        if max_levels < 1:
            raise MappingError(f"max_levels must be >= 1, got {max_levels}")
        if min_coarse_tasks < 1:
            raise MappingError(
                f"min_coarse_tasks must be >= 1, got {min_coarse_tasks}"
            )
        if refine_passes < 0:
            raise MappingError(f"refine_passes must be >= 0, got {refine_passes}")
        if refine_metric != "comm_volume":
            # Validate eagerly, like the sub-mapper: unknown or
            # simulator-backed objectives fail here, not mid-batch.
            from ..metrics import METRICS

            metric = METRICS.get(refine_metric)
            if not getattr(metric, "analytic", False):
                raise MappingError(
                    f"refinement objective must be an analytic metric; "
                    f"{refine_metric!r} is simulator-backed"
                )
        self.initial = initial
        self.initial_params = dict(initial_params or {})
        self.max_levels = max_levels
        self.min_coarse_tasks = min_coarse_tasks
        self.refine_passes = refine_passes
        self.refine_metric = refine_metric
        # Build the sub-mapper eagerly: unknown names and bad parameters
        # fail here, not in a worker process mid-batch.
        self._sub = get_mapper(initial, **self.initial_params)

    @property
    def anytime_label(self) -> str:
        """Checkpoint values measure the refinement objective."""
        return self.refine_metric

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        sub_outcomes: list[MapOutcome] = []

        def initial_mapper(
            coarse_clustered: ClusteredGraph,
            coarse_system: SystemGraph,
            coarse_rng: int | np.random.Generator | None,
        ) -> object:
            outcome = self._sub.map(coarse_clustered, coarse_system, rng=coarse_rng)
            sub_outcomes.append(outcome)
            return outcome.assignment

        with Stopwatch() as sw:
            result = multilevel_map(
                clustered,
                system,
                initial_mapper,
                max_levels=self.max_levels,
                min_coarse_tasks=self.min_coarse_tasks,
                refine_passes=self.refine_passes,
                refine_metric=self.refine_metric,
                rng=rng,
                reporter=active_reporter(),
            )
            sub = sub_outcomes[0]
            # Without coarsening the sub-mapper solved the original
            # instance, so its exact makespan is reused bit-for-bit;
            # otherwise the final assignment is evaluated once at full
            # resolution.
            time = (
                total_time(clustered, system, result.assignment)
                if result.coarsened
                else sub.total_time
            )
        extras = {
            "levels": float(result.num_levels),
            "coarsest_nodes": float(result.coarsest_nodes),
            "refine_objective": float(result.comm_volume),
            "refine_probes": float(result.refine_probes),
            "refine_swaps": float(result.refine_swaps),
        }
        if self.refine_metric == "comm_volume":
            # Historical key: the objective *is* the communication volume.
            extras["comm_volume"] = float(result.comm_volume)
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=time,
            lower_bound=bound,
            evaluations=sub.evaluations + result.refine_probes,
            reached_lower_bound=time <= bound,
            wall_time=sw.elapsed,
            extras=extras,
        )


@register_mapper("tabu")
class TabuAdapter:
    """Best-improvement tabu search over pairwise swaps."""

    anytime_label = "total_time"

    def __init__(self, iterations: int = 40, tenure: int | None = None) -> None:
        self.iterations = iterations
        self.tenure = tenure

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        bound = lower_bound(clustered)
        with Stopwatch() as sw:
            result = tabu_mapping(
                clustered,
                system,
                rng=rng,
                iterations=self.iterations,
                tenure=self.tenure,
                lower_bound=bound,
                reporter=active_reporter(),
            )
        return MapOutcome(
            mapper=self.name,
            assignment=result.assignment,
            total_time=result.total_time,
            lower_bound=bound,
            evaluations=result.evaluations,
            reached_lower_bound=result.reached_lower_bound,
            wall_time=sw.elapsed,
            extras={"iterations": float(result.iterations)},
        )


@register_mapper("portfolio")
class PortfolioAdapter:
    """Race K configured mappers; return the winner's outcome.

    Arms run concurrently on the service's warm pool (or a private one
    inside a worker), stream anytime checkpoints, and dominated arms are
    stop-signaled early (:func:`repro.portfolio.racing.race`).  Kill
    decisions are keyed to checkpoint ordinals — never wall-clock — so
    the winner and the recorded diagnostics are bit-reproducible at any
    worker count, and the winner's assignment/makespan are bit-identical
    to running that arm alone with the same derived seed.

    Parameters
    ----------
    arms:
        The competitors: a list whose entries are a registry name, a
        ``{"name": ..., "params": {...}}`` mapping, or a ``(name,
        params)`` pair — at least two, and ``portfolio`` itself is
        rejected (a race must not nest a race).  The default ``"auto"``
        asks the default service's recommender for the learned best
        configurations of this instance's (workload, topology) family,
        padding with :data:`repro.portfolio.recommend.DEFAULT_ARMS` when
        history is thin; auto mode depends on mutable history, so the
        service never caches its results (``cacheable = False``).
    objective:
        What "better" means across arms: ``total_time`` (default) or
        ``comm_volume``.
    kill_ratio:
        An arm dies at a budget-doubling checkpoint when its best value
        exceeds this multiple of the best rival's (>= 1.0).
    max_auto_arms:
        Cap on history-derived arms in auto mode (>= 2).
    """

    def __init__(
        self,
        arms: object = "auto",
        objective: str = "total_time",
        kill_ratio: float = 1.5,
        max_auto_arms: int = 3,
    ) -> None:
        from ..portfolio.racing import OBJECTIVES

        if objective not in OBJECTIVES:
            raise MappingError(
                f"unknown portfolio objective {objective!r}; "
                f"available: {', '.join(OBJECTIVES)}"
            )
        if kill_ratio < 1.0:
            raise MappingError(f"kill_ratio must be >= 1.0, got {kill_ratio}")
        if max_auto_arms < 2:
            raise MappingError(f"max_auto_arms must be >= 2, got {max_auto_arms}")
        self.arms = arms if isinstance(arms, str) else self._normalize(arms)
        self.objective = objective
        self.kill_ratio = float(kill_ratio)
        self.max_auto_arms = int(max_auto_arms)
        if isinstance(self.arms, str):
            if self.arms != "auto":
                raise MappingError(
                    f"portfolio arms must be 'auto' or a list of arm specs, "
                    f"got {arms!r}"
                )
            # Auto arms come from recorded history, which changes as the
            # store grows — the service must not cache these outcomes.
            self.cacheable = False
            self._arms = None
        else:
            self._arms = self._build(self.arms)

    @staticmethod
    def _normalize(arms: object) -> list[tuple[str, dict[str, object]]]:
        """Accept the same arm spellings the scenario axes use."""
        if isinstance(arms, Mapping) or not isinstance(arms, (list, tuple)):
            raise MappingError(
                f"portfolio arms must be 'auto' or a list of arm specs, "
                f"got {arms!r}"
            )
        specs: list[tuple[str, dict[str, object]]] = []
        for choice in arms:
            if isinstance(choice, str):
                name, params = choice, {}
            elif isinstance(choice, Mapping):
                extra = sorted(set(choice) - {"name", "params"})
                if "name" not in choice or extra:
                    raise MappingError(
                        f"portfolio arm mappings need a 'name' and optional "
                        f"'params', got {dict(choice)!r}"
                    )
                name, params = choice["name"], dict(choice.get("params") or {})
            elif isinstance(choice, (list, tuple)) and len(choice) == 2:
                name, params = choice[0], dict(choice[1] or {})
            else:
                raise MappingError(
                    f"portfolio arm must be a mapper name, a name/params "
                    f"mapping, or a (name, params) pair, got {choice!r}"
                )
            if name == "portfolio":
                raise MappingError("a portfolio arm cannot itself be 'portfolio'")
            specs.append((str(name), params))
        if len(specs) < 2:
            raise MappingError(
                f"a portfolio needs at least two arms, got {len(specs)}"
            )
        return specs

    @staticmethod
    def _build(specs: list[tuple[str, dict[str, object]]]) -> list[object]:
        """Eagerly build every arm: bad names/params fail at construction."""
        from ..portfolio.racing import ArmSpec
        from .registry import get_mapper

        return [
            ArmSpec(name=name, params=params, mapper=get_mapper(name, **params))
            for name, params in specs
        ]

    def _auto_arms(
        self, clustered: ClusteredGraph, system: SystemGraph
    ) -> list[object]:
        """Arms for this instance's family key, mined from history."""
        from ..portfolio.recommend import (
            DEFAULT_ARMS,
            arms_from_payload,
            family_of,
        )
        from ..service.service import default_service

        payload = default_service().recommend(
            family_of(clustered.graph.name), family_of(system.name)
        )
        specs = (
            arms_from_payload(payload, max_arms=self.max_auto_arms)
            if payload
            else []
        )
        named = {name for name, _params in specs}
        for name, params in DEFAULT_ARMS:
            if len(specs) >= 2:
                break
            if name not in named:
                specs.append((name, dict(params)))
        return self._build(specs)

    def map(
        self,
        clustered: ClusteredGraph,
        system: SystemGraph,
        rng: int | np.random.Generator | None = None,
    ) -> MapOutcome:
        from ..portfolio.racing import race

        with Stopwatch() as sw:
            arm_specs = (
                self._arms
                if self._arms is not None
                else self._auto_arms(clustered, system)
            )
            result = race(
                clustered,
                system,
                arm_specs,
                rng=rng,
                objective=self.objective,
                kill_ratio=self.kill_ratio,
            )
        win = result.outcome
        killed = sum(1 for arm in result.arms if arm["status"] == "killed")
        return MapOutcome(
            mapper=self.name,
            assignment=win.assignment,
            total_time=win.total_time,
            lower_bound=win.lower_bound,
            evaluations=win.evaluations,
            reached_lower_bound=win.reached_lower_bound,
            wall_time=sw.elapsed,
            extras={
                "winner_arm": float(result.winner),
                "arms_total": float(len(arm_specs)),
                "arms_killed": float(killed),
            },
            portfolio={
                "objective": self.objective,
                "kill_ratio": self.kill_ratio,
                "winner": {
                    "arm": result.winner,
                    "mapper": arm_specs[result.winner].name,
                },
                "arms": result.arms,
            },
        )
