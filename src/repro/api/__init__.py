"""Unified experiment API: five registries, one scenario spec, one sweep engine.

Every axis of a mapping experiment is addressable by name through a
:class:`~repro.api.registry.Registry`:

* **mappers** — the paper's critical-edge strategy, all seven
  baselines, and the multilevel coarsen–map–refine composition
  (``available_mappers()``: ``critical``, ``random``, ``bokhari``,
  ``lee``, ``annealing``, ``quenching``, ``genetic``, ``tabu``,
  ``multilevel``);
* **clusterers** — the np -> na partitioning stage
  (``available_clusterers()``: ``random``, ``band``, ``block``,
  ``round_robin``, ``load_balance``, ``linear``, ``edge_zero``, ``dsc``);
* **workloads** — task-graph generators (``available_workloads()``:
  ``layered_random``, ``gnp``, ``fft``, ``cholesky``, ``lu``, ...);
* **topologies** — system-graph families parsed from ``family:args``
  specs like ``"hypercube:3"`` or ``"torus2d:4x4"``
  (``available_topologies()``);
* **metrics** — mapping-quality scores of a finished assignment, both
  analytic (``comm_volume``, ``hop_bytes``, ``max_congestion``,
  ``avg_dilation``) and simulator-backed (``sim_makespan``,
  ``sim_max_link_utilization``, ``sim_fifo_stall_time``); see
  :mod:`repro.metrics` (``available_metrics()``).  Scenarios request
  them with ``metrics=[...]`` and sweeps record/aggregate them.

One mapper on one instance::

    from repro.api import solve
    outcome = solve(graph, clustering, system, mapper="critical", rng=7)

A whole experiment grid, declaratively::

    from repro.api import Scenario, run_scenarios, format_sweep
    scenarios = Scenario.grid(
        workload=[{"name": "fft", "params": {"points_log2": 4}}, "cholesky"],
        clustering=["random", "dsc"],
        topology=["hypercube:3", "mesh2d:3x3"],
        mapper=["critical", "tabu"],
        seed=7, replicas=2,
    )
    result = run_scenarios(scenarios, out="results.jsonl", max_workers=4)
    print(format_sweep(result.records))

Layers:

* :mod:`~repro.api.outcome` — the frozen :class:`MapOutcome` every mapper
  returns;
* :mod:`~repro.api.registry` — the generic :class:`Registry` plus the
  :class:`Mapper` protocol and the mapper registry;
* :mod:`~repro.api.components` — the clusterer / workload / topology
  registries and the ``family:args`` topology-spec grammar;
* :mod:`~repro.api.adapters` — the built-in mapper registrations (the
  wrapped functions keep working unchanged);
* :mod:`~repro.api.facade` — ``solve()`` / ``solve_instance()``;
* :mod:`~repro.api.batch` — ``solve_many()`` / ``compare()`` with
  process parallelism and per-item seed derivation;
* :mod:`~repro.api.scenario` — the declarative :class:`Scenario` spec,
  dict/JSON round-tripping, and grid expansion;
* :mod:`~repro.api.sweep` — ``run_scenarios()``: resumable JSONL
  streaming on the shared process-pool engine, plus the paper-style
  aggregation.
"""

from . import adapters as _adapters  # noqa: F401 - imported for registration
from .batch import (
    ProblemInstance,
    compare,
    derive_seed,
    iter_item_outcomes,
    params_tag,
    solve_many,
)
from .components import (
    CLUSTERERS,
    TOPOLOGIES,
    WORKLOADS,
    available_clusterers,
    available_topologies,
    available_workloads,
    build_topology,
    build_workload,
    get_clusterer,
    get_workload,
    parse_topology_spec,
    register_clusterer,
    register_topology,
    register_workload,
    registry_listing,
)
from .facade import format_comparison, solve, solve_instance
from .outcome import MapOutcome
from .registry import (
    MAPPERS,
    DuplicateComponentError,
    DuplicateMapperError,
    Mapper,
    Registry,
    RegistryError,
    UnknownComponentError,
    UnknownMapperError,
    available_mappers,
    get_mapper,
    register_mapper,
)
from .scenario import Scenario, ScenarioError, expand_spec, load_spec
from .sweep import (
    SweepResult,
    derive_run_seeds,
    format_sweep,
    run_key,
    run_scenario_once,
    run_scenarios,
    summarize_sweep,
)

# The metric axis lives in its own package (it depends on the simulator
# stack); imported last so repro.api.registry is fully initialized first.
from ..metrics import (  # noqa: E402
    METRICS,
    DuplicateMetricError,
    Metric,
    UnknownMetricError,
    available_metrics,
    evaluate_metrics,
    get_metric,
    register_metric,
)

__all__ = [
    "CLUSTERERS",
    "DuplicateComponentError",
    "DuplicateMapperError",
    "DuplicateMetricError",
    "MAPPERS",
    "METRICS",
    "MapOutcome",
    "Mapper",
    "Metric",
    "ProblemInstance",
    "Registry",
    "RegistryError",
    "Scenario",
    "ScenarioError",
    "SweepResult",
    "TOPOLOGIES",
    "UnknownComponentError",
    "UnknownMapperError",
    "UnknownMetricError",
    "WORKLOADS",
    "available_clusterers",
    "available_mappers",
    "available_metrics",
    "available_topologies",
    "available_workloads",
    "build_topology",
    "build_workload",
    "compare",
    "derive_run_seeds",
    "derive_seed",
    "evaluate_metrics",
    "expand_spec",
    "format_comparison",
    "format_sweep",
    "get_clusterer",
    "get_mapper",
    "get_metric",
    "get_workload",
    "iter_item_outcomes",
    "load_spec",
    "params_tag",
    "parse_topology_spec",
    "register_clusterer",
    "register_mapper",
    "register_metric",
    "register_topology",
    "register_workload",
    "registry_listing",
    "run_key",
    "run_scenario_once",
    "run_scenarios",
    "solve",
    "solve_instance",
    "solve_many",
    "summarize_sweep",
]
