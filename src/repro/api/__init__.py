"""Unified mapper API: one protocol, one result type, one registry.

Every mapping algorithm in the repo — the paper's critical-edge strategy
and all seven baselines — is reachable by name through this package::

    from repro.api import solve, compare, available_mappers

    outcome = solve(graph, clustering, system, mapper="critical", rng=7)
    print(outcome.total_time, outcome.lower_bound, outcome.is_provably_optimal)

    head_to_head = compare(clustered, system, seed=7, max_workers=4)

Layers:

* :mod:`~repro.api.outcome` — the frozen :class:`MapOutcome` every mapper
  returns;
* :mod:`~repro.api.registry` — the :class:`Mapper` protocol and the
  ``name -> factory`` registry;
* :mod:`~repro.api.adapters` — the built-in registrations wrapping the
  existing mapper functions (which keep working unchanged);
* :mod:`~repro.api.facade` — ``solve()`` / ``solve_instance()``;
* :mod:`~repro.api.batch` — ``solve_many()`` / ``compare()`` with
  process parallelism and per-item seed derivation.
"""

from . import adapters as _adapters  # noqa: F401 - imported for registration
from .batch import ProblemInstance, compare, derive_seed, params_tag, solve_many
from .facade import format_comparison, solve, solve_instance
from .outcome import MapOutcome
from .registry import (
    DuplicateMapperError,
    Mapper,
    UnknownMapperError,
    available_mappers,
    get_mapper,
    register_mapper,
)

__all__ = [
    "DuplicateMapperError",
    "MapOutcome",
    "Mapper",
    "ProblemInstance",
    "UnknownMapperError",
    "available_mappers",
    "compare",
    "derive_seed",
    "params_tag",
    "format_comparison",
    "get_mapper",
    "register_mapper",
    "solve",
    "solve_instance",
    "solve_many",
]
