"""Portfolio racing and learned defaults over the mapping service.

No single mapper dominates across workload/topology families, and the
losers are pure waste when run to completion.  This package attacks the
problem from both ends:

* :mod:`~repro.portfolio.racing` — run K configured mappers ("arms") on
  the same instance concurrently, follow their anytime checkpoints
  (:mod:`repro.core.anytime`), and kill dominated arms early.  Kill
  decisions are keyed to checkpoint ordinals — never wall-clock — so
  the winner and the diagnostics are bit-reproducible at any worker
  count; the winner's outcome is bit-identical to running it alone.
* :mod:`~repro.portfolio.recommend` — mine the durable result store by
  (workload family, topology family) for per-mapper quality/time stats
  and serve the best configuration as a learned default (``GET
  /recommend``, ``mimdmap recommend``, ``portfolio(arms="auto")``).

The user-facing entry point is the registered ``portfolio`` mapper
(:class:`repro.api.adapters.PortfolioAdapter`), which flows through the
facade, scenarios, sweeps, and the service like any other mapper.
"""

from .racing import (
    OBJECTIVES,
    ArmSpec,
    ObjectiveScorer,
    RaceFold,
    RaceResult,
    arm_seeds,
    race,
)
from .recommend import (
    DEFAULT_ARMS,
    arms_from_payload,
    family_of,
    merge_payloads,
    mine_records,
)

__all__ = [
    "DEFAULT_ARMS",
    "OBJECTIVES",
    "ArmSpec",
    "ObjectiveScorer",
    "RaceFold",
    "RaceResult",
    "arm_seeds",
    "arms_from_payload",
    "family_of",
    "merge_payloads",
    "mine_records",
    "race",
]
