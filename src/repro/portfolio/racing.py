"""Race K mappers on one instance; kill dominated arms deterministically.

The controller fans the arms onto a process pool, follows each arm's
anytime checkpoint stream (:class:`~repro.core.anytime.FileReporter`),
and stop-signals arms that a deterministic *fold* declares dominated.
Two rules decide kills, both keyed to **checkpoint ordinals** — never to
wall-clock — so the verdict is a pure function of the per-arm value
streams and is bit-identical at any worker count or scheduling order:

* **finish dominance** (every ordinal): an arm still running at ordinal
  ``b`` dies if some arm that already *finished its whole stream before
  b* ended with a strictly better objective — the racer can never beat
  a finished rival it is already behind.
* **ratio kill** (ordinals 1, 2, 4, 8, ... — successive-halving budget
  doubling): an arm dies when its best-so-far exceeds ``kill_ratio``
  times the best rival value at the same ordinal.

The minimum-valued arm at an ordinal is never killed, so the race always
keeps a survivor; never-killed arms are never stop-signaled, so the
winner's outcome is bit-identical to running that arm alone.  Arms that
emit no checkpoints (constructive mappers like ``critical``) simply
block the fold until they finish — deterministic, at the cost of no
early kills against them until their final value exists.

The physical stop signal is an optimization only: an arm the fold kills
after it already finished is still *recorded* as killed, which is what
keeps the diagnostics byte-stable across timings.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.abstract import AbstractGraph
from ..core.anytime import FileReporter, use_reporter
from ..core.assignment import Assignment
from ..core.clustered import ClusteredGraph
from ..core.evaluate import total_time
from ..topology.base import SystemGraph
from ..utils import MappingError, as_rng

__all__ = [
    "OBJECTIVES",
    "ArmSpec",
    "ObjectiveScorer",
    "RaceFold",
    "RaceResult",
    "arm_seeds",
    "race",
]

#: Racing objectives: what "better" means across arms.
OBJECTIVES = ("total_time", "comm_volume")


@dataclass(frozen=True)
class ArmSpec:
    """One competitor: a built mapper plus the config that names it."""

    name: str
    params: dict[str, Any]
    mapper: Any  # a built Mapper (picklable, ships to the pool)


@dataclass(frozen=True)
class RaceResult:
    """The deterministic outcome of one race."""

    winner: int
    outcome: Any  # the winner's MapOutcome, bit-identical to a solo run
    arms: list[dict[str, Any]]  # JSON-ready per-arm diagnostics


class ObjectiveScorer:
    """Score assignments/outcomes under one racing objective.

    ``comm_volume`` uses the closed form ``sum of W[a,b] * dist(host a,
    host b)`` over unordered cluster pairs (``W`` the symmetric abstract
    weights), which equals both
    ``Schedule.communication_volume()`` and the multilevel refinement's
    :class:`~repro.core.incremental.CommVolumeDelta` aggregate — so
    checkpoint values labeled ``comm_volume`` and re-scored assignments
    live on the same scale.
    """

    def __init__(
        self, clustered: ClusteredGraph, system: SystemGraph, objective: str
    ) -> None:
        if objective not in OBJECTIVES:
            raise MappingError(
                f"unknown racing objective {objective!r}; "
                f"available: {', '.join(OBJECTIVES)}"
            )
        self.objective = objective
        self._clustered = clustered
        self._system = system
        if objective == "comm_volume":
            self._weights = AbstractGraph(clustered).weights
            self._dist = system.shortest

    def score_assignment(self, assignment: Assignment) -> float:
        if self.objective == "comm_volume":
            place = assignment.placement
            hops = self._dist[np.ix_(place, place)]
            return float(int((self._weights * hops).sum()) // 2)
        return float(total_time(self._clustered, self._system, assignment))

    def score_outcome(self, outcome: Any) -> float:
        if self.objective == "total_time":
            return float(outcome.total_time)
        return self.score_assignment(outcome.assignment)


class RaceFold:
    """Kill decisions as a pure fold over per-arm checkpoint streams.

    Feed checkpoints with :meth:`add_checkpoint` (in per-arm stream
    order), mark ended streams with :meth:`set_final` (successful, with
    the final objective value) or :meth:`set_failed`, and call
    :meth:`advance` whenever new data arrived.  ``advance`` processes
    frontier ordinals as they become *evaluable* — every active arm
    either has a value at the ordinal or is known to have ended before
    it — so the sequence of kills depends only on the streams, not on
    arrival timing.
    """

    def __init__(self, num_arms: int, kill_ratio: float) -> None:
        if num_arms < 2:
            raise MappingError(f"a race needs >= 2 arms, got {num_arms}")
        if kill_ratio < 1.0:
            raise MappingError(f"kill_ratio must be >= 1.0, got {kill_ratio}")
        self.kill_ratio = float(kill_ratio)
        self.values: list[list[float]] = [[] for _ in range(num_arms)]
        self.final: list[float | None] = [None] * num_arms
        self.ended = [False] * num_arms  # stream complete (success or failure)
        self.active = set(range(num_arms))
        self.killed_at: dict[int, int] = {}
        self.killed_value: dict[int, float] = {}
        self.frontier = 1

    def add_checkpoint(self, arm: int, value: float) -> None:
        self.values[arm].append(float(value))

    def set_final(self, arm: int, value: float) -> None:
        self.final[arm] = float(value)
        self.ended[arm] = True

    def set_failed(self, arm: int) -> None:
        self.ended[arm] = True  # final stays None: no value, no dominance

    def _evaluable(self, b: int) -> bool:
        return all(
            len(self.values[arm]) >= b or self.ended[arm] for arm in self.active
        )

    def advance(self) -> list[int]:
        """Process every evaluable frontier ordinal; return new kills."""
        newly: list[int] = []
        while len(self.active) > 1 and self._evaluable(self.frontier):
            b = self.frontier
            # Failed arms whose stream ended before b leave the race
            # silently: they contribute their checkpoints while alive
            # but have no final value to dominate with.
            for arm in sorted(self.active):
                if (
                    len(self.values[arm]) < b
                    and self.ended[arm]
                    and self.final[arm] is None
                ):
                    self.active.discard(arm)
            if len(self.active) <= 1:
                break
            alive = sorted(self.active)
            vals = {
                a: (
                    self.values[a][b - 1]
                    if len(self.values[a]) >= b
                    else self.final[a]
                )
                for a in alive
            }
            # Arms whose streams all ended before b can never be killed
            # (nothing new will ever arrive): the fold is done.
            killable = [a for a in alive if len(self.values[a]) >= b]
            if not killable:
                break
            kills: set[int] = set()
            finished_short = [a for a in alive if len(self.values[a]) < b]
            if finished_short:
                best_final = min(vals[a] for a in finished_short)
                for a in killable:
                    if best_final < vals[a]:
                        kills.add(a)
            if b & (b - 1) == 0:  # ratio kills at ordinals 1, 2, 4, 8, ...
                for a in killable:
                    rival = min(vals[o] for o in alive if o != a)
                    if vals[a] > self.kill_ratio * rival:
                        kills.add(a)
            # The best arm at this ordinal always survives (ties keep
            # the lowest index), so the race cannot kill everyone.
            kills.discard(min(alive, key=lambda a: (vals[a], a)))
            for a in sorted(kills):
                self.active.discard(a)
                self.killed_at[a] = b
                self.killed_value[a] = vals[a]
                newly.append(a)
            self.frontier += 1
        return newly


#: Instances shared with forked arm workers (copy-on-write) and cached
#: by pickle-loading workers; keyed by the race tmpdir, which is unique
#: per race.  Loaders keep at most one entry so long-lived pool workers
#: never accumulate instances across races.
_INSTANCES: dict[str, tuple[ClusteredGraph, SystemGraph]] = {}


@dataclass(frozen=True)
class _ArmTask:
    """Everything one pool worker needs to run an arm (all picklable).

    The instance itself is deliberately *not* a field: a 5k-task
    clustered graph pickles to hundreds of MB, and ``executor.submit``
    would serialize it once per arm.  Arms resolve it instead via
    ``instance_key`` — found in :data:`_INSTANCES` when the worker was
    forked from the racing process (copy-on-write, zero serialization),
    loaded once from ``instance_path`` otherwise.
    """

    index: int
    mapper: Any
    instance_key: str
    instance_path: str
    seed: int
    checkpoint_path: str
    stop_path: str
    label: str


def _run_arm(task: _ArmTask):
    """Pool-side arm entry point: install the reporter, run the mapper.

    The reporter is installed process-wide (:func:`use_reporter`) rather
    than passed through ``map()`` because the mapper protocol's
    signature is fixed; the adapters read it back and thread it into
    their underlying algorithms.
    """
    instance = _INSTANCES.get(task.instance_key)
    if instance is None:
        with open(task.instance_path, "rb") as fh:
            instance = pickle.load(fh)
        # Single-slot cache: the sibling arm on this worker skips the
        # load, but a later race's instance evicts this one.
        _INSTANCES.clear()
        _INSTANCES[task.instance_key] = instance
    clustered, system = instance
    reporter = FileReporter(task.checkpoint_path, task.stop_path, task.label)
    with use_reporter(reporter):
        return task.mapper.map(clustered, system, rng=task.seed)


def arm_seeds(rng, count: int) -> list[int]:
    """Independent per-arm seeds from one root, stable across runs.

    An integer root is used as-is (the cacheable path: same seed in,
    same race out); a generator or ``None`` draws one root first.
    """
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        root = int(rng)
    else:
        root = int(as_rng(rng).integers(0, 2**63))
    return [
        int(
            np.random.SeedSequence([root % 2**64, index]).generate_state(
                1, dtype=np.uint64
            )[0]
        )
        for index in range(count)
    ]


def _read_checkpoints(
    path: str, offset: int
) -> tuple[int, list[dict[str, Any]]]:
    """New *complete* checkpoint lines since ``offset``.

    The writer appends whole lines; a torn tail (a line still being
    written) is left for the next poll by advancing the offset only
    past newline-terminated data.
    """
    if not os.path.exists(path):
        return offset, []
    with open(path, "rb") as fh:
        fh.seek(offset)
        data = fh.read()
    end = data.rfind(b"\n")
    if end < 0:
        return offset, []
    complete = data[: end + 1]
    entries = [
        json.loads(line) for line in complete.decode("utf-8").splitlines() if line
    ]
    return offset + len(complete), entries


def race(
    clustered: ClusteredGraph,
    system: SystemGraph,
    arms: list[ArmSpec],
    *,
    rng=None,
    objective: str = "total_time",
    kill_ratio: float = 1.5,
    poll_interval: float = 0.01,
    executor=None,
) -> RaceResult:
    """Run every arm on ``(clustered, system)``; return the winner.

    Pool selection: by default the arms run on a private fork-context
    pool whose workers inherit the instance copy-on-write — shipping a
    5k-task clustered graph costs nothing instead of one multi-hundred-MB
    pickle per arm.  That holds wherever the race runs: in the main
    process, or inside a warm :class:`~repro.service.MappingService`
    worker (the forked arms inherit that worker's loaded modules, so
    they start warm too).  Where ``fork`` is unavailable, or when an
    explicit ``executor`` is passed, the instance is pickled *once* to a
    file in the race tmpdir and each arm loads it.  The call always
    joins every arm before returning — no orphaned workers, even on
    error.
    """
    scorer = ObjectiveScorer(clustered, system, objective)
    fold = RaceFold(len(arms), kill_ratio)
    seeds = arm_seeds(rng, len(arms))
    tmpdir = tempfile.mkdtemp(prefix="mimdmap-race-")
    instance_path = os.path.join(tmpdir, "instance.pkl")
    own_pool: ProcessPoolExecutor | None = None
    stashed = False
    # More arms than cores would just time-share: queued arms start as
    # slots free (waves).  The verdict is a pure fold over the streams,
    # so wave scheduling cannot change it — only the wall time.
    workers = max(1, min(len(arms), os.cpu_count() or 1))
    if executor is None and "fork" in multiprocessing.get_all_start_methods():
        # Stash before the pool exists: workers fork lazily on first
        # submit and inherit the entry without any serialization.
        _INSTANCES[tmpdir] = (clustered, system)
        stashed = True
        own_pool = executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context("fork"),
        )
    else:
        with open(instance_path, "wb") as fh:
            pickle.dump((clustered, system), fh, protocol=pickle.HIGHEST_PROTOCOL)
        if executor is None:
            if multiprocessing.parent_process() is None:
                # Deferred import: portfolio -> service -> api.adapters
                # -> portfolio.
                from ..service.service import default_service

                executor = default_service().executor()
            else:
                own_pool = executor = ProcessPoolExecutor(max_workers=workers)

    tasks = [
        _ArmTask(
            index=i,
            mapper=arm.mapper,
            instance_key=tmpdir,
            instance_path=instance_path,
            seed=seeds[i],
            checkpoint_path=os.path.join(tmpdir, f"arm-{i}.jsonl"),
            stop_path=os.path.join(tmpdir, f"arm-{i}.stop"),
            label=getattr(arm.mapper, "anytime_label", "total_time"),
        )
        for i, arm in enumerate(arms)
    ]
    outcomes: list[Any] = [None] * len(arms)
    errors: list[BaseException | None] = [None] * len(arms)
    futures: dict[int, Future] = {}
    try:
        for task in tasks:
            futures[task.index] = executor.submit(_run_arm, task)
        offsets = [0] * len(arms)
        pending = set(range(len(arms)))
        while pending:
            # Observe completions *before* reading files: a finished
            # arm's stream is complete on disk by the time its future
            # resolves, so the read below sees the whole stream.
            finished_now = [i for i in sorted(pending) if futures[i].done()]
            for i in finished_now:
                pending.discard(i)
                try:
                    outcomes[i] = futures[i].result()
                # An arm crash is an arm loss, not a race loss.
                # repro: allow[inv_bare_except] - recorded and folded as "failed"
                except Exception as exc:
                    errors[i] = exc
            for i in range(len(arms)):
                offsets[i], entries = _read_checkpoints(
                    tasks[i].checkpoint_path, offsets[i]
                )
                for entry in entries:
                    if i in fold.killed_at:
                        break  # values past the kill ordinal are dead weight
                    value = (
                        float(entry["value"])
                        if entry.get("label") == objective
                        else scorer.score_assignment(
                            Assignment(entry["assignment"])
                        )
                    )
                    fold.add_checkpoint(i, value)
            for i in finished_now:
                if errors[i] is not None:
                    fold.set_failed(i)
                else:
                    fold.set_final(i, scorer.score_outcome(outcomes[i]))
            for i in fold.advance():
                if i in pending:
                    # Physical stop is best-effort; the verdict stands
                    # either way.
                    with open(tasks[i].stop_path, "w", encoding="utf-8"):
                        pass
            if pending:
                time.sleep(poll_interval)
    finally:
        for task in tasks:
            # Unblock every arm that is still running before joining.
            try:
                with open(task.stop_path, "w", encoding="utf-8"):
                    pass
            except OSError:  # pragma: no cover - tmpdir vanished
                pass
        for future in futures.values():
            if not future.done():
                try:
                    future.result()
                # repro: allow[inv_bare_except] - join-only; stopped arm's outcome unused
                except Exception:
                    pass
        if own_pool is not None:
            own_pool.shutdown(wait=True)
        if stashed:
            _INSTANCES.pop(tmpdir, None)
        shutil.rmtree(tmpdir, ignore_errors=True)

    candidates = [
        i
        for i in range(len(arms))
        if i not in fold.killed_at and errors[i] is None and outcomes[i] is not None
    ]
    if not candidates:
        details = "; ".join(
            f"{arms[i].name}: {errors[i]}" for i in range(len(arms)) if errors[i]
        )
        raise MappingError(
            "every portfolio arm was killed or failed"
            + (f" ({details})" if details else "")
        )
    winner = min(candidates, key=lambda i: (fold.final[i], i))

    reports: list[dict[str, Any]] = []
    for i, arm in enumerate(arms):
        entry: dict[str, Any] = {"arm": i, "mapper": arm.name, "params": arm.params}
        if i in fold.killed_at:
            entry["status"] = "killed"
            entry["kill_iteration"] = fold.killed_at[i]
            entry["objective"] = fold.killed_value[i]
        elif errors[i] is not None:
            entry["status"] = "failed"
        else:
            entry["status"] = "won" if i == winner else "finished"
            entry["objective"] = fold.final[i]
            entry["checkpoints"] = len(fold.values[i])
        reports.append(entry)
    return RaceResult(winner=winner, outcome=outcomes[winner], arms=reports)
