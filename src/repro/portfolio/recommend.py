"""Learned defaults: mine the result store for per-family mapper stats.

Every solve the service persists durably (scenario jobs, cached instance
solves) can carry a small *meta* record — workload family, topology
family, mapper name, mapper params.  This module turns that history into
a recommendation: for a ``(workload family, topology family)`` key,
which mapper configuration has delivered the best quality, and at what
cost?

Families are the leading identifier of a component name (``"fft"`` from
``"fft"``, ``"hypercube"`` from ``"hypercube:6"``, ``"layered_random"``
from a generated graph name), so differently-sized instances of the
same shape pool their evidence.

Candidates are grouped by ``(mapper, canonical params)`` and ranked by
mean percent-of-bound (quality first), then mean wall time (cheapest of
equals), then name — a deterministic total order.  The ranked list is
served by ``GET /recommend`` and ``mimdmap recommend``, aggregated
across shards by the gateway (:func:`merge_payloads`), and consumed by
``portfolio(arms="auto")`` (:func:`arms_from_payload`).
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable

__all__ = [
    "DEFAULT_ARMS",
    "arms_from_payload",
    "family_of",
    "merge_payloads",
    "mine_records",
]

#: The no-history fallback for ``portfolio(arms="auto")``: one cheap
#: constructive arm, one refinement arm, one metaheuristic arm.
DEFAULT_ARMS: tuple[tuple[str, dict[str, Any]], ...] = (
    ("critical", {}),
    ("multilevel", {}),
    ("annealing", {}),
)

_FAMILY = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def family_of(name: str) -> str:
    """The leading identifier of a component name — its family key."""
    match = _FAMILY.match(str(name))
    return match.group(0) if match else str(name)


def _canon(params: Any) -> str:
    """Canonical JSON of a params dict — the grouping/merge key."""
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except TypeError:
        return repr(params)


def _rank_key(candidate: dict[str, Any]) -> tuple:
    return (
        candidate["mean_percent_of_bound"],
        candidate["mean_wall_time"],
        candidate["mapper"],
        _canon(candidate["params"]),
    )


def _payload(
    workload: str, topology: str, candidates: list[dict[str, Any]]
) -> dict[str, Any]:
    candidates.sort(key=_rank_key)
    return {
        "workload": workload,
        "topology": topology,
        "samples": sum(c["samples"] for c in candidates),
        "recommendation": candidates[0],
        "alternatives": candidates[1:],
    }


def mine_records(
    records: Iterable[tuple[str, dict[str, Any], dict[str, Any] | None]],
    workload: str,
    topology: str,
) -> dict[str, Any] | None:
    """Aggregate store records matching the family key into a payload.

    ``records`` yields ``(fingerprint, outcome dict, meta dict or
    None)`` — :meth:`repro.service.store.ResultStore.iter_records`.
    Records without meta (pre-meta stores, instance solves that bypassed
    the family plumbing) are skipped; ``None`` means no evidence at all
    (the HTTP layer's 404).
    """
    wf, tf = family_of(workload), family_of(topology)
    groups: dict[tuple[str, str], dict[str, Any]] = {}
    for _fingerprint, outcome, meta in records:
        if not meta:
            continue
        if family_of(meta.get("workload", "")) != wf:
            continue
        if family_of(meta.get("topology", "")) != tf:
            continue
        mapper = meta.get("mapper") or outcome.get("mapper")
        if not mapper:
            continue
        params = dict(meta.get("params") or {})
        group = groups.setdefault(
            (mapper, _canon(params)),
            {"mapper": mapper, "params": params, "samples": 0, "pob": 0.0, "wall": 0.0},
        )
        total = float(outcome.get("total_time", 0))
        bound = float(outcome.get("lower_bound", 0))
        group["samples"] += 1
        group["pob"] += 100.0 * total / bound if bound > 0 else 100.0
        group["wall"] += float(outcome.get("wall_time", 0.0))
    if not groups:
        return None
    candidates = [
        {
            "mapper": g["mapper"],
            "params": g["params"],
            "samples": g["samples"],
            "mean_percent_of_bound": g["pob"] / g["samples"],
            "mean_wall_time": g["wall"] / g["samples"],
        }
        for g in groups.values()
    ]
    return _payload(wf, tf, candidates)


def merge_payloads(
    payloads: Iterable[dict[str, Any] | None],
) -> dict[str, Any] | None:
    """Merge per-shard ``/recommend`` payloads into one fleet answer.

    Candidates with the same ``(mapper, canonical params)`` combine via
    sample-weighted means, so a shard with 100 observations outweighs a
    shard with 2.  ``None``/empty payloads contribute nothing; all-empty
    merges return ``None``.
    """
    merged: dict[tuple[str, str], dict[str, Any]] = {}
    workload = topology = ""
    for payload in payloads:
        if not payload:
            continue
        workload = payload.get("workload", workload)
        topology = payload.get("topology", topology)
        candidates = [payload.get("recommendation")] + list(
            payload.get("alternatives", [])
        )
        for c in candidates:
            if not c:
                continue
            params = dict(c.get("params") or {})
            group = merged.setdefault(
                (c["mapper"], _canon(params)),
                {
                    "mapper": c["mapper"],
                    "params": params,
                    "samples": 0,
                    "pob": 0.0,
                    "wall": 0.0,
                },
            )
            weight = max(1, int(c.get("samples", 1)))
            group["samples"] += weight
            group["pob"] += weight * float(c.get("mean_percent_of_bound", 100.0))
            group["wall"] += weight * float(c.get("mean_wall_time", 0.0))
    if not merged:
        return None
    candidates = [
        {
            "mapper": g["mapper"],
            "params": g["params"],
            "samples": g["samples"],
            "mean_percent_of_bound": g["pob"] / g["samples"],
            "mean_wall_time": g["wall"] / g["samples"],
        }
        for g in merged.values()
    ]
    return _payload(workload, topology, candidates)


def arms_from_payload(
    payload: dict[str, Any], max_arms: int = 3
) -> list[tuple[str, dict[str, Any]]]:
    """Turn a recommendation payload into a portfolio arm list.

    Takes the top-ranked distinct configurations (``portfolio`` itself
    excluded — a race must not nest a race), at most ``max_arms``.  The
    caller pads with :data:`DEFAULT_ARMS` when history alone yields
    fewer than two arms.
    """
    arms: list[tuple[str, dict[str, Any]]] = []
    seen: set[tuple[str, str]] = set()
    candidates = [payload.get("recommendation")] + list(
        payload.get("alternatives", [])
    )
    for c in candidates:
        if not c or c["mapper"] == "portfolio":
            continue
        params = dict(c.get("params") or {})
        key = (c["mapper"], _canon(params))
        if key in seen:
            continue
        seen.add(key)
        arms.append((c["mapper"], params))
        if len(arms) >= max_arms:
            break
    return arms
