"""Shared utilities: validation errors, RNG handling, small helpers.

The whole library follows a few conventions that these helpers enforce:

* All randomized entry points accept ``rng`` as either ``None`` (fresh
  default generator), an ``int`` seed, or a ``numpy.random.Generator``,
  and normalize it through :func:`as_rng`.  Experiments are therefore
  reproducible end to end by threading a single seed.
* Weight matrices are dense ``numpy`` arrays of dtype ``int64`` (the paper
  measures everything in integer time units); :func:`as_weight_matrix`
  normalizes user input.
* Structural problems raise :class:`GraphError` / :class:`MappingError`
  rather than generic ``ValueError`` so callers can distinguish bad input
  from library bugs.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "GraphError",
    "MappingError",
    "as_rng",
    "as_weight_matrix",
    "check_square",
    "check_permutation",
    "Stopwatch",
    "pairs",
]


class GraphError(ValueError):
    """A graph (task graph, clustering, topology, ...) is structurally invalid."""


class MappingError(ValueError):
    """An assignment or mapping request is invalid for the given graphs."""


def as_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Normalize ``rng`` to a :class:`numpy.random.Generator`.

    ``None`` gives a fresh nondeterministic generator, an ``int`` seeds a new
    generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def as_weight_matrix(data: object, n: int | None = None) -> np.ndarray:
    """Coerce ``data`` to a square ``int64`` weight matrix.

    Accepts nested sequences, numpy arrays, or dict-of-dicts
    ``{i: {j: w}}``.  Validates squareness, non-negativity, and (when ``n``
    is given) the expected size.
    """
    if isinstance(data, dict):
        if n is None:
            size = 0
            for i, row in data.items():
                size = max(size, int(i) + 1)
                for j in row:
                    size = max(size, int(j) + 1)
            n = size
        mat = np.zeros((n, n), dtype=np.int64)
        for i, row in data.items():
            for j, w in row.items():
                mat[int(i), int(j)] = int(w)
    else:
        mat = np.asarray(data, dtype=np.int64).copy()
    check_square(mat, n)
    if (mat < 0).any():
        raise GraphError("edge weights must be non-negative")
    return mat


def check_square(mat: np.ndarray, n: int | None = None) -> None:
    """Raise :class:`GraphError` unless ``mat`` is square (and ``n`` x ``n``)."""
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise GraphError(f"expected a square matrix, got shape {mat.shape}")
    if n is not None and mat.shape[0] != n:
        raise GraphError(f"expected a {n}x{n} matrix, got {mat.shape[0]}x{mat.shape[0]}")


def check_permutation(perm: Sequence[int] | np.ndarray, n: int) -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``0..n-1``; return it as an array."""
    arr = np.asarray(perm, dtype=np.int64)
    if arr.shape != (n,):
        raise MappingError(f"expected a permutation of length {n}, got shape {arr.shape}")
    if not np.array_equal(np.sort(arr), np.arange(n)):
        raise MappingError(f"not a permutation of 0..{n - 1}: {arr.tolist()}")
    return arr


class Stopwatch:
    """Tiny wall-clock stopwatch used by the experiment harness.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(10))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def pairs(items: Iterable[int]) -> Iterable[tuple[int, int]]:
    """Yield all unordered pairs ``(a, b)`` with ``a < b`` from ``items``."""
    seq = list(items)
    for idx, a in enumerate(seq):
        for b in seq[idx + 1 :]:
            yield (a, b)
