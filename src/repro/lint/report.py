"""Text and JSON reporters for lint results.

The text reporter prints one greppable line per finding
(``path:line:col: CODE[rule] severity: message``) plus a summary; the
JSON reporter emits the full machine-readable result the CI gate and
editor integrations consume.  Both take the same inputs — a
:class:`~repro.lint.engine.LintResult` and the
:class:`~repro.lint.baseline.BaselineDiff` against the active baseline —
so the two views can never disagree about what is new.
"""

from __future__ import annotations

import json
from typing import Any

from .baseline import BaselineDiff
from .engine import LintResult
from .findings import Finding
from .rules import RULES, LintRule

__all__ = ["format_text", "format_json", "rule_catalog"]

#: JSON report shape version.
REPORT_VERSION = 1


def _code_of(rule_name: str) -> str:
    """The display code of a rule (pseudo-rules fall back to LINT)."""
    if rule_name in RULES:
        factory = RULES.factory(rule_name)
        if isinstance(factory, type) and issubclass(factory, LintRule):
            return factory.code or "LINT"
    return "LINT"


def _finding_line(finding: Finding) -> str:
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{_code_of(finding.rule)}[{finding.rule}] "
        f"{finding.severity}: {finding.message}"
    )


def format_text(result: LintResult, diff: BaselineDiff) -> str:
    """Human-readable report: new findings, then the baseline summary."""
    lines = [_finding_line(f) for f in diff.new]
    if lines:
        lines.append("")
    summary = (
        f"{len(result.files)} file(s) checked, "
        f"{len(diff.new)} new finding(s), "
        f"{diff.matched} baselined"
    )
    if diff.stale:
        summary += f", {len(diff.stale)} stale baseline entry(ies)"
    lines.append(summary)
    if diff.stale:
        lines.append(
            "stale entries no longer match any finding — regenerate with "
            "'mimdmap lint --update-baseline' to retire them"
        )
    return "\n".join(lines)


def format_json(result: LintResult, diff: BaselineDiff) -> str:
    """Machine-readable report (sorted keys, one canonical encoding)."""
    payload: dict[str, Any] = {
        "version": REPORT_VERSION,
        "files_checked": len(result.files),
        "findings": [f.to_dict() for f in result.findings],
        "new": [f.to_dict() for f in diff.new],
        "baselined": diff.matched,
        "stale": list(diff.stale),
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def rule_catalog() -> list[dict[str, str]]:
    """Every registered rule as ``{name, code, severity, summary}``."""
    catalog = []
    for name in RULES.available():
        factory = RULES.factory(name)
        assert isinstance(factory, type) and issubclass(factory, LintRule)
        catalog.append(
            {
                "name": name,
                "code": factory.code,
                "severity": factory.severity,
                "summary": factory.summary(),
            }
        )
    return catalog
