"""The lint-rule framework: rule base class, registry, and file context.

Rules are classes registered on the repo's generic
:class:`~repro.api.registry.Registry` — the same machinery that names
mappers, clusterers, workloads, topologies, and metrics names lint
rules::

    @register_rule("det_wall_clock")
    class WallClockRule(LintRule):
        code = "DET002"
        node_types = (ast.Call, ast.Attribute)
        def check(self, node, ctx): ...

A rule declares the AST node types it wants (``node_types``); the engine
walks each file's tree once and dispatches every node to the interested
rules, so adding rules does not add traversals.  ``check`` yields
``(node, message)`` pairs; the engine turns them into
:class:`~repro.lint.findings.Finding` records and applies
``# repro: allow[rule]`` suppressions.

:class:`LintContext` gives rules everything per-file: the parsed tree, a
parent map (for scope questions like "is this call inside a function
body?"), and import-alias resolution (``np.random.rand`` resolves to
``numpy.random.rand`` whatever numpy was imported as).
"""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, Iterator

from ..api.registry import (
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
)

__all__ = [
    "LintContext",
    "LintRule",
    "RULES",
    "DuplicateRuleError",
    "UnknownRuleError",
    "register_rule",
    "available_rules",
    "get_rule",
]


class DuplicateRuleError(DuplicateComponentError):
    """A lint-rule name was registered twice."""


class UnknownRuleError(UnknownComponentError):
    """A lint-rule name is not in the registry."""


#: The lint-rule axis: names -> LintRule subclasses.
RULES = Registry(
    "lint rule",
    duplicate_error=DuplicateRuleError,
    unknown_error=UnknownRuleError,
)


def register_rule(name: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`LintRule` under ``name``."""
    return RULES.register(name)


def available_rules() -> list[str]:
    """Sorted names of every registered lint rule."""
    return RULES.available()


def get_rule(name: str) -> "LintRule":
    """Instantiate the rule registered under ``name``."""
    rule = RULES.get(name)
    assert isinstance(rule, LintRule)
    return rule


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class LintContext:
    """Per-file facts shared by every rule while checking one module.

    Parameters
    ----------
    path:
        Display path of the file (posix separators); rules use it for
        path-scoped checks (the clock allowlist, the ``api/`` frozen-
        dataclass scope).
    source:
        The file's text (for snippets).
    tree:
        The parsed module.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module_aliases, self.from_imports = _collect_imports(tree)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # ------------------------------------------------------------------
    def source_line(self, lineno: int) -> str:
        """The stripped source line at 1-based ``lineno`` (or ``""``)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def path_endswith(self, suffixes: tuple[str, ...]) -> bool:
        """Does the display path end with any of the posix ``suffixes``?"""
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def has_path_segment(self, segment: str) -> bool:
        """Is ``segment`` a whole directory component of the path?"""
        return segment in self.path.split("/")[:-1]

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(id(node))

    def in_function(self, node: ast.AST) -> bool:
        """Is ``node`` nested inside any function or lambda body?"""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, _FUNCTION_NODES):
                return True
            current = self.parent(current)
        return False

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to its imported origin.

        ``np.random.rand`` resolves to ``"numpy.random.rand"`` under
        ``import numpy as np``; ``datetime.now`` resolves to
        ``"datetime.datetime.now"`` under ``from datetime import
        datetime``.  Locals and unresolvable chains give ``None``, so
        rules never mistake a local variable for a module.
        """
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def is_shadowed_builtin(self, name: str) -> bool:
        """Has an import rebound the builtin ``name`` in this module?"""
        return name in self.from_imports or name in self.module_aliases


def _collect_imports(
    tree: ast.Module,
) -> tuple[dict[str, str], dict[str, str]]:
    """Alias maps: local name -> module, and local name -> qualified name.

    Relative imports keep their leading dots (``from ..utils import
    as_rng`` -> ``"..utils.as_rng"``) so they can never collide with the
    absolute stdlib/numpy names the rules look for.
    """
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module_aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    module_aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                from_imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return module_aliases, from_imports


class LintRule:
    """Base class of every lint rule.

    Subclasses set ``code`` (the stable short id shown in reports, e.g.
    ``DET002``), ``severity``, and ``node_types``, then implement
    :meth:`check`.  The registry fills ``name`` at registration time.
    """

    #: Registry name (set by ``@register_rule``).
    name: ClassVar[str] = ""
    #: Stable short id shown in reports (``DET001`` ... ``INV004``).
    code: ClassVar[str] = ""
    #: ``"error"`` or ``"warning"`` (display only).
    severity: ClassVar[str] = "error"
    #: AST node types this rule wants to see.
    node_types: ClassVar[tuple[type[ast.AST], ...]] = ()

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(offending node, message)`` for each violation."""
        raise NotImplementedError

    @classmethod
    def summary(cls) -> str:
        """First docstring line — the catalog/`--list-rules` blurb."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""
