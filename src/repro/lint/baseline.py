"""Grandfathered-finding baselines: load, save, and diff.

A baseline is a checked-in JSON file listing findings that predate a
rule and are accepted as-is.  ``mimdmap lint --baseline FILE`` then
fails only on findings *not* in the baseline, so a new rule can ship
with the codebase still red under it, and the debt burns down visibly.

Matching is by ``(path, rule, snippet)`` — the stripped source line —
not by line number, so unrelated edits that shift code up or down do not
invalidate the baseline.  Identical lines in one file are matched by
count (two identical violations need two baseline entries).  Entries
that no longer match anything are reported as *stale* so the baseline
can be regenerated (``--update-baseline``) once the debt is paid.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..utils import MappingError
from .findings import Finding

__all__ = [
    "BaselineError",
    "BaselineDiff",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

#: Bump when the baseline encoding changes incompatibly.
BASELINE_VERSION = 1


class BaselineError(MappingError):
    """A baseline file is unreadable or malformed."""


@dataclass(frozen=True)
class BaselineDiff:
    """Result of diffing current findings against a baseline.

    ``new`` fails the lint; ``matched`` counts grandfathered findings;
    ``stale`` lists baseline entries that matched nothing (paid-off debt
    — regenerate the baseline to drop them).
    """

    new: tuple[Finding, ...]
    matched: int
    stale: tuple[dict[str, Any], ...]


def _entry_key(entry: dict[str, Any]) -> tuple[str, str, str]:
    return (str(entry["path"]), str(entry["rule"]), str(entry["snippet"]))


def load_baseline(path: str) -> list[dict[str, Any]]:
    """Parse a baseline file into its entry dicts.

    Raises :class:`BaselineError` on malformed content; ``OSError``
    propagates for unreadable files (the CLI maps it to exit 2).
    """
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline file {path!r} is not valid JSON: {exc}"
            ) from None
    if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
        raise BaselineError(
            f"baseline file {path!r} must be an object with a 'findings' list"
        )
    entries: list[dict[str, Any]] = []
    for pos, entry in enumerate(data["findings"]):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str) for k in ("path", "rule", "snippet")
        ):
            raise BaselineError(
                f"baseline file {path!r}: entry {pos} needs string "
                "'path'/'rule'/'snippet' fields"
            )
        entries.append(entry)
    return entries


def save_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count.

    Entries are sorted and the JSON is indented so baseline diffs review
    like source diffs.
    """
    entries = [
        {
            "path": f.path,
            "rule": f.rule,
            "line": f.line,
            "snippet": f.snippet,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[dict[str, Any]]
) -> BaselineDiff:
    """Split ``findings`` into new vs. grandfathered against ``entries``."""
    budget = Counter(_entry_key(entry) for entry in entries)
    new: list[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            new.append(finding)
    stale: list[dict[str, Any]] = []
    remaining = Counter(budget)
    for entry in entries:
        key = _entry_key(entry)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            stale.append(entry)
    return BaselineDiff(new=tuple(new), matched=matched, stale=tuple(stale))
