"""INV rules: API invariants the registries and the service rely on.

* Registry names are lowercase string literals at the call site, so the
  full component catalog is statically greppable and the
  :meth:`~repro.api.registry.Registry.validate_name` rule can never fail
  at import time in a worker process.
* Public ``api/`` dataclasses are frozen — the facade hands them to
  worker processes and caches; aliasing mutation would corrupt both.
* No bare or broad ``except`` — swallowed failures turn determinism
  bugs into silently wrong results.  Justified best-effort handlers
  carry a ``# repro: allow[inv_bare_except]`` comment saying why (see
  the cache-put handler in ``repro/service/service.py`` for the worked
  example).
* No lambdas or closures registered as factories — the batch engine
  ships work to a ``ProcessPoolExecutor``, and pickling a lambda or a
  nested function fails only at runtime, on the first parallel run.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from .rules import LintContext, LintRule, register_rule

__all__ = [
    "RegistryNameRule",
    "FrozenDataclassRule",
    "BareExceptRule",
    "LambdaFactoryRule",
]

#: Module-level helpers that forward to ``Registry.register``.
_REGISTER_FUNCS = frozenset(
    {
        "register_mapper",
        "register_clusterer",
        "register_workload",
        "register_topology",
        "register_metric",
        "register_rule",
    }
)

#: ``<module>.register`` attributes that are not registry registrations.
_REGISTER_NOT_REGISTRY = frozenset({"atexit.register", "codecs.register"})


def _is_register_call(node: ast.Call, ctx: LintContext) -> bool:
    """Is this call a registry registration site (``X.register`` / helpers)?"""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "register":
        return ctx.resolve(func) not in _REGISTER_NOT_REGISTRY
    return isinstance(func, ast.Name) and func.id in _REGISTER_FUNCS


def _registered_name_arg(node: ast.Call) -> ast.expr | None:
    """The name argument of a registration call, positional or keyword."""
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    return None


@register_rule("inv_registry_name")
class RegistryNameRule(LintRule):
    """Registry registrations must use lowercase string literals.

    A literal name makes the catalog greppable and guarantees
    ``Registry.validate_name`` cannot blow up at import time inside a
    worker process.  Registrations inside function bodies (the
    ``register_*`` helper definitions themselves) are out of scope.
    """

    code: ClassVar[str] = "INV001"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        if not _is_register_call(node, ctx) or ctx.in_function(node):
            return
        name_arg = _registered_name_arg(node)
        if name_arg is None:
            return
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            name = name_arg.value
            if not name or not name.islower() or not name.replace("_", "").isalnum():
                yield (
                    name_arg,
                    f"registry name {name!r} is not a lowercase identifier "
                    "([a-z0-9_]+) — Registry.validate_name will reject it",
                )
        else:
            yield (
                name_arg,
                "registry name must be a lowercase string literal, not a "
                "dynamic expression — literal names keep the catalog "
                "greppable and fail at the definition, not in a worker",
            )


@register_rule("inv_frozen_dataclass")
class FrozenDataclassRule(LintRule):
    """Public ``api/`` dataclasses must be ``@dataclass(frozen=True)``.

    The facade hands these objects to worker processes, caches, and
    stores; a mutable instance aliased across those layers is a
    cache-corruption bug waiting to happen.  Private helpers (leading
    underscore) are exempt.
    """

    code: ClassVar[str] = "INV002"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.ClassDef,)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ClassDef)
        if not ctx.has_path_segment("api") or node.name.startswith("_"):
            return
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            is_dataclass = (
                isinstance(target, ast.Name) and target.id == "dataclass"
            ) or ctx.resolve(target) == "dataclasses.dataclass"
            if not is_dataclass:
                continue
            frozen = False
            if isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        frozen = True
            if not frozen:
                yield (
                    node,
                    f"public api dataclass {node.name!r} must be "
                    "@dataclass(frozen=True): instances cross process and "
                    "cache boundaries and must not be mutable",
                )


@register_rule("inv_bare_except")
class BareExceptRule(LintRule):
    """Bare ``except:`` or broad ``except Exception`` handlers.

    Swallowing arbitrary failures converts bugs into silently wrong (and
    possibly cached) results.  Catch the narrow exceptions the guarded
    code can raise; a genuinely best-effort handler states its
    justification in a ``# repro: allow[inv_bare_except]`` comment.
    """

    code: ClassVar[str] = "INV003"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.ExceptHandler,)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield (
                node,
                "bare 'except:' swallows every failure (including "
                "KeyboardInterrupt); catch the specific exceptions the "
                "guarded code raises",
            )
            return
        exprs = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for expr in exprs:
            broad = (
                isinstance(expr, ast.Name)
                and expr.id in ("Exception", "BaseException")
            ) or ctx.resolve(expr) in ("builtins.Exception", "builtins.BaseException")
            if broad:
                yield (
                    expr,
                    "broad 'except Exception' hides real failures; narrow it "
                    "to the exceptions the guarded code raises, or justify "
                    "the best-effort handler with "
                    "'# repro: allow[inv_bare_except]'",
                )


@register_rule("inv_lambda_factory")
class LambdaFactoryRule(LintRule):
    """Lambdas or closures registered as component factories.

    The batch engine and the mapping service pickle work for a
    ``ProcessPoolExecutor``; lambdas and functions defined inside other
    functions cannot be pickled, so such a registration only fails at
    runtime on the first parallel use.  Register module-level functions
    or classes.
    """

    code: ClassVar[str] = "INV004"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (
        ast.Call,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
    )

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        message = (
            "lambda/closure registered as a factory cannot be pickled for "
            "the process pool; register a module-level function or class"
        )
        if isinstance(node, ast.Call):
            is_direct = _is_register_call(node, ctx)
            is_curried = isinstance(node.func, ast.Call) and _is_register_call(
                node.func, ctx
            )
            if not (is_direct or is_curried):
                return
            scanned = list(node.args) + [kw.value for kw in node.keywords]
            for arg in scanned:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield (sub, message)
                        break
        else:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if not ctx.in_function(node):
                return
            for dec in node.decorator_list:
                if isinstance(dec, ast.Call) and _is_register_call(dec, ctx):
                    yield (node, message)
