"""repro-lint: AST-based determinism & invariant analysis for this repo.

The repo's reproducibility guarantees — bit-identical sweeps at any
worker count, content-addressed result caching, resumable JSONL streams
— rest on coding conventions.  This package turns those conventions into
machine-checked invariants:

===========  ======================  ==========================================
Code         Rule                    Checks
===========  ======================  ==========================================
``DET001``   det_unseeded_random     no stdlib ``random`` / legacy
                                     ``np.random.*`` global-state RNG
``DET002``   det_wall_clock          clock reads only in the allowlisted
                                     timer (``repro/utils.py``)
``DET003``   det_builtin_hash        builtin ``hash()`` never feeds
                                     fingerprints or store keys
``DET004``   det_env_entropy         no ``os.environ`` / OS entropy in
                                     core paths
``DET005``   det_set_iteration       set iteration order must not escape
                                     into outcomes
``INV001``   inv_registry_name       registry names are lowercase string
                                     literals
``INV002``   inv_frozen_dataclass    public ``api/`` dataclasses are frozen
``INV003``   inv_bare_except         no bare/broad ``except`` handlers
``INV004``   inv_lambda_factory      no lambdas/closures registered as
                                     factories (process-pool pickling)
===========  ======================  ==========================================

Rules live on the same generic :class:`~repro.api.registry.Registry`
that names every other component axis.  Violations that are justified
in-process-only carry a ``# repro: allow[rule]`` comment; violations
that predate a rule live in the checked-in baseline
(``lint-baseline.json``) and burn down over time.

CLI: ``mimdmap lint [PATH ...] [--json] [--baseline FILE]
[--update-baseline] [--rules a,b] [--workers N] [--list-rules]``.
"""

from .baseline import (
    BaselineDiff,
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .engine import (
    LintResult,
    check_file,
    check_source,
    iter_python_files,
    parse_suppressions,
    run_lint,
)
from .findings import Finding
from .report import format_json, format_text, rule_catalog
from .rules import (
    RULES,
    DuplicateRuleError,
    LintContext,
    LintRule,
    UnknownRuleError,
    available_rules,
    get_rule,
    register_rule,
)

__all__ = [
    "BaselineDiff",
    "BaselineError",
    "DuplicateRuleError",
    "Finding",
    "LintContext",
    "LintResult",
    "LintRule",
    "RULES",
    "UnknownRuleError",
    "apply_baseline",
    "available_rules",
    "check_file",
    "check_source",
    "format_json",
    "format_text",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "rule_catalog",
    "run_lint",
    "save_baseline",
]
