"""The lint engine: file walking, dispatch, and suppressions.

One :func:`check_source` call parses a module once, builds the
:class:`~repro.lint.rules.LintContext`, and walks the tree once,
dispatching each node to every rule that declared interest in its type.
``# repro: allow[rule1,rule2]`` comments (on the offending line, or as a
standalone comment on the line above) suppress named rules at that
location; ``allow[*]`` suppresses everything.

:func:`run_lint` walks directories (skipping ``__pycache__``), checks
files on a process pool when ``max_workers > 1``, and returns findings
in a deterministic order — worker count changes wall time only, never
output, which is itself one of the conventions the linter enforces.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from . import rules_det as _rules_det  # noqa: F401 - imported for registration
from . import rules_inv as _rules_inv  # noqa: F401 - imported for registration
from .findings import Finding
from .rules import RULES, LintContext, LintRule

__all__ = [
    "LintResult",
    "check_source",
    "check_file",
    "iter_python_files",
    "run_lint",
    "parse_suppressions",
]

_SUPPRESS_RE = re.compile(r"repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True)
class LintResult:
    """Findings plus the files that produced them, in checked order."""

    findings: tuple[Finding, ...]
    files: tuple[str, ...]


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map comment line numbers to the rule names they allow.

    Uses :mod:`tokenize` so string literals containing the marker are
    never misread as suppressions.  A suppression applies to findings on
    its own line (inline comment) and on the following line (standalone
    comment above the statement).
    """
    allowed: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                names = {n.strip() for n in match.group(1).split(",") if n.strip()}
                allowed.setdefault(tok.start[0], set()).update(names)
    except tokenize.TokenError:  # unterminated constructs: ast.parse reports
        pass
    return allowed


def _display_path(path: str, rel_root: str | None) -> str:
    """Posix display path, relative to ``rel_root`` when possible."""
    display = path
    if rel_root is not None:
        try:
            display = os.path.relpath(path, rel_root)
        except ValueError:  # different drive (windows): keep absolute
            display = path
    return display.replace(os.sep, "/")


def _selected_rules(rule_names: Sequence[str] | None) -> list[LintRule]:
    names = list(rule_names) if rule_names is not None else RULES.available()
    rules: list[LintRule] = []
    for name in names:
        rule = RULES.get(name)
        assert isinstance(rule, LintRule)
        rules.append(rule)
    return rules


def check_source(
    source: str,
    path: str,
    rule_names: Sequence[str] | None = None,
    rel_root: str | None = None,
) -> list[Finding]:
    """Lint one module's text; returns findings sorted by location.

    Unparseable files yield a single ``parse_error`` finding instead of
    raising, so one broken file cannot hide findings in the rest of a
    run.
    """
    display = _display_path(path, rel_root)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        lines = source.splitlines()
        snippet = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        return [
            Finding(
                path=display,
                line=line,
                col=(exc.offset or 1) - 1,
                rule="parse_error",
                severity="error",
                message=f"file does not parse: {exc.msg}",
                snippet=snippet,
            )
        ]
    ctx = LintContext(display, source, tree)
    rules = _selected_rules(rule_names)
    dispatch: dict[type[ast.AST], list[LintRule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    suppressions = parse_suppressions(source)

    findings: dict[Finding, None] = {}
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for target, message in rule.check(node, ctx):
                line = int(getattr(target, "lineno", 1))
                allowed = suppressions.get(line, set()) | suppressions.get(
                    line - 1, set()
                )
                if rule.name in allowed or "*" in allowed:
                    continue
                finding = Finding(
                    path=display,
                    line=line,
                    col=int(getattr(target, "col_offset", 0)),
                    rule=rule.name,
                    severity=rule.severity,
                    message=message,
                    snippet=ctx.source_line(line),
                )
                findings[finding] = None
    return sorted(findings, key=Finding.sort_key)


def check_file(
    path: str,
    rule_names: Sequence[str] | None = None,
    rel_root: str | None = None,
) -> list[Finding]:
    """Lint one file (text read as UTF-8; ``OSError`` propagates)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return check_source(source, path, rule_names=rule_names, rel_root=rel_root)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Directories are walked recursively; ``__pycache__`` and hidden
    directories are skipped.  A path that is neither a ``.py`` file nor
    a directory raises ``FileNotFoundError`` so typos fail loudly.
    """
    out: dict[str, None] = {}
    for path in paths:
        if os.path.isfile(path):
            out[path] = None
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        out[os.path.join(dirpath, filename)] = None
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(out)


def _check_one(job: tuple[str, tuple[str, ...] | None, str | None]) -> list[Finding]:
    """Process-pool entry point: lint one file from a picklable job spec."""
    path, rule_names, rel_root = job
    return check_file(path, rule_names=rule_names, rel_root=rel_root)


def run_lint(
    paths: Iterable[str],
    rule_names: Sequence[str] | None = None,
    max_workers: int = 1,
    rel_root: str | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``max_workers > 1`` checks files on a :class:`ProcessPoolExecutor`
    (rules are looked up by name inside each worker); the returned
    findings are identical at any worker count.
    """
    files = iter_python_files(paths)
    names = tuple(rule_names) if rule_names is not None else None
    jobs = [(path, names, rel_root) for path in files]
    if max_workers > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            per_file = list(pool.map(_check_one, jobs))
    else:
        per_file = [_check_one(job) for job in jobs]
    findings = sorted(
        (finding for batch in per_file for finding in batch),
        key=Finding.sort_key,
    )
    return LintResult(
        findings=tuple(findings),
        files=tuple(_display_path(path, rel_root) for path in files),
    )
