"""The :class:`Finding` record every lint rule produces.

A finding pins one rule violation to one source location.  Findings are
value objects: frozen, ordered by ``(path, line, col, rule)``, and
round-trippable through plain dicts so the JSON reporter and the
baseline file share one encoding.

The ``snippet`` field (the stripped source line) is what the baseline
matches on instead of the line number — grandfathered findings survive
unrelated edits that merely shift code up or down (see
:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["Finding", "SEVERITIES"]

#: Recognized severities, in increasing order of concern.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Parameters
    ----------
    path:
        Display path of the offending file (posix separators, relative
        to the lint invocation's root).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Registry name of the rule that fired (e.g. ``det_wall_clock``),
        or the pseudo-rules ``parse_error`` / ``baseline_error``.
    severity:
        ``"error"`` or ``"warning"`` (display only — both fail the lint
        when new).
    message:
        Human-readable explanation of the violation.
    snippet:
        The stripped source line, used for line-number-independent
        baseline matching.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    snippet: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report order: by location, then rule name."""
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: no line numbers."""
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict encoding shared by the JSON reporter and baseline."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (extra keys are ignored)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data.get("col", 0)),
            rule=str(data["rule"]),
            severity=str(data.get("severity", "error")),
            message=str(data.get("message", "")),
            snippet=str(data.get("snippet", "")),
        )
