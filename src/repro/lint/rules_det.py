"""DET rules: the determinism conventions, machine-checked.

Every reproducibility guarantee the repo makes — bit-identical sweeps at
any worker count, content-addressed result caching, resumable JSONL
streams — rests on a handful of conventions:

* randomness comes only from ``SeedSequence``-derived numpy Generators
  (threaded through ``rng=`` arguments, normalized by
  :func:`repro.utils.as_rng`), never from process-global RNG state;
* only the :class:`repro.utils.Stopwatch` timer touches the clock;
* nothing persisted is ever keyed by builtin ``hash()`` (it depends on
  ``PYTHONHASHSEED``); persistent identity is SHA-256 of canonical JSON
  (:mod:`repro.service.fingerprint`);
* core paths read no ambient state (``os.environ``) and no OS entropy
  (``os.urandom``, ``uuid.uuid4``, ``secrets``);
* set iteration order never escapes into outcomes.

These rules turn those conventions into findings.  In-process-only
exceptions carry a ``# repro: allow[rule]`` comment explaining why (see
``Assignment.__hash__`` for the worked example).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from .rules import LintContext, LintRule, register_rule

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "BuiltinHashRule",
    "EnvEntropyRule",
    "SetIterationRule",
]

#: numpy.random attributes that are explicitly seedable (allowed).
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Files allowed to read the clock (the one sanctioned timer).
CLOCK_ALLOWLIST = ("repro/utils.py",)

#: Fully-qualified callables that read wall-clock or CPU time.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Ambient-state and OS-entropy accesses forbidden in core paths.
_ENV_ENTROPY = frozenset(
    {
        "os.environ",
        "os.getenv",
        "os.putenv",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


def _resolved_target(node: ast.AST, ctx: LintContext) -> str | None:
    """Resolve the import origin of a Call's plain-name func or an Attribute.

    Calls whose func is an ``Attribute`` are skipped here — the engine
    visits that inner ``Attribute`` node separately, so handling both
    would double-report one violation.
    """
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return ctx.resolve(node.func)
        return None
    return ctx.resolve(node)


@register_rule("det_unseeded_random")
class UnseededRandomRule(LintRule):
    """Process-global RNG use (stdlib ``random``, ``np.random.*`` legacy state).

    Stdlib ``random`` and numpy's legacy global state (``np.random.rand``,
    ``np.random.seed``, ...) are process-wide and unseeded by default, so
    results change between runs and between worker processes.  All
    randomness must flow from ``SeedSequence``-derived
    ``numpy.random.Generator`` objects threaded through ``rng=``.
    """

    code: ClassVar[str] = "DET001"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call, ast.Attribute)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        resolved = _resolved_target(node, ctx)
        if resolved is None:
            return
        if resolved == "random" or resolved.startswith("random."):
            yield (
                node,
                f"{resolved} uses the process-global stdlib RNG; derive a "
                "numpy Generator from a SeedSequence instead (see "
                "repro.utils.as_rng)",
            )
        elif resolved.startswith("numpy.random."):
            leaf = resolved.split(".")[2]
            if leaf not in _NP_RANDOM_ALLOWED:
                yield (
                    node,
                    f"{resolved} touches numpy's legacy global RNG state; "
                    "use numpy.random.default_rng / SeedSequence-derived "
                    "Generators instead",
                )


@register_rule("det_wall_clock")
class WallClockRule(LintRule):
    """Clock reads outside the allowlisted timer (``repro/utils.py``).

    Wall-clock and CPU-time reads make outputs run-dependent; only the
    :class:`repro.utils.Stopwatch` timer may touch the clock, and callers
    report elapsed time through it.
    """

    code: ClassVar[str] = "DET002"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call, ast.Attribute)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        if ctx.path_endswith(CLOCK_ALLOWLIST):
            return
        resolved = _resolved_target(node, ctx)
        if resolved in _CLOCK_CALLS:
            yield (
                node,
                f"{resolved} reads the clock outside the allowlisted timer; "
                "time through repro.utils.Stopwatch (repro/utils.py) instead",
            )


@register_rule("det_builtin_hash")
class BuiltinHashRule(LintRule):
    """Builtin ``hash()`` — ``PYTHONHASHSEED``-dependent, never persistable.

    ``hash()`` of strings and bytes changes with the interpreter's hash
    seed, so any fingerprint, cache key, or store key derived from it is
    corrupted across processes.  Persistent identity must be SHA-256 of
    canonical JSON (:mod:`repro.service.fingerprint`).  Genuinely
    in-process uses (e.g. a ``__hash__`` implementation) carry a
    ``# repro: allow[det_builtin_hash]`` comment stating that scope.
    """

    code: ClassVar[str] = "DET003"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "hash"
            and not ctx.is_shadowed_builtin("hash")
        ):
            yield (
                node,
                "builtin hash() depends on PYTHONHASHSEED and must never "
                "reach a fingerprint or store key; use SHA-256 over "
                "canonical JSON (repro.service.fingerprint), or mark "
                "in-process-only uses with '# repro: allow[det_builtin_hash]'",
            )


@register_rule("det_env_entropy")
class EnvEntropyRule(LintRule):
    """Ambient state (``os.environ``) or OS entropy in core paths.

    Environment reads make results depend on the invoking shell; OS
    entropy (``os.urandom``, ``uuid.uuid4``, ``secrets``) is
    unreproducible by construction.  Configuration enters through
    explicit parameters; randomness through seeded Generators.
    """

    code: ClassVar[str] = "DET004"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call, ast.Attribute)

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        resolved = _resolved_target(node, ctx)
        if resolved is None:
            return
        if resolved in _ENV_ENTROPY or resolved.startswith("secrets."):
            yield (
                node,
                f"{resolved} injects ambient state or OS entropy; take the "
                "value as an explicit parameter (or a seeded Generator) "
                "instead",
            )


def _is_set_expr(node: ast.AST, ctx: LintContext) -> bool:
    """Is this expression statically known to produce a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
        and not ctx.is_shadowed_builtin(node.func.id)
    )


@register_rule("det_set_iteration")
class SetIterationRule(LintRule):
    """Unsorted set iteration whose order can escape into outcomes.

    Set iteration order depends on insertion history and on the hash
    seed for str/bytes elements.  Iterating a set into an ordered
    container (a ``for`` loop, ``list()``/``tuple()``, ``str.join``, a
    comprehension) leaks that order; wrap the set in ``sorted(...)``
    first.  Order-insensitive reductions (``len``, ``sum``, ``min``,
    ``max``, ``any``, ``all``, set-to-set operations) are fine.
    """

    code: ClassVar[str] = "DET005"
    severity: ClassVar[str] = "warning"
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (
        ast.For,
        ast.ListComp,
        ast.GeneratorExp,
        ast.DictComp,
        ast.Call,
    )

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        message = (
            "iterating a set in an order-sensitive position; wrap it in "
            "sorted(...) so the order cannot depend on the hash seed"
        )
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, ctx):
                yield (node.iter, message)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, ctx):
                    yield (gen.iter, message)
        elif isinstance(node, ast.Call):
            func = node.func
            ordered_builtin = (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple")
                and not ctx.is_shadowed_builtin(func.id)
            )
            join_call = isinstance(func, ast.Attribute) and func.attr == "join"
            if (ordered_builtin or join_call) and len(node.args) == 1:
                if _is_set_expr(node.args[0], ctx):
                    yield (node.args[0], message)
