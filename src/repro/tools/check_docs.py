"""Documentation gate: link resolution + registry name coverage.

Two checks, both against the working tree (run from the repo root, as
the CI ``docs`` job does):

1. every intra-repo markdown link in ``README.md`` and ``docs/**/*.md``
   resolves — the target file exists, and a ``#fragment`` matches a
   heading anchor of the target (GitHub's slug rules);
2. every registered mapper, metric, and lint-rule name is mentioned
   somewhere under ``docs/`` — reference pages cannot silently rot as
   the registries grow.

Exit codes follow ``mimdmap lint``: 0 clean, 1 findings, 2 usage error.
No dependencies beyond the package itself.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

__all__ = ["check_docs", "main"]

# Inline markdown links: [text](target).  Good enough for this tree —
# no reference-style links are used, and code spans never contain the
# ``](`` sequence.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = "".join(c for c in text if c.isalnum() or c in " -")
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """All heading anchors of one markdown file (with -N dedup suffixes)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = _slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _markdown_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").rglob("*.md"))
    return [f for f in files if f.is_file()]


def _iter_links(path: Path) -> list[str]:
    links: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links += _LINK_RE.findall(line)
    return links


def _check_links(root: Path, problems: list[str]) -> None:
    anchor_cache: dict[Path, set[str]] = {}
    for source in _markdown_files(root):
        rel_source = source.relative_to(root)
        for target in _iter_links(source):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (
                source if not path_part else (source.parent / path_part).resolve()
            )
            if not resolved.is_file():
                problems.append(f"{rel_source}: broken link -> {target}")
                continue
            if not fragment:
                continue
            if resolved.suffix != ".md":
                problems.append(
                    f"{rel_source}: fragment on non-markdown target -> {target}"
                )
                continue
            anchors = anchor_cache.get(resolved)
            if anchors is None:
                anchors = anchor_cache[resolved] = _anchors(resolved)
            if fragment not in anchors:
                problems.append(f"{rel_source}: missing anchor -> {target}")


def _check_names(root: Path, problems: list[str]) -> None:
    from ..api import MAPPERS, METRICS
    from ..lint import available_rules

    corpus = "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted((root / "docs").rglob("*.md"))
    )
    required = [
        ("mapper", name) for name in MAPPERS.available()
    ] + [
        ("metric", name) for name in METRICS.available()
    ] + [
        ("lint rule", name) for name in available_rules()
    ]
    for kind, name in required:
        if re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])", corpus):
            continue
        problems.append(f"docs/: registered {kind} {name!r} is never mentioned")


def check_docs(root: Path) -> list[str]:
    """All documentation problems under ``root`` (empty when clean)."""
    problems: list[str] = []
    if not (root / "README.md").is_file() or not (root / "docs").is_dir():
        raise FileNotFoundError(
            f"{root} does not look like the repo root (need README.md and docs/)"
        )
    _check_links(root, problems)
    _check_names(root, problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=".",
        help="repo root holding README.md and docs/ (default: cwd)",
    )
    args = parser.parse_args(argv)
    try:
        problems = check_docs(Path(args.root).resolve())
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print("docs clean: links resolve, registry names covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
