"""Repo maintenance tools (run with ``python -m repro.tools.<name>``).

These are development-side scripts that ship with the package so CI can
run them without a separate toolchain; they are not part of the mapping
API surface.
"""
