"""Scale benchmark: the array-native core on 100k-task instances.

Times the full large-instance pipeline — layered random DAG generation,
clustering, the lower bound, the multilevel mapper, and the makespan
evaluation — at sizes far beyond the paper's 30-300 tasks, on the
``hypercube:10`` (1024-processor) machine.  Everything runs on the CSR /
schedule-plan fast paths: no O(n^2) matrix is ever materialized.

Two modes:

* default — one row per ``--sizes`` entry (10k-100k tasks), recording
  ``benchmarks/results/bench_scale.txt``.
* ``--smoke`` — the pinned CI instance (100k tasks on ``hypercube:10``)
  plus a randomized python-vs-array backend equivalence sweep across
  the topology registry (``DeltaEvaluator`` probe/apply/revert stacks
  and ``CommVolumeDelta`` swap sequences must agree bit for bit; any
  disagreement is a ``failures`` count that fails the CI gate).  With
  ``--json-out FILE`` it emits the machine-readable report that
  ``benchmarks/check_budgets.py`` checks against the ``scale`` entry in
  ``benchmarks/budgets.json``.

Run from the repo root::

    python benchmarks/bench_scale.py                  # full table
    python benchmarks/bench_scale.py --sizes 10000,100000
    python benchmarks/bench_scale.py --smoke --json-out BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import build_topology, get_mapper
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph
from repro.core.evaluate import total_time
from repro.core.ideal import lower_bound
from repro.core.incremental import CommVolumeDelta, DeltaEvaluator
from repro.core.multilevel import abstract_taskgraph
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_scale.txt"

#: Topology specs for the backend-equivalence sweep (one per family of
#: the registry exercised by the mapping tests; all sized so na = ns).
EQUIVALENCE_TOPOLOGIES = [
    "hypercube:4",
    "mesh2d:4x4",
    "torus2d:4x4",
    "btree:3",
    "ring:12",
    "chordal:16x5",
]


def comm_volume(clustered, system, assignment) -> int:
    """Hop-weighted communication volume, straight off the cross-edge
    arrays (no dense matrix)."""
    labels = clustered.clustering.labels
    hosts = assignment.placement[labels]
    srcs, dsts, _ = clustered.graph.edge_arrays()
    w = clustered.cross_out_weights
    return int((w * system.shortest[hosts[srcs], hosts[dsts]]).sum())


def run_instance(num_tasks: int, topology: str, seed: int) -> dict:
    """Time every stage of the large-instance pipeline once."""
    t0 = time.perf_counter()
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    t1 = time.perf_counter()
    system = build_topology(topology)
    _ = system.shortest  # the all-pairs table, charged to setup
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    clustered = ClusteredGraph(graph, clustering)
    t2 = time.perf_counter()
    bound = lower_bound(clustered)
    t3 = time.perf_counter()
    mapper = get_mapper("multilevel")
    outcome = mapper.map(clustered, system, rng=seed)
    t4 = time.perf_counter()
    makespan = total_time(clustered, system, outcome.assignment)
    volume = comm_volume(clustered, system, outcome.assignment)
    t5 = time.perf_counter()
    return {
        "tasks": num_tasks,
        "edges": int(graph.num_edges),
        "generate_seconds": t1 - t0,
        "setup_seconds": t2 - t1,
        "bound_seconds": t3 - t2,
        "map_seconds": t4 - t3,
        "eval_seconds": t5 - t4,
        "lower_bound": int(bound),
        "total_time": int(makespan),
        "comm_volume": int(volume),
    }


def format_row(topology: str, row: dict) -> str:
    return (
        f"  {row['tasks']:>7} tasks ({row['edges']:>7} edges) on {topology}: "
        f"gen={row['generate_seconds']:.2f}s setup={row['setup_seconds']:.2f}s "
        f"bound={row['bound_seconds']:.2f}s map={row['map_seconds']:.2f}s "
        f"eval={row['eval_seconds']:.2f}s | lb={row['lower_bound']} "
        f"total={row['total_time']} comm={row['comm_volume']}"
    )


def _random_assignment(ns: int, rng: np.random.Generator):
    from repro.core.assignment import Assignment

    return Assignment.from_placement(rng.permutation(ns))


def backend_equivalence(seed: int) -> tuple[int, int, int]:
    """Randomized python-vs-array equivalence across the topology registry.

    For each topology: one small layered instance, then a mixed sequence
    of ``probe_swap`` / ``probe_move`` / ``apply_swap`` / ``revert`` /
    ``swap`` / ``evaluate`` calls driven through a python-backend and an
    array-backend :class:`DeltaEvaluator` in lockstep, plus a
    :class:`CommVolumeDelta` swap walk on the abstract cluster graph.
    Returns ``(cases, moves, failures)``; every mismatch of makespan,
    comm volume, or placement counts as a failure.
    """
    rng = np.random.default_rng(seed)
    cases = moves = failures = 0
    for spec in EQUIVALENCE_TOPOLOGIES:
        system = build_topology(spec)
        ns = system.num_nodes
        graph = layered_random_dag(30 * ns, rng=int(rng.integers(2**31)))
        clustering = RandomClusterer(ns).cluster(graph, rng=int(rng.integers(2**31)))
        clustered = ClusteredGraph(graph, clustering)
        start = _random_assignment(ns, rng)
        py = DeltaEvaluator(clustered, system, start, backend="python")
        ar = DeltaEvaluator(clustered, system, start, backend="array")
        depth = 0
        for _ in range(120):
            a, b = int(rng.integers(ns)), int(rng.integers(ns))
            op = rng.integers(6)
            if op == 0:
                same = py.probe_swap(a, b) == ar.probe_swap(a, b)
            elif op == 1:
                same = py.probe_move(a, b) == ar.probe_move(a, b)
            elif op == 2:
                same = py.apply_swap(a, b) == ar.apply_swap(a, b)
                depth += 1
            elif op == 3 and depth:
                same = py.revert() == ar.revert()
                depth -= 1
            elif op == 4:
                same = py.swap(a, b) == ar.swap(a, b)
                depth = 0
            else:
                other = _random_assignment(ns, rng)
                same = py.evaluate(other) == ar.evaluate(other)
                depth = 0
            moves += 1
            if not same:
                failures += 1
        if not (
            py.total_time == ar.total_time
            and py.comm_volume == ar.comm_volume
            and np.array_equal(py.assignment.placement, ar.assignment.placement)
            and ar.verify()
        ):
            failures += 1
        # CommVolumeDelta walk on the abstract cluster graph.
        ag = abstract_taskgraph(clustered)
        sym = ag.prob_edge + ag.prob_edge.T
        start = _random_assignment(ns, rng)
        cv_py = CommVolumeDelta(sym, system, start, backend="python")
        cv_ar = CommVolumeDelta(sym, system, start, backend="array")
        for _ in range(80):
            a, b = int(rng.integers(ns)), int(rng.integers(ns))
            if a != b and cv_ar.supports_bulk:
                bulk = cv_ar.delta_swaps(a, np.array([cv_ar.host(b)]))
                if int(bulk[0]) != cv_py.delta_swap(a, b):
                    failures += 1
            if cv_py.swap(a, b) != cv_ar.swap(a, b):
                failures += 1
            moves += 1
        cases += 1
    return cases, moves, failures


def full(sizes: list[int], topology: str, seed: int, record: bool) -> int:
    report_lines = [
        "Array-native core at scale (benchmarks/bench_scale.py)",
        f"workload: layered_random, clusterer: random, mapper: multilevel, "
        f"seed: {seed}",
    ]
    for size in sizes:
        row = run_instance(size, topology, seed)
        line = format_row(topology, row)
        print(line)
        report_lines.append(line)
    if record:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text("\n".join(report_lines) + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")
    return 0


def smoke(tasks: int, topology: str, seed: int, json_out: str | None) -> int:
    started = time.perf_counter()
    row = run_instance(tasks, topology, seed)
    print(format_row(topology, row))
    cases, eq_moves, failures = backend_equivalence(seed)
    elapsed = time.perf_counter() - started
    print(
        f"equivalence: {cases} topologies, {eq_moves} moves, "
        f"{failures} failure(s); elapsed={elapsed:.2f}s"
    )
    if json_out is not None:
        report = {
            "bench": "scale",
            "mode": "smoke",
            "topology": topology,
            "seed": seed,
            "elapsed_seconds": elapsed,
            "failures": failures,
            "equivalence": {"cases": cases, "moves": eq_moves},
            **row,
        }
        Path(json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[json report -> {json_out}]")
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="10000,30000,100000",
        help="comma-separated task counts for the full table",
    )
    parser.add_argument(
        "--topology", default="hypercube:10", help="topology spec (1024 nodes)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the pinned CI instance plus the backend-equivalence sweep",
    )
    parser.add_argument(
        "--tasks", type=int, default=100_000, help="smoke-mode instance size"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable smoke report for the CI budget gate",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="do not write the results file"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.tasks, args.topology, args.seed, args.json_out)
    if args.json_out is not None:
        parser.error("--json-out is a --smoke option (the CI gate input)")
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes:
        parser.error(f"--sizes needs at least one task count, got {args.sizes!r}")
    return full(sizes, args.topology, args.seed, record=not args.no_record)


if __name__ == "__main__":
    sys.exit(main())
