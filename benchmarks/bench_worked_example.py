"""Experiment E6: the worked example (paper Figs. 2-6, 18-24).

Regenerates the full pipeline narrative: the ideal graph of Fig. 6, the
Sec. 3 matrices, and the final mapping of Fig. 24 that meets the lower
bound of 14 with zero refinement trials.
"""

from repro.core import Assignment, collect_matrices
from repro.experiments import format_worked_example, run_worked_example
from repro.io import format_paper_matrices
from repro.workloads import (
    running_example_assignment_vector,
    running_example_clustered,
    running_example_system,
)


def test_worked_example(benchmark, record_artifact):
    report = benchmark.pedantic(run_worked_example, rounds=1, iterations=1)
    record_artifact("fig2_6_24_worked_example", format_worked_example(report))
    assert report.all_milestones_pass
    assert report.result.total_time == 14
    assert report.refinement_trials == 0


def test_paper_matrices_dump(benchmark, record_artifact):
    """Figs. 18-23: the complete internal-representation bundle."""
    matrices = benchmark.pedantic(
        collect_matrices,
        args=(
            running_example_clustered(),
            running_example_system(),
            Assignment(running_example_assignment_vector()),
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("fig18_23_matrices", format_paper_matrices(matrices))
    assert matrices.c_abs_edge[0, -1] == 9  # Fig. 20-b's critical degree
