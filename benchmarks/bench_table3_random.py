"""Experiment E3: regenerate Table 3 and Fig. 27 (random topologies).

Paper reference values: ours 100-114% of the bound, random 147-188%,
improvements 44-77 points (the largest of the three families), 4/15 runs
hitting the bound.  Shape preserved: positive improvements throughout
and at least one exact hit.
"""

from repro.analysis import summarize_rows
from repro.experiments import format_figure, format_table, run_table3

SEED = 1991


def test_table3_regeneration(benchmark, record_artifact):
    rows = benchmark.pedantic(run_table3, args=(SEED,), rounds=1, iterations=1)
    record_artifact("table3_random_topologies", format_table(rows, 3))
    record_artifact("fig27_random_topologies", format_figure(rows, 27))

    summary = summarize_rows(rows)
    assert summary.rows == 17
    assert summary.improvement_min > 0
    assert summary.improvement_mean >= 10
    assert summary.lower_bound_hits >= 1
