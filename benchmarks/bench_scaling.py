"""Experiment E8: empirical complexity of the mapping pipeline.

The paper (Sec. 4.3.3) bounds the algorithms at O(np^2) per evaluation
and O(ns * np^2) for the whole refinement.  These benchmarks time the
two building blocks directly so pytest-benchmark's report exposes the
scaling, and the sweep artifact records seconds / (ns * np^2) staying
roughly flat as np quadruples.
"""

import pytest

from repro.analysis import render_table
from repro.clustering import RandomClusterer
from repro.core import Assignment, ClusteredGraph, CriticalEdgeMapper, total_time
from repro.experiments import run_scaling_study
from repro.topology import hypercube
from repro.workloads import layered_random_dag


def _instance(num_tasks: int, dim: int, seed: int = 0):
    system = hypercube(dim)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering), system


@pytest.mark.parametrize("num_tasks", [50, 100, 200, 400])
def test_evaluation_scaling(benchmark, num_tasks):
    """One total-time evaluation: the O(np^2) inner kernel."""
    clustered, system = _instance(num_tasks, dim=3)
    assignment = Assignment.random(system.num_nodes, rng=1)
    result = benchmark(total_time, clustered, system, assignment)
    assert result >= 0


@pytest.mark.parametrize("num_tasks", [50, 100, 200])
def test_full_mapping_scaling(benchmark, num_tasks):
    """The whole pipeline: O(ns * np^2) per the paper."""
    clustered, system = _instance(num_tasks, dim=3)
    mapper = CriticalEdgeMapper(rng=1)
    result = benchmark.pedantic(
        mapper.map, args=(clustered, system), rounds=3, iterations=1
    )
    assert result.total_time >= result.lower_bound


def test_scaling_sweep_artifact(benchmark, record_artifact):
    records = benchmark.pedantic(
        run_scaling_study, kwargs={"rng": 0}, rounds=1, iterations=1
    )
    body = [
        (int(r["np"]), int(r["ns"]), f"{r['seconds']*1e3:.1f} ms",
         f"{r['normalized']*1e9:.2f}")
        for r in records
    ]
    table = render_table(
        ["np", "ns", "mapping time", "ns*np^2-normalized (ns units)"],
        body,
        title="E8 — mapping time vs paper's O(ns*np^2) bound",
    )
    record_artifact("e8_scaling", table)
    # The normalized constant must not blow up: compare largest vs
    # smallest np at fixed ns (allow generous slack for constant factors).
    by_ns: dict[int, list[float]] = {}
    for r in records:
        by_ns.setdefault(int(r["ns"]), []).append(r["normalized"])
    for values in by_ns.values():
        assert max(values) <= 25 * min(values)
