"""Performance benchmark: incremental vs full evaluation under swaps.

The optimization guide's loop — measure first, then compute less.  The
refinement/metaheuristic hot path evaluates assignments differing by a
single swap; the incremental evaluator repairs only the affected
downstream region.  This bench quantifies the win (it grows with np and
with smaller clusters).
"""

import numpy as np
import pytest

from repro.clustering import RandomClusterer
from repro.core import (
    Assignment,
    ClusteredGraph,
    IncrementalEvaluator,
    total_time,
)
from repro.topology import hypercube
from repro.workloads import layered_random_dag


def _instance(num_tasks: int, seed: int = 0):
    system = hypercube(4)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering), system


SWAPS = [(i % 16, (i * 7 + 3) % 16) for i in range(40)]
SWAPS = [(a, b) for a, b in SWAPS if a != b]


@pytest.mark.parametrize("num_tasks", [100, 300])
def test_full_evaluation_swap_loop(benchmark, num_tasks):
    clustered, system = _instance(num_tasks)
    a = Assignment.random(system.num_nodes, rng=1)

    def loop():
        current = a
        acc = 0
        for x, y in SWAPS:
            current = current.swapped(x, y)
            acc += total_time(clustered, system, current)
        return acc

    result = benchmark(loop)
    assert result > 0


@pytest.mark.parametrize("num_tasks", [100, 300])
def test_incremental_evaluation_swap_loop(benchmark, num_tasks):
    clustered, system = _instance(num_tasks)
    a = Assignment.random(system.num_nodes, rng=1)

    def loop():
        inc = IncrementalEvaluator(clustered, system, a)
        acc = 0
        for x, y in SWAPS:
            acc += inc.swap(x, y)
        return acc

    result = benchmark(loop)
    assert result > 0


def test_equivalence_of_the_two_loops(benchmark):
    """The two benchmark loops must produce identical makespan sums."""
    clustered, system = _instance(150)
    a = Assignment.random(system.num_nodes, rng=1)

    def both():
        current = a
        full = []
        for x, y in SWAPS:
            current = current.swapped(x, y)
            full.append(total_time(clustered, system, current))
        inc = IncrementalEvaluator(clustered, system, a)
        incremental = [inc.swap(x, y) for x, y in SWAPS]
        return full, incremental

    full, incremental = benchmark.pedantic(both, rounds=1, iterations=1)
    assert full == incremental
