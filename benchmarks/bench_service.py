"""Benchmark the MappingService: warm pool and warm cache vs one-shot calls.

Two measurements, both recorded under
``benchmarks/results/bench_service.txt``:

* **warm pool** — a stream of small mapping batches, the resource-manager
  access pattern.  Baseline: the pre-service behavior of building (and
  tearing down) a fresh ``ProcessPoolExecutor`` for every batch.
  Service: the same batches on one persistent pool
  (:meth:`MappingService.run_on_pool`), paying startup once.
* **warm cache** — one deterministic solve repeated.  Baseline: the cold
  solve (mapper actually runs).  Service: the content-addressed re-solve,
  which returns the stored outcome without executing anything.  The
  outcomes are checked bit-identical, and the run fails (exit 1) if the
  re-solve is not at least 10x faster — that margin is the point of the
  cache.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py           # full sizes
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI-sized
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path

from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph
from repro.service import MappingService, outcome_to_dict
from repro.topology import hypercube
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_service.txt"


@dataclass(frozen=True)
class _Task:
    """One (instance, mapper, seed) work unit; picklable for both pools."""

    clustered: ClusteredGraph
    system: object
    mapper: object
    seed: int


def _run_task(task: _Task):
    return task.mapper.map(task.clustered, task.system, rng=task.seed)


def build_tasks(batch_size: int, num_tasks: int, seed: int) -> list[_Task]:
    from repro.api import get_mapper

    system = hypercube(3)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=seed
    )
    clustered = ClusteredGraph(graph, clustering)
    mapper = get_mapper("random", samples=20)
    return [_Task(clustered, system, mapper, seed + i) for i in range(batch_size)]


def bench_warm_pool(batches: int, batch_size: int, workers: int, lines: list[str]):
    tasks = build_tasks(batch_size, num_tasks=60, seed=100)

    # Baseline: a fresh pool per batch (what every solve_many call did
    # before the service existed).
    cold_times = []
    for _ in range(batches):
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_task, t) for t in tasks]
            for future in as_completed(futures):
                future.result()
        cold_times.append(time.perf_counter() - start)

    # Service: the same batches on one persistent pool.  The first batch
    # pays pool startup; the steady state is what a long-lived service
    # actually serves, so it is measured separately.
    warm_times = []
    with MappingService(max_workers=workers) as service:
        for _ in range(batches + 1):
            start = time.perf_counter()
            for _item, _outcome in service.run_on_pool(
                tasks, _run_task, max_workers=workers
            ):
                pass
            warm_times.append(time.perf_counter() - start)
    first, steady = warm_times[0], warm_times[1:]

    cold = sum(cold_times) / len(cold_times)
    warm = sum(steady) / len(steady)
    lines.append(f"warm-pool benchmark ({batches} batches of {batch_size}, "
                 f"{workers} workers)")
    lines.append(f"  per-call pool creation : {cold * 1e3:8.1f} ms/batch")
    lines.append(f"  service, first batch   : {first * 1e3:8.1f} ms (pays startup)")
    lines.append(f"  service, steady state  : {warm * 1e3:8.1f} ms/batch")
    lines.append(f"  steady-state speedup   : {cold / warm:8.2f}x")
    return cold / warm


def bench_warm_cache(num_tasks: int, lines: list[str]) -> float:
    system = hypercube(4)
    graph = layered_random_dag(num_tasks=num_tasks, rng=42)
    clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
        graph, rng=42
    )
    with MappingService() as service:
        start = time.perf_counter()
        first = service.solve(graph, clustering, system, mapper="tabu", rng=42)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        again = service.solve(graph, clustering, system, mapper="tabu", rng=42)
        warm = time.perf_counter() - start

    if outcome_to_dict(first) != outcome_to_dict(again):
        raise AssertionError("cached re-solve is not bit-identical")
    speedup = cold / warm
    lines.append("")
    lines.append(f"warm-cache benchmark (tabu on {num_tasks}-task DAG, 16-node "
                 "hypercube)")
    lines.append(f"  cold solve             : {cold * 1e3:8.1f} ms")
    lines.append(f"  cached re-solve        : {warm * 1e3:8.3f} ms "
                 "(fingerprint + lookup, no execution)")
    lines.append(f"  re-solve speedup       : {speedup:8.0f}x (bit-identical)")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for smoke runs"
    )
    args = parser.parse_args(argv)

    batches, batch_size, workers = (3, 8, 2) if args.quick else (5, 16, 4)
    cache_tasks = 120 if args.quick else 400

    lines: list[str] = []
    bench_warm_pool(batches, batch_size, workers, lines)
    cache_speedup = bench_warm_cache(cache_tasks, lines)

    report = "\n".join(lines)
    print(report)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(report + "\n")
    print(f"\n[recorded -> {RESULTS_PATH}]")

    if cache_speedup < 10:
        print(f"FAIL: warm-cache speedup {cache_speedup:.1f}x is below 10x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
