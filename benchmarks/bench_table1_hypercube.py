"""Experiment E1: regenerate Table 1 and Fig. 25 (mapping to hypercubes).

Paper reference values: the proposed strategy lands at 100-118% of the
lower bound, averaged random mapping at 140-178%, improvements of 29-63
percentage points, and 2/10 runs hit the lower bound exactly.
The reproduction must preserve the *shape*: our mapper always wins, the
improvement is tens of points, and some runs terminate at the bound.
"""

from repro.analysis import summarize_rows
from repro.experiments import format_figure, format_table, run_table1

SEED = 1991


def test_table1_regeneration(benchmark, record_artifact):
    rows = benchmark.pedantic(run_table1, args=(SEED,), rounds=1, iterations=1)
    record_artifact("table1_hypercubes", format_table(rows, 1))
    record_artifact("fig25_hypercubes", format_figure(rows, 25))

    summary = summarize_rows(rows)
    assert summary.rows == 10
    # Shape assertions mirroring the paper's qualitative claims.
    assert summary.improvement_min > 0, "our mapping must always beat random"
    assert summary.improvement_mean >= 10
    assert summary.ours_pct_max <= 160
    assert summary.random_pct_max >= 120
    assert summary.lower_bound_hits >= 1  # termination condition fires
