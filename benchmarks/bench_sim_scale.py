"""Scale/fidelity benchmark for the network simulator behind the metrics.

Times :func:`repro.sim.simulate` on large layered random DAGs under the
paper-exact configuration and the relaxed ones the simulator-backed
metrics use (serialized processors + link contention, and bounded-FIFO
backpressure), reporting wall time and event throughput.

Two modes:

* default — one row per ``--sizes`` entry (1k-10k tasks) on
  ``--topology`` (default ``hypercube:6``) and per configuration.
  Records ``benchmarks/results/bench_sim_scale.txt``.
* ``--smoke`` — one smaller instance sized for CI; with
  ``--json-out FILE`` it emits a machine-readable report for
  ``benchmarks/check_budgets.py``: ``elapsed_seconds``,
  ``makespan_ratio`` (paper-config simulated makespan / analytic total
  time — contractually 1.0), and a ``failures`` count of fidelity
  cross-checks (relaxed configs must never beat the analytic bound,
  repeated runs must be bit-identical, and the analytic per-link
  traffic must equal the simulator's busy time).

Run from the repo root::

    python benchmarks/bench_sim_scale.py                  # full table
    python benchmarks/bench_sim_scale.py --sizes 1000,5000
    python benchmarks/bench_sim_scale.py --smoke --json-out BENCH_sim_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import build_topology
from repro.clustering import RandomClusterer
from repro.core import Assignment, ClusteredGraph, evaluate_assignment
from repro.sim import SimConfig, simulate
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_sim_scale.txt"

CONFIGS = [
    ("paper", SimConfig()),
    ("serialized+contention", SimConfig(True, True)),
    ("fifo=1", SimConfig(True, True, fifo_depth=1)),
]


def build_instance(num_tasks: int, topology: str, seed: int):
    system = build_topology(topology)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    clustered = ClusteredGraph(graph, clustering)
    assignment = Assignment.random(system.num_nodes, rng=seed)
    return clustered, system, assignment


def run_config(label: str, config: SimConfig, clustered, system, assignment):
    start = time.perf_counter()
    result = simulate(clustered, system, assignment, config)
    wall = time.perf_counter() - start
    events = len(result.trace.tasks) + len(result.trace.transfers)
    return {
        "config": label,
        "wall_time": wall,
        "makespan": int(result.makespan),
        "events": events,
        "events_per_second": events / max(wall, 1e-9),
        "fifo_stall_time": int(result.fifo_stall_time),
    }


def format_rows(size: int, topology: str, rows: list[dict]) -> list[str]:
    lines = [f"{size} tasks on {topology}:"]
    for r in rows:
        lines.append(
            f"  {r['config']:<22} makespan={r['makespan']:>8} "
            f"events={r['events']:>8} wall={r['wall_time']:>8.3f}s "
            f"({r['events_per_second']:>10.0f} ev/s)"
        )
    return lines


def full(sizes: list[int], topology: str, seed: int, record: bool) -> int:
    report_lines = [
        "Simulator throughput under the metric configurations "
        "(benchmarks/bench_sim_scale.py)",
        f"workload: layered_random, clusterer: random, seed: {seed}",
    ]
    for size in sizes:
        clustered, system, assignment = build_instance(size, topology, seed)
        rows = [
            run_config(label, config, clustered, system, assignment)
            for label, config in CONFIGS
        ]
        lines = format_rows(size, topology, rows)
        print("\n".join(lines))
        report_lines.extend(lines)
    if record:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text("\n".join(report_lines) + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")
    return 0


def fidelity_failures(clustered, system, assignment, analytic: int) -> int:
    """Cross-checks that must hold for the metric values to mean anything."""
    from repro.metrics import link_traffic

    failures = 0
    for _label, config in CONFIGS[1:]:
        if simulate(clustered, system, assignment, config).makespan < analytic:
            failures += 1  # a relaxation can never beat the paper model
    cfg = SimConfig(True, True, fifo_depth=1)
    first = simulate(clustered, system, assignment, cfg)
    second = simulate(clustered, system, assignment, cfg)
    if first.makespan != second.makespan or first.trace != second.trace:
        failures += 1  # the engine must be deterministic
    contended = simulate(clustered, system, assignment, SimConfig(True, True))
    if link_traffic(clustered, system, assignment) != (
        contended.trace.link_busy_time()
    ):
        failures += 1  # analytic congestion == simulated busy time
    return failures


def smoke(tasks: int, topology: str, seed: int, json_out: str | None) -> int:
    started = time.perf_counter()
    clustered, system, assignment = build_instance(tasks, topology, seed)
    analytic = evaluate_assignment(clustered, system, assignment).total_time
    rows = [
        run_config(label, config, clustered, system, assignment)
        for label, config in CONFIGS
    ]
    makespan_ratio = rows[0]["makespan"] / max(analytic, 1)
    failures = fidelity_failures(clustered, system, assignment, analytic)
    elapsed = time.perf_counter() - started
    print("\n".join(format_rows(tasks, topology, rows)))
    print(
        f"makespan_ratio={makespan_ratio:.4f} failures={failures} "
        f"elapsed={elapsed:.2f}s"
    )
    if json_out is not None:
        report = {
            "bench": "sim_scale",
            "mode": "smoke",
            "tasks": tasks,
            "topology": topology,
            "seed": seed,
            "elapsed_seconds": elapsed,
            "configs": rows,
            "analytic_total_time": int(analytic),
            "makespan_ratio": makespan_ratio,
            "failures": failures,
        }
        Path(json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[json report -> {json_out}]")
    return 0 if not failures else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="1000,5000",
        help="comma-separated task counts for the full table (1k-10k)",
    )
    parser.add_argument("--topology", default="hypercube:6", help="topology spec")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one CI-sized instance; combine with --json-out for the gate",
    )
    parser.add_argument(
        "--tasks", type=int, default=2000, help="smoke-mode instance size"
    )
    parser.add_argument(
        "--smoke-topology", default="hypercube:5", help="smoke-mode topology"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable smoke report for the CI budget gate",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="do not write the results file"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.tasks, args.smoke_topology, args.seed, args.json_out)
    if args.json_out is not None:
        parser.error("--json-out is a --smoke option (the CI gate input)")
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes:
        parser.error(f"--sizes needs at least one task count, got {args.sizes!r}")
    return full(sizes, args.topology, args.seed, record=not args.no_record)


if __name__ == "__main__":
    sys.exit(main())
