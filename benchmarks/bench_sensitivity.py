"""Calibration sensitivity study (supports EXPERIMENTS.md Sec. 'knobs').

The paper leaves the workload generator's parameters unpublished; these
sweeps document how each hidden knob moves the Table 1-3 style numbers,
justifying the calibrated defaults used in the regenerated tables:

* communication weight ceiling (vs task sizes 1-10),
* DAG density (extra edges per task),
* problem size np at fixed machines.
"""

from repro.experiments import (
    format_sweep,
    sweep_comm_ratio,
    sweep_edge_density,
    sweep_problem_size,
)

SEED = 5


def test_comm_ratio_sweep(benchmark, record_artifact):
    points = benchmark.pedantic(
        sweep_comm_ratio, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact(
        "sensitivity_comm_ratio",
        format_sweep(points, "Sensitivity — communication weight ceiling"),
    )
    # Heavier communication must widen the random column.
    assert points[-1].random_pct_mean > points[0].random_pct_mean


def test_edge_density_sweep(benchmark, record_artifact):
    points = benchmark.pedantic(
        sweep_edge_density, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact(
        "sensitivity_edge_density",
        format_sweep(points, "Sensitivity — DAG density (extra edges/task)"),
    )
    assert points[-1].ours_pct_mean >= points[0].ours_pct_mean


def test_problem_size_sweep(benchmark, record_artifact):
    points = benchmark.pedantic(
        sweep_problem_size, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact(
        "sensitivity_problem_size",
        format_sweep(points, "Sensitivity — problem size np"),
    )
    # Lower-bound hits concentrate on small problems.
    assert points[0].hit_rate >= points[-1].hit_rate
