"""Ablations A1-A3: refinement, critical guidance, exchange strategy.

A1 — the refinement stage must help (or at least never hurt) the initial
assignment; the paper presents refinement as "likely to improve the
mapping further".

A2 — critical-edge guidance vs. a degree/intensity-only greedy: the
paper's core heuristic claim.

A3 — random re-placement vs. pairwise exchange under the same trial
budget: the paper states its method "works better than pairwise
exchanges [2]".
"""

import numpy as np

from repro.analysis import render_table
from repro.experiments import (
    run_exchange_ablation,
    run_guidance_ablation,
    run_refinement_ablation,
)

SEED = 7


def _artifact(rows, title):
    variants = list(rows[0].values)
    body = [
        [r.instance]
        + [f"{100 * r.values[v] / r.lower_bound:.0f}%" for v in variants]
        for r in rows
    ]
    return render_table(["instance"] + variants, body, title=title)


def test_a1_refinement(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_refinement_ablation, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact("a1_refinement", _artifact(rows, "A1 — initial vs refined"))
    for row in rows:
        assert row.values["with_refinement"] <= row.values["initial_only"]
    # Refinement must actually win somewhere.
    assert any(
        row.values["with_refinement"] < row.values["initial_only"] for row in rows
    )


def test_a2_critical_guidance(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_guidance_ablation, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact("a2_guidance", _artifact(rows, "A2 — critical guidance on/off"))
    guided = np.array([r.values["critical_guided"] / r.lower_bound for r in rows])
    unguided = np.array([r.values["unguided"] / r.lower_bound for r in rows])
    # Guidance must win in aggregate (individual instances may tie).
    assert guided.mean() <= unguided.mean() + 0.02


def test_a3_exchange_strategy(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_exchange_ablation, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact(
        "a3_exchange", _artifact(rows, "A3 — random replacement vs pairwise")
    )
    rnd = np.array([r.values["random_replacement"] / r.lower_bound for r in rows])
    pair = np.array([r.values["pairwise_exchange"] / r.lower_bound for r in rows])
    # The paper's claim holds in aggregate on our instances too (small
    # tolerance: both run the same tiny ns-trial budget).
    assert rnd.mean() <= pair.mean() + 0.05
