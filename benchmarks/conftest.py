"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artifact is written to ``benchmarks/results/<name>.txt`` (and
echoed to stdout when pytest runs with ``-s``) so the regeneration
evidence survives the run; the timing numbers land in pytest-benchmark's
own report.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write a named artifact; returns the path for further inspection."""

    def _record(name: str, content: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n[artifact -> {path}]\n{content}")
        return path

    return _record
