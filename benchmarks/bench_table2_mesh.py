"""Experiment E2: regenerate Table 2 and Fig. 26 (mapping to meshes).

Paper reference values: ours 100-112% of the bound, random 132-153%,
improvements 32-48 points, and 7/11 runs hit the lower bound (meshes
terminate most often).  Shape preserved: positive improvements and
multiple exact hits.
"""

from repro.analysis import summarize_rows
from repro.experiments import format_figure, format_table, run_table2

SEED = 1991


def test_table2_regeneration(benchmark, record_artifact):
    rows = benchmark.pedantic(run_table2, args=(SEED,), rounds=1, iterations=1)
    record_artifact("table2_meshes", format_table(rows, 2))
    record_artifact("fig26_meshes", format_figure(rows, 26))

    summary = summarize_rows(rows)
    assert summary.rows == 11
    assert summary.improvement_min > 0
    assert summary.improvement_mean >= 10
    assert summary.lower_bound_hits >= 1
