"""Experiments E4/E5: the Sec. 2.2 counterexamples (paper Figs. 7-17).

E4 (Figs. 7-12): the best assignment under Bokhari's cardinality measure
is NOT total-time optimal — paper values: cardinality-optimal A1 takes 23
units vs. 21 for the better A2 (cardinality 8 vs 7 out of 9 edges).

E5 (Figs. 13-17): the best assignment under Lee & Aggarwal's phase
communication cost is NOT total-time optimal — paper values: cost-optimal
A3 (11 cost units) takes 23 vs. 21 for A4 (15 cost units).

Both phenomena are *proved* here by enumerating all 8! assignments; the
reproduction even matches the paper's max cardinality (8/9) and minimum
communication cost (11 units) exactly.
"""

from repro.experiments import (
    format_counterexample,
    run_bokhari_counterexample,
    run_lee_counterexample,
)


def test_bokhari_counterexample(benchmark, record_artifact):
    report = benchmark.pedantic(run_bokhari_counterexample, rounds=1, iterations=1)
    record_artifact("fig7_12_bokhari_counterexample", format_counterexample(report))
    assert report.phenomenon_holds
    assert report.objective_best == 8  # "eight out of nine problem edges"
    assert report.assignments_enumerated == 40320
    assert report.gap >= 2  # paper's gap: 23 vs 21


def test_lee_counterexample(benchmark, record_artifact):
    report = benchmark.pedantic(run_lee_counterexample, rounds=1, iterations=1)
    record_artifact("fig13_17_lee_counterexample", format_counterexample(report))
    assert report.phenomenon_holds
    assert report.objective_best == 11  # Fig. 15's optimal cost, exactly
    assert report.gap >= 2
