"""Benchmark and correctness guard for the delta-evaluation fast path.

Two modes:

* default — time per-move evaluation on a large layered random DAG for
  the annealing/tabu-style inner loops: the old path (full
  :func:`repro.core.evaluate.total_time` per candidate, O(V^2) comm
  matrix per call) against the new :class:`repro.core.DeltaEvaluator`
  probe path, plus the genetic-style full-evaluation fast path.  Results
  are printed and recorded under ``benchmarks/results/bench_delta.txt``.
* ``--smoke`` — the CI guard: randomized move sequences on small
  instances across several topologies; every delta-accumulated aggregate
  must match a full re-evaluation bit-for-bit.  Exits 1 on any mismatch.
  With ``--json-out FILE`` it also emits a machine-readable report
  (bench name, elapsed seconds, case list, failure count) that
  ``benchmarks/check_budgets.py`` compares against the stored budgets in
  ``benchmarks/budgets.json`` — the CI perf-regression gate.

Run from the repo root::

    python benchmarks/bench_delta.py            # timings
    python benchmarks/bench_delta.py --smoke --json-out BENCH_delta.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.clustering import RandomClusterer
from repro.core import Assignment, ClusteredGraph, DeltaEvaluator, total_time
from repro.topology import hypercube, mesh2d, ring, torus2d
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_delta.txt"


def build_instance(num_tasks: int, system, seed: int):
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering), system


def smoke(seed: int, json_out: str | None = None) -> int:
    """Cross-check delta vs full evaluation; returns the exit code."""
    started = time.perf_counter()
    cases = [
        ("hypercube-8", hypercube(3)),
        ("mesh-2x4", mesh2d(2, 4)),
        ("torus-3x3", torus2d(3, 3)),
        ("ring-6", ring(6)),
    ]
    failures = 0
    for name, system in cases:
        clustered, system = build_instance(8 * system.num_nodes, system, seed)
        n = system.num_nodes
        gen = np.random.default_rng(seed)
        shadow = Assignment.random(n, rng=seed)
        ev = DeltaEvaluator(clustered, system, shadow)
        for step in range(60):
            a, b = (int(x) for x in gen.choice(n, size=2, replace=False))
            probed = ev.probe_swap(a, b)
            oracle = total_time(clustered, system, shadow.swapped(a, b))
            if probed != oracle:
                print(f"FAIL {name} step {step}: probe {probed} != full {oracle}")
                failures += 1
                break
            if step % 2 == 0:
                ev.swap(a, b)
                shadow = shadow.swapped(a, b)
            if not ev.verify():
                print(f"FAIL {name} step {step}: aggregates diverged from oracle")
                failures += 1
                break
        else:
            print(f"ok   {name}: 60 moves, delta == full re-evaluation")
    if json_out is not None:
        report = {
            "bench": "delta",
            "mode": "smoke",
            "seed": seed,
            "elapsed_seconds": time.perf_counter() - started,
            "cases": [name for name, _ in cases],
            "failures": failures,
        }
        Path(json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[json report -> {json_out}]")
    if failures:
        print(f"SMOKE FAILED: {failures} case(s) diverged")
        return 1
    print("SMOKE PASSED: delta evaluation matches full re-evaluation bit-for-bit")
    return 0


def timings(num_tasks: int, moves: int, seed: int, record: bool) -> int:
    system = hypercube(4)
    clustered, system = build_instance(num_tasks, system, seed)
    n = system.num_nodes
    gen = np.random.default_rng(seed)
    stream = [
        tuple(int(x) for x in gen.choice(n, size=2, replace=False))
        for _ in range(moves)
    ]
    start_assignment = Assignment.random(n, rng=seed)

    # Old inner loop: full re-evaluation per candidate, hill-climbing.
    current = start_assignment
    current_time = total_time(clustered, system, current)
    t0 = time.perf_counter()
    full_trace = []
    for a, b in stream:
        candidate = current.swapped(a, b)
        t = total_time(clustered, system, candidate)
        full_trace.append(t)
        if t < current_time:
            current, current_time = candidate, t
    full_elapsed = time.perf_counter() - t0

    # New inner loop: delta probe per candidate, commit improvements.
    ev = DeltaEvaluator(clustered, system, start_assignment)
    current_time = ev.total_time
    t0 = time.perf_counter()
    delta_trace = []
    for a, b in stream:
        t = ev.probe_swap(a, b)
        delta_trace.append(t)
        if t < current_time:
            current_time = ev.swap(a, b)
    delta_elapsed = time.perf_counter() - t0

    if full_trace != delta_trace:
        print("FAIL: delta and full evaluation visited different makespans")
        return 1

    # Genetic-style full evaluations: comm-matrix path vs the evaluator's
    # O(V+E) rebase fast path.
    candidates = [Assignment.random(n, rng=int(s)) for s in gen.integers(0, 2**31, 20)]
    t0 = time.perf_counter()
    matrix_times = [total_time(clustered, system, a) for a in candidates]
    matrix_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    rebase_times = [ev.evaluate(a) for a in candidates]
    rebase_elapsed = time.perf_counter() - t0
    if matrix_times != rebase_times:
        print("FAIL: rebase fast path disagrees with the comm-matrix path")
        return 1

    speedup = full_elapsed / delta_elapsed if delta_elapsed else float("inf")
    rebase_speedup = matrix_elapsed / rebase_elapsed if rebase_elapsed else float("inf")
    lines = [
        "Delta-evaluation fast path (benchmarks/bench_delta.py)",
        f"instance: {clustered.graph!r} on {system!r}",
        f"swap moves timed: {moves} (annealing/tabu-style hill climb)",
        f"full re-evaluation : {1e6 * full_elapsed / moves:9.1f} us/move",
        f"delta probe        : {1e6 * delta_elapsed / moves:9.1f} us/move",
        f"per-move speedup   : {speedup:9.1f}x",
        f"full evals (comm matrix)   : {1e6 * matrix_elapsed / 20:9.1f} us/eval",
        f"full evals (rebase path)   : {1e6 * rebase_elapsed / 20:9.1f} us/eval",
        f"rebase speedup             : {rebase_speedup:9.1f}x",
        "traces identical: True",
    ]
    report = "\n".join(lines)
    print(report)
    if record:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=1000, help="DAG size")
    parser.add_argument("--moves", type=int, default=300, help="swap moves to time")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="correctness cross-check only (CI guard); exits 1 on mismatch",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="do not write the results file"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable smoke report for the CI budget gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.seed, json_out=args.json_out)
    if args.json_out is not None:
        parser.error("--json-out is a --smoke option (the CI gate input)")
    return timings(args.tasks, args.moves, args.seed, record=not args.no_record)


if __name__ == "__main__":
    sys.exit(main())
