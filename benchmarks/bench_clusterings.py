"""Clustering-impact study (extension; DESIGN.md Sec. 5, supporting A-series).

The paper treats clustering as an external preprocessing step; this
bench quantifies how much the choice matters on the same machine with
the same mapper — and that structure-aware clusterers (linear, edge
zeroing, DSC) both lower the bound and let the mapper reach it.
"""

from repro.experiments import format_clustering_study, run_clustering_study

SEED = 3


def test_clustering_study(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_clustering_study, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    record_artifact("clustering_impact", format_clustering_study(rows))

    by_workload: dict[str, dict[str, int]] = {}
    for r in rows:
        by_workload.setdefault(r.workload, {})[r.clusterer] = r.total_time
    for workload, times in by_workload.items():
        # Structure-aware clustering must beat structure-blind random
        # grouping on absolute total time for the structured workload.
        if workload.startswith("gauss"):
            best_structured = min(
                times["linear"], times["edge_zero"], times["dsc"]
            )
            assert best_structured <= times["random"]
