"""CI perf-regression gate: compare bench smoke reports to stored budgets.

Usage::

    python benchmarks/check_budgets.py BENCH_delta.json BENCH_multilevel.json

Each report is the ``--json-out`` emission of a ``--smoke`` bench run
(``benchmarks/bench_delta.py``, ``benchmarks/bench_multilevel.py``).
Budgets live in ``benchmarks/budgets.json``, keyed by the report's
``bench`` field:

* ``max_seconds`` — the expected smoke runtime on a CI runner.  The
  gate fails only when the measured ``elapsed_seconds`` exceeds **2x**
  this budget, so ordinary runner jitter passes but a real slowdown
  (an accidentally quadratic path, a lost fast path) is caught.
* ``quality`` — a map of report keys to hard upper limits, checked
  *without* slack: quality must never regress.  For the multilevel
  bench these are ``comm_ratio`` (multilevel comm volume / annealing
  comm volume, <= 1.0: multilevel must match or beat annealing) and
  ``time_ratio`` (multilevel wall / annealing wall, <= 0.5).
* reports may carry a ``failures`` count (the delta smoke's
  correctness cross-check); any non-zero count fails the gate.

Re-baselining: when a deliberate change moves a runtime budget, re-run
the smoke commands locally (see the workflow's perf-gate job for the
exact invocations), take the new ``elapsed_seconds``, and update
``max_seconds`` in ``benchmarks/budgets.json`` in the same PR — with a
sentence in the PR description saying why.  The ``quality`` limits are
contractual, not measured; loosening one is an explicit design decision,
not a re-baseline.

Exits 1 on the first breached budget (after printing every check).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BUDGETS_PATH = Path(__file__).parent / "budgets.json"


def check_report(report: dict, budgets: dict) -> list[str]:
    """Return a list of human-readable breaches (empty = pass)."""
    bench = report.get("bench")
    if bench not in budgets:
        return [f"no stored budget for bench {bench!r} (add it to budgets.json)"]
    budget = budgets[bench]
    breaches: list[str] = []

    failures = int(report.get("failures", 0))
    if failures:
        breaches.append(f"{bench}: {failures} correctness failure(s) in the smoke run")

    if "elapsed_seconds" not in report:
        breaches.append(f"{bench}: report is missing 'elapsed_seconds'")
        return breaches
    elapsed = float(report["elapsed_seconds"])
    limit = 2.0 * float(budget["max_seconds"])
    status = "ok" if elapsed <= limit else "FAIL"
    print(
        f"{bench}: elapsed {elapsed:.2f}s vs budget {budget['max_seconds']}s "
        f"(hard limit 2x = {limit:.2f}s) [{status}]"
    )
    if elapsed > limit:
        breaches.append(
            f"{bench}: runtime {elapsed:.2f}s exceeds 2x the stored budget "
            f"({budget['max_seconds']}s) — re-baseline only if the slowdown "
            "is intended"
        )

    for key, max_value in budget.get("quality", {}).items():
        if key not in report:
            breaches.append(f"{bench}: report is missing quality metric {key!r}")
            continue
        value = float(report[key])
        status = "ok" if value <= float(max_value) else "FAIL"
        print(f"{bench}: {key} {value:.4f} (limit {max_value}) [{status}]")
        if value > float(max_value):
            breaches.append(
                f"{bench}: quality metric {key} = {value:.4f} breaches the "
                f"hard limit {max_value}"
            )
    return breaches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", help="bench --json-out report files")
    parser.add_argument(
        "--budgets", default=str(BUDGETS_PATH), help="stored budgets file"
    )
    args = parser.parse_args(argv)

    budgets = json.loads(Path(args.budgets).read_text())
    breaches: list[str] = []
    for path in args.reports:
        report = json.loads(Path(path).read_text())
        breaches.extend(check_report(report, budgets))
    if breaches:
        print()
        for breach in breaches:
            print(f"BUDGET BREACH: {breach}")
        return 1
    print("all budgets respected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
