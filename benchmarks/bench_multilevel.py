"""Quality/time benchmark for the multilevel coarsen–map–refine mapper.

Compares ``multilevel`` against ``annealing``, ``tabu``, and ``critical``
on large layered random DAGs, reporting the hop-weighted communication
volume (the multilevel objective), the makespan, and the wall time.

Two modes:

* default — one row per ``--sizes`` entry (1k–10k tasks) on
  ``--topology`` (default ``hypercube:6``, the acceptance instance).
  Records ``benchmarks/results/bench_multilevel.txt`` and exits 1 if, on
  the largest size, multilevel fails the acceptance invariant: comm
  volume no worse than annealing's at <= 0.5x annealing's wall time.
* ``--smoke`` — one smaller instance sized for CI; with
  ``--json-out FILE`` it emits a machine-readable report
  (per-mapper timings + ``comm_ratio``/``time_ratio`` vs annealing)
  that ``benchmarks/check_budgets.py`` checks against the stored
  budgets in ``benchmarks/budgets.json``.

Run from the repo root::

    python benchmarks/bench_multilevel.py                 # full table
    python benchmarks/bench_multilevel.py --sizes 1000,5000,10000
    python benchmarks/bench_multilevel.py --smoke --json-out BENCH_multilevel.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import build_topology, get_mapper
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, evaluate_assignment
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_multilevel.txt"

MAPPERS = ["multilevel", "annealing", "tabu", "critical"]
SMOKE_MAPPERS = ["multilevel", "annealing", "critical"]


def build_instance(num_tasks: int, topology: str, seed: int):
    system = build_topology(topology)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering), system


def run_mapper(name: str, clustered, system, seed: int) -> dict:
    """One timed run; mappers are built directly so the service cache
    can never short-circuit a measurement."""
    mapper = get_mapper(name)
    start = time.perf_counter()
    outcome = mapper.map(clustered, system, rng=seed)
    wall = time.perf_counter() - start
    schedule = evaluate_assignment(clustered, system, outcome.assignment)
    return {
        "wall_time": wall,
        "total_time": int(outcome.total_time),
        "comm_volume": int(schedule.communication_volume()),
        "evaluations": int(outcome.evaluations),
    }


def acceptance(rows: dict[str, dict]) -> tuple[bool, str]:
    """The recorded invariant: multilevel >= annealing quality on comm
    volume at <= 0.5x annealing wall time."""
    ml, ann = rows["multilevel"], rows["annealing"]
    comm_ok = ml["comm_volume"] <= ann["comm_volume"]
    time_ok = ml["wall_time"] <= 0.5 * ann["wall_time"]
    verdict = (
        f"multilevel comm {ml['comm_volume']} vs annealing {ann['comm_volume']} "
        f"({'ok' if comm_ok else 'WORSE'}); wall {ml['wall_time']:.2f}s vs "
        f"{ann['wall_time']:.2f}s = {ml['wall_time'] / max(ann['wall_time'], 1e-9):.2f}x "
        f"({'ok' if time_ok else 'OVER 0.5x'})"
    )
    return comm_ok and time_ok, verdict


def format_rows(size: int, topology: str, rows: dict[str, dict]) -> list[str]:
    lines = [f"{size} tasks on {topology}:"]
    for name in rows:
        r = rows[name]
        lines.append(
            f"  {name:<10} comm={r['comm_volume']:>8} total={r['total_time']:>7} "
            f"wall={r['wall_time']:>8.3f}s evals={r['evaluations']:>7}"
        )
    return lines


def full(sizes: list[int], topology: str, seed: int, record: bool) -> int:
    report_lines = [
        "Multilevel coarsen-map-refine vs flat heuristics "
        "(benchmarks/bench_multilevel.py)",
        f"workload: layered_random, clusterer: random, seed: {seed}",
    ]
    last_rows: dict[str, dict] = {}
    for size in sizes:
        clustered, system = build_instance(size, topology, seed)
        rows = {m: run_mapper(m, clustered, system, seed) for m in MAPPERS}
        last_rows = rows
        lines = format_rows(size, topology, rows)
        print("\n".join(lines))
        report_lines.extend(lines)
    ok, verdict = acceptance(last_rows)
    line = f"acceptance ({sizes[-1]} tasks): {verdict}"
    print(line)
    report_lines.append(line)
    report_lines.append(f"acceptance {'PASSED' if ok else 'FAILED'}")
    if record:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text("\n".join(report_lines) + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")
    return 0 if ok else 1


def smoke(tasks: int, topology: str, seed: int, json_out: str | None) -> int:
    started = time.perf_counter()
    clustered, system = build_instance(tasks, topology, seed)
    rows = {m: run_mapper(m, clustered, system, seed) for m in SMOKE_MAPPERS}
    elapsed = time.perf_counter() - started
    print("\n".join(format_rows(tasks, topology, rows)))
    ml, ann = rows["multilevel"], rows["annealing"]
    comm_ratio = ml["comm_volume"] / max(ann["comm_volume"], 1)
    time_ratio = ml["wall_time"] / max(ann["wall_time"], 1e-9)
    print(
        f"comm_ratio={comm_ratio:.4f} time_ratio={time_ratio:.4f} "
        f"elapsed={elapsed:.2f}s"
    )
    if json_out is not None:
        report = {
            "bench": "multilevel",
            "mode": "smoke",
            "tasks": tasks,
            "topology": topology,
            "seed": seed,
            "elapsed_seconds": elapsed,
            "mappers": rows,
            "comm_ratio": comm_ratio,
            "time_ratio": time_ratio,
        }
        Path(json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[json report -> {json_out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="1000,5000",
        help="comma-separated task counts for the full table (1k-10k)",
    )
    parser.add_argument("--topology", default="hypercube:6", help="topology spec")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one CI-sized instance; combine with --json-out for the gate",
    )
    parser.add_argument(
        "--tasks", type=int, default=1200, help="smoke-mode instance size"
    )
    parser.add_argument(
        "--smoke-topology", default="hypercube:5", help="smoke-mode topology"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable smoke report for the CI budget gate",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="do not write the results file"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.tasks, args.smoke_topology, args.seed, args.json_out)
    if args.json_out is not None:
        parser.error("--json-out is a --smoke option (the CI gate input)")
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes:
        parser.error(f"--sizes needs at least one task count, got {args.sizes!r}")
    return full(sizes, args.topology, args.seed, record=not args.no_record)


if __name__ == "__main__":
    sys.exit(main())
