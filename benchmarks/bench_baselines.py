"""Ablation A5: the critical-edge mapper against every baseline.

Scores random mapping, Bokhari cardinality search, Lee & Aggarwal
communication-cost search, simulated annealing, and quenching on the
same instances, all measured on the paper's objective (total time as a
percentage of the lower bound).  The paper's position — indirect
objectives (cardinality / comm cost) are the wrong thing to optimize —
should show up as those baselines trailing both ours and annealing.
"""

import numpy as np

from repro.analysis import render_table
from repro.experiments import run_baseline_comparison

SEED = 7


def test_a5_baseline_comparison(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_baseline_comparison, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    variants = list(rows[0].values)
    body = [
        [r.instance]
        + [f"{100 * r.values[v] / r.lower_bound:.0f}%" for v in variants]
        for r in rows
    ]
    record_artifact(
        "a5_baselines",
        render_table(
            ["instance"] + variants, body,
            title="A5 — all mappers (total time, % of lower bound)",
        ),
    )

    def mean_pct(name):
        return float(
            np.mean([r.values[name] / r.lower_bound for r in rows])
        )

    ours = mean_pct("critical_edge (ours)")
    rand = mean_pct("random (mean)")
    # The paper's headline comparison must hold in aggregate.
    assert ours < rand
    # Ours must be competitive with the indirect-objective baselines.
    assert ours <= mean_pct("bokhari_cardinality") + 0.02
    assert ours <= mean_pct("lee_comm_cost") + 0.02
