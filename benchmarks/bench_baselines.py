"""Ablation A5: every registered mapper head-to-head via ``repro.api``.

Drives :func:`repro.experiments.run_baseline_comparison` with the full
registry — no per-baseline imports; adding a mapper to the registry
automatically adds it to this benchmark.  All mappers are measured on
the paper's objective (total time as a percentage of the lower bound);
the random baseline is scored by its mean, per the paper's Sec. 5
convention.  The paper's position — indirect objectives (cardinality /
comm cost) are the wrong thing to optimize — should show up as those
baselines trailing both ours and annealing.
"""

import numpy as np

from repro.analysis import render_table
from repro.api import available_mappers
from repro.experiments import run_baseline_comparison

SEED = 7


def run_registry_comparison(rng=SEED):
    """A5 over every mapper currently in the registry, labeled by name."""
    return run_baseline_comparison(
        rng=rng, mappers={name: name for name in available_mappers()}
    )


def test_a5_baseline_comparison(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_registry_comparison, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    variants = list(rows[0].values)
    body = [
        [r.instance]
        + [f"{100 * r.values[v] / r.lower_bound:.0f}%" for v in variants]
        for r in rows
    ]
    record_artifact(
        "a5_baselines",
        render_table(
            ["instance"] + variants, body,
            title="A5 — all registered mappers (total time, % of lower bound)",
        ),
    )

    def mean_pct(name):
        return float(np.mean([r.values[name] / r.lower_bound for r in rows]))

    ours = mean_pct("critical")
    # The paper's headline comparison must hold in aggregate.
    assert ours < mean_pct("random")
    # Ours must be competitive with the indirect-objective baselines.
    assert ours <= mean_pct("bokhari") + 0.02
    assert ours <= mean_pct("lee") + 0.02
