"""Racing-overhead benchmark for the ``portfolio`` mapper.

The portfolio races ``multilevel`` against ``annealing`` on the
ROADMAP's pinned waste case — the instance where annealing burns a
minute on what multilevel solves better in seconds — and must deliver
the winner's exact result at close to the winner's solo cost:

* **wall**: the racing overhead — portfolio wall minus multilevel's
  solo wall on the same instance (fork fan-out, checkpoint polling,
  and the killed arm's pre-kill compute) — stays under an absolute
  bound (``OVERHEAD_LIMIT``).  The gate used to be a 1.25x wall
  *ratio*, but the array-native core made the best arm's solo wall
  sub-second, where any fixed fork cost dwarfs it and a ratio stops
  measuring the thing we care about;
* **quality**: the portfolio's communication volume equals the best
  arm's bit-for-bit (never-killed arms are never stop-signaled, so the
  winner's outcome is identical to a solo run with the same arm seed).

Two modes:

* default — one row per ``--sizes`` entry on ``--topology`` (default
  ``hypercube:6``); records ``benchmarks/results/bench_portfolio.txt``
  and exits 1 if the largest size fails the acceptance invariant.
* ``--smoke`` — the pinned 5k-task acceptance instance itself; with
  ``--json-out FILE`` it emits a machine-readable report
  (``wall_ratio``, ``comm_ratio``, ``failures``) that
  ``benchmarks/check_budgets.py`` checks against the ``portfolio``
  entry in ``benchmarks/budgets.json``.

Run from the repo root::

    python benchmarks/bench_portfolio.py                  # full table
    python benchmarks/bench_portfolio.py --sizes 1000,5000
    python benchmarks/bench_portfolio.py --smoke --json-out BENCH_portfolio.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import build_topology, get_mapper
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, evaluate_assignment
from repro.portfolio import arm_seeds
from repro.workloads import layered_random_dag

RESULTS_PATH = Path(__file__).parent / "results" / "bench_portfolio.txt"

#: The pinned arm list: the paper's central trade-off, constructive
#: multilevel vs. iterative annealing, racing on communication volume.
ARMS = [["multilevel", {"refine_metric": "comm_volume"}], ["annealing", {}]]
OBJECTIVE = "comm_volume"

#: Hard bound on the absolute racing overhead (portfolio wall - best
#: arm's solo wall), in seconds.  Measured ~0.65s locally; the slack
#: covers slower CI runners, not a design regression.
OVERHEAD_LIMIT = 3.0


def build_instance(num_tasks: int, topology: str, seed: int):
    system = build_topology(topology)
    graph = layered_random_dag(num_tasks=num_tasks, rng=seed)
    clustering = RandomClusterer(system.num_nodes).cluster(graph, rng=seed)
    return ClusteredGraph(graph, clustering), system


def run_solo(clustered, system, seed: int) -> dict:
    """Multilevel alone, seeded exactly like portfolio arm 0."""
    mapper = get_mapper(ARMS[0][0], **ARMS[0][1])
    start = time.perf_counter()
    outcome = mapper.map(clustered, system, rng=arm_seeds(seed, len(ARMS))[0])
    wall = time.perf_counter() - start
    schedule = evaluate_assignment(clustered, system, outcome.assignment)
    return {
        "wall_time": wall,
        "comm_volume": int(schedule.communication_volume()),
        "placement": outcome.assignment.placement,
    }


def run_portfolio(clustered, system, seed: int) -> dict:
    mapper = get_mapper("portfolio", arms=ARMS, objective=OBJECTIVE)
    start = time.perf_counter()
    outcome = mapper.map(clustered, system, rng=seed)
    wall = time.perf_counter() - start
    schedule = evaluate_assignment(clustered, system, outcome.assignment)
    return {
        "wall_time": wall,
        "comm_volume": int(schedule.communication_volume()),
        "placement": outcome.assignment.placement,
        "diagnostics": outcome.portfolio,
    }


def measure(num_tasks: int, topology: str, seed: int) -> dict:
    """One instance: solo first (and a throwaway warm-up solve so the
    solo wall is not inflated by first-run allocator costs), then the
    race.  The solo run doubles as the bit-identity reference."""
    clustered, system = build_instance(num_tasks, topology, seed)
    warm_c, warm_s = build_instance(200, "hypercube:3", seed)
    get_mapper(ARMS[0][0], **ARMS[0][1]).map(warm_c, warm_s, rng=0)
    solo = run_solo(clustered, system, seed)
    race = run_portfolio(clustered, system, seed)
    wall_ratio = race["wall_time"] / max(solo["wall_time"], 1e-9)
    comm_ratio = race["comm_volume"] / max(solo["comm_volume"], 1)
    identical = bool(np.array_equal(race["placement"], solo["placement"]))
    return {
        "solo": solo,
        "portfolio": race,
        "wall_ratio": wall_ratio,
        "overhead_seconds": race["wall_time"] - solo["wall_time"],
        "comm_ratio": comm_ratio,
        "identical": identical,
    }


def acceptance(row: dict) -> tuple[bool, str]:
    wall_ok = row["overhead_seconds"] <= OVERHEAD_LIMIT
    quality_ok = row["identical"] and row["comm_ratio"] == 1.0
    verdict = (
        f"portfolio wall {row['portfolio']['wall_time']:.2f}s vs solo "
        f"{row['solo']['wall_time']:.2f}s = +{row['overhead_seconds']:.2f}s overhead "
        f"({'ok' if wall_ok else f'OVER {OVERHEAD_LIMIT}s'}); comm "
        f"{row['portfolio']['comm_volume']} vs {row['solo']['comm_volume']} "
        f"({'bit-identical' if quality_ok else 'MISMATCH'})"
    )
    return wall_ok and quality_ok, verdict


def format_rows(size: int, topology: str, row: dict) -> list[str]:
    lines = [f"{size} tasks on {topology}:"]
    lines.append(
        f"  solo       comm={row['solo']['comm_volume']:>8} "
        f"wall={row['solo']['wall_time']:>8.3f}s"
    )
    lines.append(
        f"  portfolio  comm={row['portfolio']['comm_volume']:>8} "
        f"wall={row['portfolio']['wall_time']:>8.3f}s "
        f"ratio={row['wall_ratio']:.3f}"
    )
    for arm in row["portfolio"]["diagnostics"].get("arms", []):
        status = arm["status"]
        detail = (
            f" kill_iteration={arm['kill_iteration']}"
            if status == "killed"
            else ""
        )
        lines.append(f"    arm {arm['arm']} {arm['mapper']:<10} {status}{detail}")
    return lines


def full(sizes: list[int], topology: str, seed: int, record: bool) -> int:
    report_lines = [
        "Portfolio racing vs the best solo arm (benchmarks/bench_portfolio.py)",
        f"workload: layered_random, clusterer: random, arms: "
        f"{[a[0] for a in ARMS]}, objective: {OBJECTIVE}, seed: {seed}",
    ]
    last_row: dict = {}
    for size in sizes:
        row = measure(size, topology, seed)
        last_row = row
        lines = format_rows(size, topology, row)
        print("\n".join(lines))
        report_lines.extend(lines)
    ok, verdict = acceptance(last_row)
    line = f"acceptance ({sizes[-1]} tasks): {verdict}"
    print(line)
    report_lines.append(line)
    report_lines.append(f"acceptance {'PASSED' if ok else 'FAILED'}")
    if record:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text("\n".join(report_lines) + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")
    return 0 if ok else 1


def smoke(tasks: int, topology: str, seed: int, json_out: str | None) -> int:
    started = time.perf_counter()
    row = measure(tasks, topology, seed)
    elapsed = time.perf_counter() - started
    print("\n".join(format_rows(tasks, topology, row)))
    ok, verdict = acceptance(row)
    print(f"{verdict} elapsed={elapsed:.2f}s")
    if json_out is not None:
        report = {
            "bench": "portfolio",
            "mode": "smoke",
            "tasks": tasks,
            "topology": topology,
            "seed": seed,
            "elapsed_seconds": elapsed,
            "solo": {k: row["solo"][k] for k in ("wall_time", "comm_volume")},
            "portfolio": {
                k: row["portfolio"][k] for k in ("wall_time", "comm_volume")
            },
            "arms": row["portfolio"]["diagnostics"].get("arms", []),
            "wall_ratio": row["wall_ratio"],
            "overhead_seconds": row["overhead_seconds"],
            "comm_ratio": row["comm_ratio"],
            "failures": 0 if ok else 1,
        }
        Path(json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[json report -> {json_out}]")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="1000,5000",
        help="comma-separated task counts for the full table",
    )
    parser.add_argument("--topology", default="hypercube:6", help="topology spec")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the pinned acceptance instance; --json-out feeds the CI gate",
    )
    parser.add_argument(
        "--tasks", type=int, default=5000, help="smoke-mode instance size"
    )
    parser.add_argument(
        "--smoke-topology", default="hypercube:6", help="smoke-mode topology"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="write a machine-readable smoke report for the CI budget gate",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="do not write the results file"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.tasks, args.smoke_topology, args.seed, args.json_out)
    if args.json_out is not None:
        parser.error("--json-out is a --smoke option (the CI gate input)")
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes:
        parser.error(f"--sizes needs at least one task count, got {args.sizes!r}")
    return full(sizes, args.topology, args.seed, record=not args.no_record)


if __name__ == "__main__":
    sys.exit(main())
