"""Benchmark the sharded serving fleet: gateway QPS at 1 vs 2 shards.

Stands up an in-process fleet (shard HTTP servers plus the
fingerprint-routing gateway, exactly the ``mimdmap serve`` /
``mimdmap gateway`` topology) and measures the steady-state serving
path: warm-cache ``POST /jobs`` requests, which every saturated fleet
spends most of its time answering.  Two configurations:

* **1 shard** — the gateway fronts a single service (pure proxy
  overhead on top of the service-smoke path);
* **2 shards** — the same request stream fingerprint-routed across two
  services, each owning half the keyspace.

Reported per configuration: sustained jobs/sec and the p99 request
latency in milliseconds.  The ``--json-out`` report carries the worse
(higher) of the two p99s as ``p99_ms`` for the perf gate's ``qps``
budget, plus a ``failures`` count (any non-200, non-cached, or
wrongly-routed response).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_qps.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_qps.py --smoke --json-out R.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.api.scenario import Scenario
from repro.service import (
    KeyspaceSlice,
    MappingService,
    make_gateway,
    make_server,
    scenario_fingerprint,
    shard_for_fingerprint,
)

RESULTS_PATH = Path(__file__).parent / "results" / "bench_qps.txt"

BASE = {
    "workload": "fft",
    "workload_params": {"points_log2": 2},
    "topology": "hypercube:2",
    "mapper": "critical",
}


def scenario_body(seed: int) -> dict:
    return dict(BASE, seed=seed)


def post_job(base_url: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"{base_url}/jobs",
        data=json.dumps(body).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        payload = json.loads(response.read())
        payload["_status"] = response.status
        return payload


class Fleet:
    """N shard servers plus one gateway, all in this process."""

    def __init__(self, count: int):
        self.count = count
        self.services = []
        self.servers = []
        for index in range(count):
            service = MappingService(
                max_workers=1, keyspace=KeyspaceSlice.for_shard(index, count)
            )
            server = make_server(service)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            self.services.append(service)
            self.servers.append(server)
        addresses = [f"127.0.0.1:{s.server_address[1]}" for s in self.servers]
        self.gateway = make_gateway(addresses, retries=1, retry_delay=0.05)
        threading.Thread(target=self.gateway.serve_forever, daemon=True).start()
        self.gateway_url = f"http://127.0.0.1:{self.gateway.server_address[1]}"

    def close(self) -> None:
        self.gateway.shutdown()
        self.gateway.server_close()
        for server in self.servers:
            server.shutdown()
            server.server_close()
        for service in self.services:
            service.close()


def wait_done(base_url: str, job_id: str, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{base_url}/jobs/{job_id}", timeout=30) as r:
            payload = json.loads(r.read())
        if payload["status"] == "done":
            return
        if payload["status"] == "failed":
            raise AssertionError(f"warm-up job failed: {payload}")
        time.sleep(0.02)
    raise AssertionError(f"warm-up job {job_id} did not finish in {timeout}s")


def bench_fleet(
    count: int, seeds: list[int], requests: int, lines: list[str]
) -> tuple[float, float, int]:
    """Returns (qps, p99 ms, failures) for a ``count``-shard fleet."""
    fleet = Fleet(count)
    failures = 0
    try:
        # Warm phase: execute every distinct scenario once so the timed
        # loop measures the serving path (route + cache hit), not the
        # mapper.
        for seed in seeds:
            payload = post_job(fleet.gateway_url, scenario_body(seed))
            if not payload["cached"]:
                wait_done(fleet.gateway_url, payload["id"])

        latencies = []
        start = time.perf_counter()
        for i in range(requests):
            body = scenario_body(seeds[i % len(seeds)])
            t0 = time.perf_counter()
            payload = post_job(fleet.gateway_url, body)
            latencies.append(time.perf_counter() - t0)
            scenario = Scenario.from_dict(body)
            expected = shard_for_fingerprint(
                scenario_fingerprint(scenario, 0), count
            )
            if (
                payload["_status"] != 200
                or not payload["cached"]
                or payload["shard"] != expected
            ):
                failures += 1
        elapsed = time.perf_counter() - start
    finally:
        fleet.close()

    qps = requests / elapsed
    p99 = sorted(latencies)[max(0, int(len(latencies) * 0.99) - 1)] * 1e3
    lines.append(
        f"  {count} shard(s): {qps:8.0f} jobs/sec   p99 {p99:7.2f} ms   "
        f"({requests} warm-cache requests, {failures} failure(s))"
    )
    return qps, p99, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for the CI perf gate"
    )
    parser.add_argument(
        "--json-out", default=None, help="write a machine-readable report here"
    )
    args = parser.parse_args(argv)

    num_seeds, requests = (4, 80) if args.smoke else (16, 600)
    seeds = list(range(num_seeds))

    lines = [f"gateway QPS benchmark (warm-cache POST /jobs, {requests} requests)"]
    start = time.perf_counter()
    qps_1, p99_1, fail_1 = bench_fleet(1, seeds, requests, lines)
    qps_2, p99_2, fail_2 = bench_fleet(2, seeds, requests, lines)
    elapsed = time.perf_counter() - start

    report_lines = "\n".join(lines)
    print(report_lines)

    if args.json_out:
        report = {
            "bench": "qps",
            "elapsed_seconds": elapsed,
            "requests": requests,
            "qps_1shard": qps_1,
            "qps_2shard": qps_2,
            "p99_ms_1shard": p99_1,
            "p99_ms_2shard": p99_2,
            # The perf gate's quality key: the worse of the two p99s.
            "p99_ms": max(p99_1, p99_2),
            "failures": fail_1 + fail_2,
        }
        Path(args.json_out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"[report -> {args.json_out}]")

    if not args.smoke:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report_lines + "\n")
        print(f"[recorded -> {RESULTS_PATH}]")

    if fail_1 + fail_2:
        print(f"FAIL: {fail_1 + fail_2} bad response(s) during the timed loop")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
