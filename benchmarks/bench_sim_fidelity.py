"""Ablation A4: the 1991 analytic model vs. higher-fidelity machines.

The paper evaluates every mapping with a contention-free, infinitely-
wide-processor model.  This benchmark re-executes mapped programs on the
discrete-event simulator with serialized processors and link contention
and records (a) the absolute drift and (b) that the *comparison* the
paper cares about (critical-edge mapping vs. random mapping) survives.
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines import random_mapping
from repro.clustering import RandomClusterer
from repro.core import ClusteredGraph, CriticalEdgeMapper
from repro.experiments import run_fidelity_ablation
from repro.sim import SimConfig, simulate
from repro.topology import hypercube
from repro.workloads import layered_random_dag

SEED = 7


def test_a4_fidelity(benchmark, record_artifact):
    rows = benchmark.pedantic(
        run_fidelity_ablation, kwargs={"rng": SEED}, rounds=1, iterations=1
    )
    variants = list(rows[0].values)
    body = [
        [r.instance] + [f"{r.values[v]:.0f}" for v in variants] for r in rows
    ]
    record_artifact(
        "a4_fidelity",
        render_table(["instance"] + variants, body, title="A4 — model fidelity"),
    )
    for row in rows:
        base = row.values["analytic_model"]
        assert row.values["serialized_cpus"] >= base
        assert row.values["link_contention"] >= base
        assert row.values["both"] >= base


def _ranking_trials() -> tuple[int, int, list[str]]:
    gen = np.random.default_rng(SEED)
    wins = 0
    total = 0
    lines = []
    for trial in range(6):
        system = hypercube(3)
        graph = layered_random_dag(num_tasks=100, comm_range=(1, 5), rng=gen)
        clustering = RandomClusterer(8).cluster(graph, rng=gen)
        clustered = ClusteredGraph(graph, clustering)
        ours = CriticalEdgeMapper(rng=gen).map(clustered, system)
        rand_assignment, _ = random_mapping(clustered, system, rng=gen)
        config = SimConfig(serialize_processors=True, link_contention=True)
        ours_span = simulate(clustered, system, ours.assignment, config).makespan
        rand_span = simulate(clustered, system, rand_assignment, config).makespan
        wins += ours_span <= rand_span
        total += 1
        lines.append(f"trial {trial}: ours {ours_span} vs random {rand_span}")
    return wins, total, lines


def test_a4_ranking_survives_fidelity(benchmark, record_artifact):
    """Ours vs random keeps its ordering for a majority of instances even
    under the harshest machine model (serialized + contention).

    The mapping was optimized for the paper's contention-free model, so
    some inversions under full contention are expected — the artifact
    records the exact win ratio; EXPERIMENTS.md discusses it.
    """
    wins, total, lines = benchmark.pedantic(_ranking_trials, rounds=1, iterations=1)
    record_artifact("a4_ranking", "\n".join(lines + [f"wins: {wins}/{total}"]))
    assert wins * 2 >= total  # majority survives


def test_simulator_throughput(benchmark):
    """Raw DES speed on a contended 200-task instance (harness health)."""
    system = hypercube(3)
    graph = layered_random_dag(num_tasks=200, rng=3)
    clustering = RandomClusterer(8).cluster(graph, rng=3)
    clustered = ClusteredGraph(graph, clustering)
    result = CriticalEdgeMapper(rng=3).map(clustered, system)
    config = SimConfig(serialize_processors=True, link_contention=True)
    sim = benchmark(simulate, clustered, system, result.assignment, config)
    assert sim.makespan >= result.total_time
