"""Unit tests for repro.topology.generators (the topology zoo)."""

import numpy as np
import pytest

from repro.topology import (
    binary_tree,
    butterfly,
    by_name,
    chain,
    complete,
    cube_connected_cycles,
    de_bruijn,
    hypercube,
    is_regular,
    mesh2d,
    random_connected,
    ring,
    star,
    torus2d,
)
from repro.utils import GraphError


class TestHypercube:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4, 5])
    def test_structure(self, dim):
        g = hypercube(dim)
        n = 2**dim
        assert g.num_nodes == n
        assert g.num_edges() == dim * n // 2
        assert (g.deg == dim).all() or dim == 0
        assert g.diameter() == dim

    def test_distance_is_hamming(self):
        g = hypercube(4)
        for a in range(16):
            for b in range(16):
                assert g.distance(a, b) == bin(a ^ b).count("1")

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            hypercube(-1)


class TestMeshTorus:
    def test_mesh_structure(self):
        g = mesh2d(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges() == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        assert g.diameter() == (3 - 1) + (4 - 1)
        assert g.deg.min() == 2 and g.deg.max() == 4

    def test_mesh_1xn_is_chain(self):
        assert mesh2d(1, 5).shortest[0, 4] == 4

    def test_torus_structure(self):
        g = torus2d(3, 4)
        assert g.num_nodes == 12
        assert (g.deg == 4).all()
        assert g.diameter() == 3 // 2 + 4 // 2

    def test_torus_2x2_degenerate(self):
        # Wraparound links coincide with mesh links on a 2x2.
        g = torus2d(2, 2)
        assert g.num_edges() == 4

    def test_bad_sizes(self):
        with pytest.raises(GraphError):
            mesh2d(0, 3)
        with pytest.raises(GraphError):
            torus2d(1, 3)


class TestSimpleFamilies:
    def test_ring(self):
        g = ring(6)
        assert g.num_edges() == 6
        assert is_regular(g)
        with pytest.raises(GraphError):
            ring(2)

    def test_chain(self):
        g = chain(4)
        assert g.num_edges() == 3
        assert g.deg.tolist() == [1, 2, 2, 1]

    def test_star(self):
        g = star(5)
        assert g.deg[0] == 4
        assert (g.deg[1:] == 1).all()
        assert g.diameter() == 2
        with pytest.raises(GraphError):
            star(1)

    def test_complete(self):
        g = complete(6)
        assert g.num_edges() == 15
        assert g.diameter() == 1

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_nodes == 7
        assert g.num_edges() == 6
        assert g.deg[0] == 2  # root
        assert g.deg[3:].max() == 1  # leaves


class TestFancyFamilies:
    def test_ccc(self):
        g = cube_connected_cycles(3)
        assert g.num_nodes == 24
        assert (g.deg == 3).all()
        with pytest.raises(GraphError):
            cube_connected_cycles(2)

    def test_de_bruijn(self):
        g = de_bruijn(3)
        assert g.num_nodes == 8
        assert g.deg.max() <= 4
        # de Bruijn diameter = bits
        assert g.diameter() <= 3

    def test_butterfly(self):
        g = butterfly(2)
        assert g.num_nodes == 3 * 4
        # interior levels degree 4, end levels degree 2
        assert g.deg.max() == 4
        assert g.deg.min() == 2


class TestRandomConnected:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_connected(self, seed):
        g = random_connected(15, extra_edge_prob=0.05, rng=seed)
        assert g.num_nodes == 15  # constructor validates connectivity

    def test_tree_when_no_extras(self):
        g = random_connected(12, extra_edge_prob=0.0, rng=1)
        assert g.num_edges() == 11  # spanning tree

    def test_complete_when_prob_one(self):
        g = random_connected(6, extra_edge_prob=1.0, rng=1)
        assert g.is_complete()

    def test_deterministic_by_seed(self):
        assert random_connected(10, rng=7) == random_connected(10, rng=7)

    def test_bad_args(self):
        with pytest.raises(GraphError):
            random_connected(1)
        with pytest.raises(GraphError):
            random_connected(5, extra_edge_prob=1.5)


class TestByName:
    @pytest.mark.parametrize(
        "family,size",
        [("hypercube", 8), ("mesh", 12), ("torus", 12), ("ring", 5),
         ("chain", 5), ("star", 5), ("complete", 5), ("random", 9)],
    )
    def test_dispatch(self, family, size):
        g = by_name(family, size, rng=0)
        assert g.num_nodes == size

    def test_mesh_squarest_factorization(self):
        g = by_name("mesh", 12)
        assert g.name == "mesh-3x4"

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(GraphError, match="power of two"):
            by_name("hypercube", 12)

    def test_unknown_family(self):
        with pytest.raises(GraphError, match="unknown topology"):
            by_name("klein-bottle", 8)
