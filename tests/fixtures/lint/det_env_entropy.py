"""Fixture: DET004 — ambient state and OS entropy in core paths."""
import os
import secrets
import uuid


def bad_environ():
    return os.environ["SEED"]  # expect: det_env_entropy


def bad_getenv():
    return os.getenv("SEED")  # expect: det_env_entropy


def bad_urandom():
    return os.urandom(8)  # expect: det_env_entropy


def bad_uuid():
    return uuid.uuid4()  # expect: det_env_entropy


def bad_secrets():
    return secrets.token_hex(4)  # expect: det_env_entropy


def good_explicit(seed):
    return uuid.UUID(int=seed)
