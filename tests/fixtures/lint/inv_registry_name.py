"""Fixture: INV001 — registry names must be lowercase string literals."""
from repro.api.registry import Registry, register_mapper

REG = Registry("thing")

DYNAMIC = "computed"

REG.register(DYNAMIC)(object)  # expect: inv_registry_name
REG.register("BadCase")(object)  # expect: inv_registry_name
REG.register("bad name")(object)  # expect: inv_registry_name
REG.register("good_name")(object)


@register_mapper("AlsoBad")  # expect: inv_registry_name
class BadMapper:
    pass


@register_mapper("fine_mapper")
class GoodMapper:
    pass


def register_helper(name):
    # Inside a function body: this *is* the helper definition, not a
    # registration site — out of scope for INV001.
    return REG.register(name)
