"""Fixture: INV004 — lambdas/closures registered as factories."""
from repro.api.registry import Registry

REG = Registry("thing")


def wrap(func):
    return func


REG.register("direct")(lambda rng: rng)  # expect: inv_lambda_factory
REG.register("wrapped")(wrap(lambda rng: rng))  # expect: inv_lambda_factory


def build_and_register():
    @REG.register("closure")
    def inner(rng):  # expect: inv_lambda_factory
        return rng

    return inner


def module_level_factory(rng):
    return rng


REG.register("good")(module_level_factory)
