"""Fixture: every violation carries a repro: allow[...] suppression."""
import time


def inline_comment():
    return time.time()  # repro: allow[det_wall_clock] - test harness timing


def comment_on_line_above():
    # repro: allow[det_builtin_hash] - in-process only
    return hash("x")


def several_rules_at_once():
    # repro: allow[det_wall_clock, det_builtin_hash]
    return hash(time.time())


def wildcard():
    return time.time()  # repro: allow[*]
