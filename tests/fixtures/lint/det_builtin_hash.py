"""Fixture: DET003 — builtin hash() flowing toward persistence."""


def bad_fingerprint(payload):
    return f"{hash(payload):x}"  # expect: det_builtin_hash


def bad_store_key(record):
    return hash(tuple(record))  # expect: det_builtin_hash


class Thing:
    def __hash__(self):
        # repro: allow[det_builtin_hash] - in-process dict membership only
        return hash(("thing", 3))
