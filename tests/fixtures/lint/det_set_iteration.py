"""Fixture: DET005 — set iteration order escaping into outcomes."""


def bad_for():
    out = []
    for item in {"b", "a", "c"}:  # expect: det_set_iteration
        out.append(item)
    return out


def bad_list(xs):
    return list(set(xs))  # expect: det_set_iteration


def bad_tuple(xs):
    return tuple(frozenset(xs))  # expect: det_set_iteration


def bad_join(xs):
    return ",".join({str(x) for x in xs})  # expect: det_set_iteration


def bad_comprehension(xs):
    return [x + 1 for x in set(xs)]  # expect: det_set_iteration


def good_sorted(xs):
    total = sum(set(xs))
    biggest = max({1, 2, 3})
    return sorted(set(xs)), total, biggest
