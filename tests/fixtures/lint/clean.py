"""Fixture: zero findings — the blessed idioms pass untouched."""
import numpy as np


def seeded_randomness(rng=None):
    return np.random.default_rng(rng).permutation(4)


def derived_streams(seed):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(3)]


def deterministic_sets(xs):
    ordered = sorted(set(xs))
    count = len({x + 1 for x in xs})
    return ordered, count


def narrow_errors(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None
