"""Fixture: DET002 — clock reads outside the allowlisted timer."""
import time
from datetime import date, datetime
from time import perf_counter


def bad_wall():
    return time.time()  # expect: det_wall_clock


def bad_perf():
    return perf_counter()  # expect: det_wall_clock


def bad_datetime():
    return datetime.now()  # expect: det_wall_clock


def bad_today():
    return date.today()  # expect: det_wall_clock


def good_sleep():
    time.sleep(0)
