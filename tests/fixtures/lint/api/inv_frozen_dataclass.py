"""Fixture: INV002 — public api/ dataclasses must be frozen."""
from dataclasses import dataclass


@dataclass
class BadBare:  # expect: inv_frozen_dataclass
    x: int = 0


@dataclass()
class BadEmptyCall:  # expect: inv_frozen_dataclass
    x: int = 0


@dataclass(frozen=False)
class BadExplicit:  # expect: inv_frozen_dataclass
    x: int = 0


@dataclass(frozen=True)
class GoodFrozen:
    x: int = 0


@dataclass
class _PrivateScratch:
    x: int = 0


class GoodPlainClass:
    pass
