"""Fixture: a path matching the clock allowlist (repro/utils.py).

The one sanctioned timer module may read the clock without findings.
"""
import time


def sanctioned_timer():
    return time.perf_counter()
