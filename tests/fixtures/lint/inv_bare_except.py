"""Fixture: INV003 — bare and broad except handlers."""


def bad_bare():
    try:
        return 1
    except:  # expect: inv_bare_except
        return 0


def bad_broad():
    try:
        return 1
    except Exception:  # expect: inv_bare_except
        return 0


def bad_base():
    try:
        return 1
    except BaseException:  # expect: inv_bare_except
        return 0


def bad_tuple():
    try:
        return 1
    except (ValueError, Exception):  # expect: inv_bare_except
        return 0


def good_narrow():
    try:
        return 1
    except (ValueError, KeyError):
        return 0
