"""Fixture: DET001 — process-global RNG use (never imported, only parsed)."""
import random

import numpy as np
from numpy.random import default_rng
from random import shuffle


def bad_stdlib():
    return random.randint(0, 3)  # expect: det_unseeded_random


def bad_from_import(items):
    shuffle(items)  # expect: det_unseeded_random


def bad_numpy_seed():
    np.random.seed(0)  # expect: det_unseeded_random


def bad_numpy_global():
    return np.random.rand(3)  # expect: det_unseeded_random


def good_seeded(rng):
    gen = np.random.default_rng(7)
    seq = np.random.SeedSequence(5)
    return default_rng(seq), gen
