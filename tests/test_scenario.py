"""Scenario spec + sweep engine tests.

Covers the generic registry machinery, scenario round-tripping
(dict -> JSON -> Scenario equality), grid expansion counts, sweep
streaming/resume (half-written JSONL re-executes only the missing runs,
bit-identically), and serial/parallel byte equality.
"""

import json

import pytest

from repro.api import (
    CLUSTERERS,
    MAPPERS,
    TOPOLOGIES,
    WORKLOADS,
    DuplicateComponentError,
    Registry,
    RegistryError,
    Scenario,
    ScenarioError,
    UnknownComponentError,
    available_clusterers,
    available_mappers,
    available_topologies,
    available_workloads,
    build_topology,
    build_workload,
    expand_spec,
    format_sweep,
    get_clusterer,
    load_spec,
    parse_topology_spec,
    run_scenarios,
    summarize_sweep,
)
from repro.io import read_jsonl
from repro.utils import MappingError

# A tiny 2 x 2 x 2 x 3 grid (24 runs with replicas=1) that runs fast.
GRID_AXES = dict(
    workload=[
        {"name": "fft", "params": {"points_log2": 2}},
        {"name": "layered_random", "params": {"num_tasks": 24}},
    ],
    clustering=["random", "dsc"],
    topology=["hypercube:2", "mesh2d:2x2"],
    mapper=["critical", ("random", {"samples": 4}), ("tabu", {"iterations": 5})],
)


def tiny_grid(seed=3, replicas=1):
    return Scenario.grid(**GRID_AXES, seed=seed, replicas=replicas)


class TestGenericRegistry:
    def test_four_registries_populated(self):
        for available in (
            available_mappers,
            available_clusterers,
            available_workloads,
            available_topologies,
        ):
            assert len(available()) >= 4

    def test_same_bad_name_message_across_registries(self):
        messages = []
        for registry in (MAPPERS, CLUSTERERS, WORKLOADS, TOPOLOGIES):
            with pytest.raises(RegistryError) as excinfo:
                registry.register("Not A Name")
            messages.append(
                str(excinfo.value).replace(registry.kind, "<kind>", 1)
            )
        assert len(set(messages)) == 1

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("thing")(lambda: None)
        with pytest.raises(DuplicateComponentError, match="thing"):
            reg.register("thing")(lambda: None)

    def test_unknown_names_kind_and_alternatives(self):
        with pytest.raises(UnknownComponentError, match="clusterer 'nope'"):
            get_clusterer("nope", num_clusters=4)

    def test_deterministic_generators_accept_rng(self):
        g1 = build_workload("cholesky", {"tiles": 3}, rng=1)
        g2 = build_workload("cholesky", {"tiles": 3}, rng=999)
        assert g1.num_tasks == g2.num_tasks

    def test_topology_spec_grammar(self):
        assert parse_topology_spec("torus2d:4x4") == ("torus2d", (4, 4))
        assert parse_topology_spec("petersen") == ("petersen", ())
        assert build_topology("hypercube:3").num_nodes == 8
        assert build_topology("torus2d:4x4").num_nodes == 16
        with pytest.raises(UnknownComponentError, match="unknown topology"):
            parse_topology_spec("moebius:3")
        with pytest.raises(UnknownComponentError, match="malformed"):
            parse_topology_spec("mesh2d:3xbanana")
        with pytest.raises(UnknownComponentError, match="wrong number"):
            build_topology("hypercube:3x3x3x3")

    def test_random_topologies_are_seeded(self):
        assert (
            build_topology("random:8", rng=5).edges()
            == build_topology("random:8", rng=5).edges()
        )


class TestScenarioRoundTrip:
    def test_dict_json_round_trip(self):
        s = Scenario(
            workload="fft",
            workload_params={"points_log2": 3},
            clustering="dsc",
            topology="hypercube:3",
            mapper="tabu",
            mapper_params={"iterations": 9},
            seed=42,
            replicas=3,
            name="demo",
        )
        assert Scenario.from_dict(s.to_dict()) == s
        assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s

    def test_json_file_round_trip(self, tmp_path):
        s = Scenario(workload="cholesky", workload_params={"tiles": 4},
                     topology="torus2d:3x3", seed=7)
        path = tmp_path / "scenario.json"
        s.to_json(path)
        assert Scenario.from_json(path) == s

    def test_validation_names_the_axis(self):
        cases = [
            (dict(workload="nope", topology="hypercube:2"), "'workload'"),
            (dict(workload="fft", topology="moebius:2"), "'topology'"),
            (dict(workload="fft", topology="hypercube:2", clustering="x"),
             "'clustering'"),
            (dict(workload="fft", topology="hypercube:2", mapper="x"),
             "'mapper'"),
            (dict(workload="fft", topology="hypercube:2", replicas=0),
             "'replicas'"),
            (dict(workload="fft", topology="hypercube:2",
                  mapper_params={1: 2}), "'mapper_params'"),
        ]
        for kwargs, fragment in cases:
            with pytest.raises(ScenarioError, match=fragment):
                Scenario(**kwargs)

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            Scenario.from_dict({"workload": "fft", "topology": "hypercube:2",
                                "wat": 1})
        with pytest.raises(ScenarioError, match="'topology'"):
            Scenario.from_dict({"workload": "fft"})


class TestGridExpansion:
    def test_cross_product_count_and_order(self):
        scenarios = tiny_grid()
        assert len(scenarios) == 2 * 2 * 2 * 3
        assert len({s.key() for s in scenarios}) == len(scenarios)
        # workload-major order: the first block shares the first workload.
        assert all(s.workload == "fft" for s in scenarios[:12])

    def test_expand_spec_grid_and_explicit(self):
        spec = {
            "grid": {
                "workload": {"name": "fft", "params": {"points_log2": 2}},
                "topology": ["hypercube:2", "mesh2d:2x2"],
                "mapper": ["critical", "random"],
            },
            "seed": 5,
            "replicas": 2,
            "scenarios": [
                {"workload": "cholesky", "workload_params": {"tiles": 3},
                 "topology": "ring:4"}
            ],
        }
        scenarios = expand_spec(spec)
        assert len(scenarios) == 4 + 1
        assert all(s.replicas == 2 for s in scenarios[:4])
        assert scenarios[-1].workload == "cholesky"

    def test_expand_spec_rejects_bad_shapes(self):
        with pytest.raises(ScenarioError, match="unknown sweep-spec key"):
            expand_spec({"grdi": {}})
        with pytest.raises(ScenarioError, match="unknown grid axis"):
            expand_spec({"grid": {"workload": "fft", "topology": "ring:4",
                                  "mappers": []}})
        with pytest.raises(ScenarioError, match="no scenarios"):
            expand_spec({"scenarios": []})

    def test_load_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "grid": {"workload": {"name": "fft", "params": {"points_log2": 2}},
                     "topology": "hypercube:2"},
        }))
        scenarios = load_spec(path)
        assert len(scenarios) == 1
        assert scenarios[0].mapper == "critical"


class TestSweep:
    @pytest.fixture(scope="class")
    def grid_and_reference(self, tmp_path_factory):
        """The tiny grid run serially once; later tests compare against it."""
        out = tmp_path_factory.mktemp("sweep") / "ref.jsonl"
        scenarios = tiny_grid()
        result = run_scenarios(scenarios, out=out, max_workers=1)
        return scenarios, result, out

    def test_streams_one_record_per_run(self, grid_and_reference):
        scenarios, result, out = grid_and_reference
        assert len(result.records) == 24
        assert result.executed == 24 and result.reused == 0
        on_disk = read_jsonl(out)
        assert on_disk == result.records
        keys = [r["key"] for r in on_disk]
        assert len(set(keys)) == len(keys)

    def test_parallel_is_bit_identical(self, grid_and_reference, tmp_path):
        scenarios, _, ref = grid_and_reference
        out = tmp_path / "parallel.jsonl"
        run_scenarios(scenarios, out=out, max_workers=4)
        assert out.read_bytes() == ref.read_bytes()

    def test_resume_after_truncation(self, grid_and_reference, tmp_path):
        scenarios, reference, ref = grid_and_reference
        lines = ref.read_text().splitlines(keepends=True)
        out = tmp_path / "resume.jsonl"
        # Keep 10 complete records plus a torn 11th line (killed writer).
        out.write_text("".join(lines[:10]) + lines[10][:25])
        result = run_scenarios(scenarios, out=out, max_workers=2)
        assert result.reused == 10
        assert result.executed == 14
        assert out.read_bytes() == ref.read_bytes()
        assert result.records == reference.records

    def test_replicas_expand_and_reseed(self, tmp_path):
        scenarios = Scenario.grid(
            workload={"name": "layered_random", "params": {"num_tasks": 20}},
            topology="hypercube:2",
            mapper=("random", {"samples": 3}),
            seed=1,
            replicas=3,
        )
        result = run_scenarios(scenarios, max_workers=1)
        assert len(result.records) == 3
        assignments = {tuple(r["outcome"]["assignment"]) for r in result.records}
        assert len(assignments) > 1  # replicas draw independent streams

    def test_summary_groups_by_everything_but_mapper(self, grid_and_reference):
        _, result, _ = grid_and_reference
        summaries = summarize_sweep(result.records)
        assert len(summaries) == 8  # 2 workloads x 2 clusterings x 2 topologies
        for _, rows in summaries:
            assert len(rows) == 3  # one row per mapper config
            assert all(row["replicas"] == 1 for row in rows)
        table = format_sweep(result.records)
        assert "mean total time" in table and "tabu[iterations=5]" in table

    def test_records_are_wall_clock_free(self, grid_and_reference):
        _, result, _ = grid_and_reference
        assert all("wall_time" not in r["outcome"] for r in result.records)

    def test_errors_name_the_scenario(self):
        # 4 tasks cannot cover the 8 nodes of a 3-cube.
        bad = Scenario(workload="fft", workload_params={"points_log2": 2},
                       topology="chain:20")
        with pytest.raises(MappingError, match="fft"):
            run_scenarios([bad])

    def test_empty_sweep_rejected(self):
        with pytest.raises(MappingError, match="at least one"):
            run_scenarios([])


class TestSweepCrashSafety:
    """The checkpoint file must survive a failing or interrupted resume."""

    def test_failed_sweep_preserves_existing_checkpoint(self, tmp_path):
        good = Scenario.grid(
            workload={"name": "layered_random", "params": {"num_tasks": 16}},
            topology="hypercube:2",
            mapper=("random", {"samples": 2}),
            seed=9,
        )
        out = tmp_path / "out.jsonl"
        run_scenarios(good, out=out, max_workers=1)
        checkpoint = out.read_bytes()
        # fft:2 has 12 tasks, chain:20 has 20 nodes -> build_scenario_instance
        # raises mid-sweep; the finished checkpoint must not be truncated.
        bad = good + [Scenario(workload="fft", workload_params={"points_log2": 2},
                               topology="chain:20", seed=9)]
        with pytest.raises(MappingError, match="fft"):
            run_scenarios(bad, out=out, max_workers=1)
        assert out.read_bytes() == checkpoint

    def test_interrupted_tmp_records_are_reused(self, tmp_path):
        scenarios = tiny_grid()
        ref = tmp_path / "ref.jsonl"
        reference = run_scenarios(scenarios, out=ref, max_workers=1)
        out = tmp_path / "out.jsonl"
        # Simulate a killed first run: no finished file, 6 records in .tmp.
        lines = ref.read_text().splitlines(keepends=True)
        (tmp_path / "out.jsonl.tmp").write_text("".join(lines[:6]))
        result = run_scenarios(scenarios, out=out, max_workers=1)
        assert result.reused == 6 and result.executed == 18
        assert out.read_bytes() == ref.read_bytes()
        assert result.records == reference.records


class TestSpecScalarValidation:
    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"seed": None}, "'seed'"),
            ({"seed": True}, "'seed'"),
            ({"replicas": "two"}, "'replicas'"),
            ({"name": 7}, "'name'"),
        ],
    )
    def test_bad_scalars_name_the_axis(self, overrides, fragment):
        spec = {
            "grid": {"workload": {"name": "fft", "params": {"points_log2": 2}},
                     "topology": "hypercube:2"},
            **overrides,
        }
        with pytest.raises(ScenarioError, match=fragment):
            expand_spec(spec)


class TestAblationInstanceAxes:
    def test_fixed_structure_workload_usable(self):
        import numpy as np

        from repro.experiments.ablations import _instances
        from repro.topology import hypercube

        gen = np.random.default_rng(1)
        rows = list(_instances(
            [hypercube(2)], 1, gen,
            workload="fft", workload_params={"points_log2": 2},
        ))
        assert rows[0][1].graph.num_tasks == 12
