"""Tests for the consolidated report and the experiment export."""

import csv
import io
import json

import pytest

from repro.analysis import mapping_report
from repro.analysis.stats import ExperimentRow
from repro.core import CriticalEdgeMapper
from repro.io import rows_to_csv, rows_to_json, save_rows
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def result():
    clustered, system = random_instance(5)
    return CriticalEdgeMapper(rng=5).map(clustered, system)


def _rows():
    return [
        ExperimentRow(
            index=1, num_tasks=100, num_processors=8, topology="hypercube-8",
            lower_bound=100, our_total_time=104, random_mean_total_time=148.0,
            reached_lower_bound=False,
        ),
        ExperimentRow(
            index=2, num_tasks=50, num_processors=8, topology="hypercube-8",
            lower_bound=50, our_total_time=50, random_mean_total_time=89.0,
            reached_lower_bound=True,
        ),
    ]


class TestMappingReport:
    def test_contains_all_sections(self, result):
        text = mapping_report(result)
        for needle in (
            "lower bound",
            "final mapping",
            "parallel metrics",
            "embedding quality",
            "critical structure",
            "speedup",
            "dilation",
        ):
            assert needle in text
        assert "--- schedule ---" not in text

    def test_gantt_optional(self, result):
        text = mapping_report(result, include_gantt=True)
        assert "--- schedule ---" in text
        assert "time |" in text

    def test_numbers_match_result(self, result):
        text = mapping_report(result)
        assert str(result.lower_bound) in text
        assert str(result.total_time) in text


class TestExport:
    def test_csv_round_trip(self):
        text = rows_to_csv(_rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        assert parsed[0]["topology"] == "hypercube-8"
        assert float(parsed[0]["improvement"]) == pytest.approx(44.0)
        assert parsed[1]["reached_lower_bound"] == "True"

    def test_json_round_trip(self):
        data = json.loads(rows_to_json(_rows()))
        assert len(data) == 2
        assert data[0]["ours_pct"] == pytest.approx(104.0)
        assert data[1]["reached_lower_bound"] is True

    def test_save_by_suffix(self, tmp_path):
        csv_path = save_rows(tmp_path / "t.csv", _rows())
        json_path = save_rows(tmp_path / "t.json", _rows())
        assert csv_path.read_text().startswith("index,")
        assert json.loads(json_path.read_text())[0]["index"] == 1

    def test_bad_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            save_rows(tmp_path / "t.xlsx", _rows())
