"""Tests for the pluggable store backends (repro.service.backends).

Covers the StoreBackend contract both implementations must honor:
byte-identical outcome round-trips, torn-write recovery, the explicit
sync durability policy, JSONL's single-writer lock, and SQLite's
concurrent multi-process appends.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.io.jsonl import read_jsonl
from repro.service import (
    JsonlBackend,
    ResultStore,
    SqliteBackend,
    StoreBackend,
    StoreLockedError,
    open_backend,
    outcome_to_dict,
)
from repro.service.fingerprint import canonical_json
from repro.utils import GraphError, MappingError

SRC = Path(__file__).resolve().parent.parent / "src"


def make_outcome(i=0):
    from repro.api.outcome import MapOutcome

    return MapOutcome(
        mapper="critical",
        assignment=Assignment(np.array([2, 0, 3, 1], dtype=np.int64)),
        total_time=10 + i,
        lower_bound=8,
        evaluations=3,
        reached_lower_bound=False,
        wall_time=0.125,
        extras={"trials": 2.0},
        metrics={"hop_bytes": 7.0},
    )


def run_child(code: str) -> subprocess.CompletedProcess:
    """Run a python snippet in a fresh process with the repo importable."""
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )


CHILD_PRELUDE = """
import numpy as np
from repro.api.outcome import MapOutcome
from repro.core.assignment import Assignment
from repro.service import ResultStore

def make_outcome(i=0):
    return MapOutcome(
        mapper="critical",
        assignment=Assignment(np.array([2, 0, 3, 1], dtype=np.int64)),
        total_time=10 + i, lower_bound=8, evaluations=3,
        reached_lower_bound=False, wall_time=0.125,
        extras={"trials": 2.0}, metrics={"hop_bytes": 7.0},
    )
"""


def store_file(tmp_path, backend):
    suffix = {"jsonl": "jsonl", "sqlite": "db"}[backend]
    return tmp_path / f"store.{suffix}"


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
class TestBackendContract:
    def test_round_trip_byte_identical(self, tmp_path, backend):
        path = store_file(tmp_path, backend)
        outcome = make_outcome()
        want = canonical_json(outcome_to_dict(outcome))
        store = ResultStore(path, backend=backend)
        assert store.backend_name == backend
        assert store.put("fp1", outcome)
        assert not store.put("fp1", outcome)  # first write wins
        store.close()

        reopened = ResultStore(path, backend=backend)
        assert reopened.recovered == 1
        got = reopened.get("fp1")
        assert canonical_json(outcome_to_dict(got)) == want
        assert got.wall_time == outcome.wall_time
        assert got.metrics == outcome.metrics
        reopened.close()

    def test_auto_backend_picked_by_suffix(self, tmp_path, backend):
        path = store_file(tmp_path, backend)
        store = ResultStore(path)  # backend="auto"
        assert store.backend_name == backend
        store.close()

    def test_put_after_close_refused(self, tmp_path, backend):
        path = store_file(tmp_path, backend)
        store = ResultStore(path, backend=backend)
        assert store.put("fp1", make_outcome())
        store.close()
        assert not store.put("fp2", make_outcome())
        again = ResultStore(path, backend=backend)
        assert again.recovered == 1
        again.close()

    def test_crash_durability_with_sync_always(self, tmp_path, backend):
        """A record acknowledged before a hard kill survives the restart."""
        path = store_file(tmp_path, backend)
        result = run_child(
            CHILD_PRELUDE
            + f"""
import os
store = ResultStore({str(path)!r}, backend={backend!r}, sync="always")
assert store.put("fp-crash", make_outcome())
os._exit(1)  # no close(), no atexit: a hard crash
"""
        )
        assert result.returncode == 1, result.stderr
        store = ResultStore(path, backend=backend)
        assert store.recovered == 1
        assert "fp-crash" in store
        store.close()

    def test_sync_never_accepted(self, tmp_path, backend):
        path = store_file(tmp_path, backend)
        store = ResultStore(path, backend=backend, sync="never")
        assert store.put("fp1", make_outcome())
        store.close()
        reopened = ResultStore(path, backend=backend)
        assert reopened.recovered == 1
        reopened.close()

    def test_unknown_sync_policy_rejected(self, tmp_path, backend):
        with pytest.raises(MappingError, match="sync policy"):
            ResultStore(store_file(tmp_path, backend), backend=backend, sync="maybe")


class TestJsonlBackend:
    def put_records(self, path, n, start=0):
        store = ResultStore(path, backend="jsonl")
        for i in range(start, start + n):
            store.put(f"fp{i}", make_outcome(i))
        store.close()

    def test_torn_tail_truncated_so_appends_are_safe(self, tmp_path):
        """The satellite bugfix: a torn final record must be physically
        dropped — otherwise the next append concatenates onto the
        partial line and corrupts *both* records."""
        path = tmp_path / "store.jsonl"
        self.put_records(path, 2)
        good_size = path.stat().st_size
        with path.open("a") as fh:
            fh.write('{"fingerprint": "fp-torn", "outcome": {"mapper": "cr')

        store = ResultStore(path, backend="jsonl")
        assert store.recovered == 2
        assert "fp-torn" not in store
        assert path.stat().st_size == good_size  # tail truncated on open
        store.put("fp-new", make_outcome(9))
        store.close()

        # The file parses strictly now: no merged/corrupt line anywhere.
        records = read_jsonl(path, tolerate_partial=False)
        assert [r["fingerprint"] for r in records] == ["fp0", "fp1", "fp-new"]

    def test_torn_terminated_garbage_tail_also_recovered(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self.put_records(path, 1)
        with path.open("a") as fh:
            fh.write('{"fingerprint": "fp-torn", "outco\n')
        store = ResultStore(path, backend="jsonl")
        assert store.recovered == 1
        store.put("fp-new", make_outcome())
        store.close()
        assert len(read_jsonl(path, tolerate_partial=False)) == 2

    def test_corrupt_mid_file_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self.put_records(path, 1)
        good = path.read_text()
        path.write_text("not json at all\n" + good)
        with pytest.raises(GraphError, match="corrupt mid-file"):
            ResultStore(path, backend="jsonl")

    def test_single_writer_lock_same_process(self, tmp_path):
        pytest.importorskip("fcntl")
        path = tmp_path / "store.jsonl"
        first = ResultStore(path, backend="jsonl")
        with pytest.raises(StoreLockedError, match="single-writer"):
            ResultStore(path, backend="jsonl")
        first.close()
        second = ResultStore(path, backend="jsonl")  # released on close
        second.close()

    def test_single_writer_lock_cross_process(self, tmp_path):
        pytest.importorskip("fcntl")
        path = tmp_path / "store.jsonl"
        holder = ResultStore(path, backend="jsonl")
        try:
            result = run_child(
                CHILD_PRELUDE
                + f"""
from repro.service import StoreLockedError
try:
    ResultStore({str(path)!r}, backend="jsonl")
except StoreLockedError:
    print("LOCKED")
else:
    print("NOT-LOCKED")
"""
            )
            assert "LOCKED" in result.stdout, result.stderr
        finally:
            holder.close()


class TestSqliteBackend:
    def test_wal_mode_active(self, tmp_path):
        import sqlite3

        path = tmp_path / "store.db"
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        conn.close()
        assert mode.lower() == "wal"

    def test_concurrent_multi_process_writers(self, tmp_path):
        """Two processes appending to one SQLite store at once: every
        record lands, shared fingerprints resolve first-write-wins."""
        path = tmp_path / "store.db"
        child = CHILD_PRELUDE + """
store = ResultStore(PATH, backend="sqlite")
for i in range(START, START + 20):
    store.put(f"fp{i}", make_outcome(i))
store.put("fp-shared", make_outcome(99))
store.close()
print("DONE")
"""
        env = os.environ.copy()
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    child.replace("PATH", repr(str(path))).replace(
                        "START", str(start)
                    ),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for start in (0, 20)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "DONE" in out

        store = ResultStore(path)
        assert store.recovered == 41  # 2 x 20 distinct + 1 shared
        assert "fp-shared" in store
        store.close()

    def test_two_live_stores_same_db(self, tmp_path):
        """Unlike JSONL, SQLite allows two concurrently-open writers."""
        path = tmp_path / "store.db"
        a = ResultStore(path)
        b = ResultStore(path)
        a.put("fpA", make_outcome(1))
        b.put("fpB", make_outcome(2))
        a.close()
        b.close()
        merged = ResultStore(path)
        assert merged.recovered == 2
        merged.close()

    def test_unreadable_database_rejected(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_text("this is not a sqlite database, not even close\n" * 10)
        with pytest.raises(MappingError, match="SQLite"):
            ResultStore(path)


class TestOpenBackend:
    def test_explicit_names(self, tmp_path):
        jsonl = open_backend(tmp_path / "a.data", backend="jsonl")
        assert isinstance(jsonl, JsonlBackend) and isinstance(jsonl, StoreBackend)
        jsonl.close()
        sqlite = open_backend(tmp_path / "b.data", backend="sqlite")
        assert isinstance(sqlite, SqliteBackend) and isinstance(sqlite, StoreBackend)
        sqlite.close()

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("store.jsonl", "jsonl"),
            ("store.log", "jsonl"),
            ("store.db", "sqlite"),
            ("store.sqlite", "sqlite"),
            ("store.SQLITE3", "sqlite"),
        ],
    )
    def test_auto_by_suffix(self, tmp_path, name, expected):
        backend = open_backend(tmp_path / name)
        assert backend.name == expected
        backend.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(MappingError, match="unknown store backend"):
            open_backend(tmp_path / "x.jsonl", backend="postgres")


class TestServiceWithSqliteStore:
    def test_service_recovers_sqlite_store(self, tmp_path):
        """A MappingService over an SQLite store round-trips results
        across a restart exactly like the JSONL original."""
        from repro.clustering import RandomClusterer
        from repro.service import MappingService
        from repro.topology import hypercube
        from repro.workloads import layered_random_dag

        graph = layered_random_dag(num_tasks=16, rng=3)
        system = hypercube(2)
        clustering = RandomClusterer(num_clusters=system.num_nodes).cluster(
            graph, rng=3
        )
        path = tmp_path / "service.db"
        with MappingService(store_path=path) as svc:
            first = svc.solve(graph, clustering, system, mapper="critical", rng=3)
        with MappingService(store_path=path) as svc2:
            again = svc2.solve(graph, clustering, system, mapper="critical", rng=3)
            assert svc2.executed == 0  # recovered, not recomputed
        assert outcome_to_dict(first) == outcome_to_dict(again)
