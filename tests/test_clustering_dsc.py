"""Unit tests for the DSC clusterer."""

import numpy as np
import pytest

from repro.clustering import DscClusterer, RandomClusterer
from repro.core import ClusteredGraph, Clustering, TaskGraph, lower_bound
from repro.utils import GraphError
from repro.workloads import gaussian_elimination_dag, layered_random_dag


class TestDsc:
    def test_partition_valid(self):
        g = layered_random_dag(num_tasks=40, rng=0)
        c = DscClusterer(6).cluster(g, rng=0)
        assert c.num_clusters == 6
        assert (c.sizes() > 0).all()

    def test_zeroes_heavy_chain(self):
        """A chain with heavy edges must collapse into one cluster."""
        g = TaskGraph([1, 1, 1], [(0, 1, 10), (1, 2, 10)])
        c = DscClusterer(1).cluster(g)
        assert c.num_clusters == 1

    def test_chain_clustering_reaches_serial_bound(self):
        """On a pure chain, DSC's clustering gives the chain's node-weight
        sum as the bound (all communication internalized)."""
        g = TaskGraph([2, 3, 4], [(0, 1, 5), (1, 2, 5)])
        c = DscClusterer(2).cluster(g)
        bound = lower_bound(ClusteredGraph(g, c))
        # The chain must stay mostly together: bound well below the
        # all-singleton bound 2+5+3+5+4 = 19.
        assert bound <= 14

    def test_independent_tasks_spread(self):
        """With no edges there is nothing to zero: every task stays a
        singleton until the merge pass packs them into the target count."""
        g = TaskGraph([3, 3, 3, 3])
        c = DscClusterer(4).cluster(g)
        assert sorted(c.sizes().tolist()) == [1, 1, 1, 1]

    def test_beats_random_clustering_bound(self):
        """DSC's whole point: a lower parallel-time estimate than random
        grouping on communication-heavy structured DAGs."""
        g = gaussian_elimination_dag(10)
        dsc_bound = lower_bound(
            ClusteredGraph(g, DscClusterer(4).cluster(g, rng=1))
        )
        rnd_bound = lower_bound(
            ClusteredGraph(g, RandomClusterer(4).cluster(g, rng=1))
        )
        assert dsc_bound <= rnd_bound

    def test_usable_by_mapper(self):
        from repro.core import CriticalEdgeMapper
        from repro.topology import mesh2d

        g = layered_random_dag(num_tasks=36, rng=3)
        c = DscClusterer(6).cluster(g, rng=3)
        result = CriticalEdgeMapper(rng=3).map(
            ClusteredGraph(g, c), mesh2d(2, 3)
        )
        assert result.total_time >= result.lower_bound

    def test_split_when_dsc_collapses_too_far(self):
        """If DSC naturally produces fewer clusters than requested, the
        driver splits the largest to honour the contract."""
        g = TaskGraph([1, 1, 1, 1], [(0, 1, 50), (1, 2, 50), (2, 3, 50)])
        c = DscClusterer(2).cluster(g)
        assert c.num_clusters == 2
        assert (c.sizes() > 0).all()

    def test_too_many_clusters_rejected(self):
        g = layered_random_dag(num_tasks=5, rng=0)
        with pytest.raises(GraphError):
            DscClusterer(10).cluster(g)
