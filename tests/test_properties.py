"""Property-based tests (hypothesis) for the core invariants.

These encode the theorems and structural guarantees the paper relies on:

* Theorem 3's premise: no assignment beats the ideal lower bound.
* The ideal schedule is the pointwise-minimal schedule.
* Critical edges are exactly the edges whose weight increase raises the
  bound (checked semantically on random instances).
* The mapper always returns valid bijections and never loses to its own
  initial assignment.
* Serialization round-trips, generated topologies stay connected, and
  the DES agrees with the analytic evaluator on random instances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import exhaustive_optimum
from repro.core import (
    Assignment,
    ClusteredGraph,
    Clustering,
    CriticalEdgeMapper,
    TaskGraph,
    analyze_criticality,
    evaluate_assignment,
    ideal_schedule,
    lower_bound,
    total_time,
)
from repro.io import task_graph_from_dict, task_graph_to_dict
from repro.sim import simulate
from repro.topology import by_name, random_connected
from repro.workloads import layered_random_dag

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def task_graphs(draw, max_tasks: int = 24) -> TaskGraph:
    """Random small DAGs: edges only forward in a drawn order."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    sizes = draw(
        st.lists(st.integers(1, 9), min_size=n, max_size=n)
    )
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):  # p = 0.25
                edges.append((i, j, draw(st.integers(1, 9))))
    return TaskGraph(sizes, edges)


@st.composite
def clustered_instances(draw, max_tasks: int = 24):
    """A clustered graph plus a compatible connected system graph."""
    graph = draw(task_graphs(max_tasks))
    n = graph.num_tasks
    k = draw(st.integers(1, min(n, 6)))
    # Guarantee non-empty clusters: first k tasks fix one cluster each.
    labels = list(range(k)) + [
        draw(st.integers(0, k - 1)) for _ in range(n - k)
    ]
    clustering = Clustering(np.asarray(labels), num_clusters=k)
    seed = draw(st.integers(0, 2**16))
    if k == 1:
        system = _single_node()
    else:
        system = random_connected(k, extra_edge_prob=0.3, rng=seed)
    return ClusteredGraph(graph, clustering), system, seed


def _single_node():
    from repro.topology import SystemGraph

    return SystemGraph(np.zeros((1, 1), dtype=np.int64))


# ----------------------------------------------------------------------
# Schedule / bound invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(clustered_instances())
def test_no_assignment_beats_lower_bound(instance):
    clustered, system, seed = instance
    bound = lower_bound(clustered)
    assignment = Assignment.random(system.num_nodes, rng=seed)
    assert total_time(clustered, system, assignment) >= bound


@SETTINGS
@given(clustered_instances())
def test_ideal_schedule_is_pointwise_minimal(instance):
    clustered, system, seed = instance
    ideal = ideal_schedule(clustered)
    schedule = evaluate_assignment(
        clustered, system, Assignment.random(system.num_nodes, rng=seed)
    )
    assert (schedule.start >= ideal.i_start).all()
    assert (schedule.end >= ideal.i_end).all()


@SETTINGS
@given(clustered_instances())
def test_schedule_respects_precedence_and_sizes(instance):
    clustered, system, seed = instance
    schedule = evaluate_assignment(
        clustered, system, Assignment.random(system.num_nodes, rng=seed)
    )
    assert np.array_equal(
        schedule.end - schedule.start, clustered.task_sizes
    )
    for e in clustered.graph.edges():
        assert (
            schedule.start[e.dst]
            >= schedule.end[e.src] + schedule.comm[e.src, e.dst]
        )


@SETTINGS
@given(clustered_instances())
def test_ideal_edges_dominate_clustered_weights(instance):
    clustered, _, _ = instance
    ideal = ideal_schedule(clustered)
    mask = clustered.prob_edge > 0
    assert (ideal.i_edge[mask] >= clustered.clus_edge[mask]).all()


# ----------------------------------------------------------------------
# Criticality invariants (semantic check of Theorems 1-2)
# ----------------------------------------------------------------------


@SETTINGS
@given(clustered_instances(max_tasks=14))
def test_critical_edges_semantics(instance):
    """Bumping a critical inter-cluster edge raises the bound; bumping a
    non-critical edge by one unit never does (integer weights)."""
    clustered, _, _ = instance
    analysis = analyze_criticality(clustered)
    base = analysis.ideal.total_time
    graph = clustered.graph
    labels = clustered.clustering.labels
    for e in graph.edges():
        bumped = graph.prob_edge.copy()
        bumped[e.src, e.dst] += 1
        regraph = TaskGraph(graph.task_sizes, bumped)
        new_bound = lower_bound(ClusteredGraph(regraph, clustered.clustering))
        if labels[e.src] == labels[e.dst]:
            assert new_bound == base  # intra edges have zero clustered weight
        elif analysis.crit_mask[e.src, e.dst]:
            assert new_bound > base
        else:
            assert new_bound == base


@SETTINGS
@given(clustered_instances())
def test_critical_degree_is_row_sum(instance):
    clustered, _, _ = instance
    analysis = analyze_criticality(clustered)
    assert np.array_equal(
        analysis.critical_degree, analysis.c_abs_edge.sum(axis=1)
    )
    assert np.array_equal(analysis.c_abs_edge, analysis.c_abs_edge.T)


# ----------------------------------------------------------------------
# Mapper invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(clustered_instances())
def test_mapper_end_to_end_invariants(instance):
    clustered, system, seed = instance
    result = CriticalEdgeMapper(rng=seed).map(clustered, system)
    assert sorted(result.assignment.assi.tolist()) == list(range(system.num_nodes))
    assert result.lower_bound <= result.total_time <= result.initial_total_time
    assert result.is_provably_optimal == (result.total_time == result.lower_bound)


@SETTINGS
@given(clustered_instances(max_tasks=12))
def test_termination_condition_sound(instance):
    """When the mapper claims optimality, exhaustive search agrees."""
    clustered, system, seed = instance
    if system.num_nodes > 6:
        return  # keep the factorial small
    result = CriticalEdgeMapper(rng=seed).map(clustered, system)
    if result.is_provably_optimal:
        best = exhaustive_optimum(clustered, system)
        assert best.total_time == result.total_time


# ----------------------------------------------------------------------
# Simulator agreement
# ----------------------------------------------------------------------


@SETTINGS
@given(clustered_instances())
def test_simulator_matches_analytic_model(instance):
    clustered, system, seed = instance
    assignment = Assignment.random(system.num_nodes, rng=seed)
    schedule = evaluate_assignment(clustered, system, assignment)
    sim = simulate(clustered, system, assignment)
    assert sim.makespan == schedule.total_time
    assert np.array_equal(sim.start, schedule.start)
    assert np.array_equal(sim.end, schedule.end)


# ----------------------------------------------------------------------
# Substrate invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(task_graphs())
def test_serialization_round_trip(graph):
    assert task_graph_from_dict(task_graph_to_dict(graph)) == graph


@SETTINGS
@given(task_graphs())
def test_topological_order_property(graph):
    order = graph.topological_order.tolist()
    position = {t: i for i, t in enumerate(order)}
    for e in graph.edges():
        assert position[e.src] < position[e.dst]


@SETTINGS
@given(
    st.integers(2, 30),
    st.floats(0.0, 1.0),
    st.integers(0, 2**16),
)
def test_random_topologies_connected(n, prob, seed):
    g = random_connected(n, extra_edge_prob=prob, rng=seed)
    assert g.num_nodes == n
    assert (g.shortest >= 0).all()  # constructor rejects disconnection


@SETTINGS
@given(st.integers(1, 200), st.integers(0, 2**16))
def test_layered_dag_generator_valid(n, seed):
    g = layered_random_dag(num_tasks=n, rng=seed)
    assert g.num_tasks == n
    entries = set(g.sources().tolist())
    for t in range(n):
        if t not in entries:
            assert g.predecessors(t).size > 0


# ----------------------------------------------------------------------
# Incremental evaluator, list scheduler, embedding
# ----------------------------------------------------------------------


@SETTINGS
@given(clustered_instances(), st.lists(st.integers(0, 10**6), max_size=12))
def test_incremental_evaluator_equivalence(instance, swap_seeds):
    from repro.core import IncrementalEvaluator

    clustered, system, seed = instance
    n = system.num_nodes
    if n < 2:
        return
    a = Assignment.random(n, rng=seed)
    inc = IncrementalEvaluator(clustered, system, a)
    current = a
    for s in swap_seeds:
        x, y = s % n, (s // n) % n
        if x == y:
            continue
        current = current.swapped(x, y)
        assert inc.swap(x, y) == total_time(clustered, system, current)


@SETTINGS
@given(clustered_instances())
def test_list_schedule_dominates_paper_model(instance):
    from repro.core import list_schedule, verify_times

    clustered, system, seed = instance
    a = Assignment.random(system.num_nodes, rng=seed)
    paper = total_time(clustered, system, a)
    for policy in ("fifo", "blevel"):
        ls = list_schedule(clustered, system, a, policy=policy)
        assert ls.makespan >= paper
        verify_times(clustered, system, a, ls.start, ls.end, require_asap=False)


@SETTINGS
@given(clustered_instances())
def test_embedding_congestion_conservation(instance):
    """Sum of link crossings equals sum of edge dilations."""
    from repro.core import AbstractGraph
    from repro.topology import edge_dilations, link_congestion

    clustered, system, seed = instance
    abstract = AbstractGraph(clustered)
    a = Assignment.random(system.num_nodes, rng=seed)
    dil = edge_dilations(abstract, system, a)
    cong = link_congestion(abstract, system, a)
    assert sum(cong.values()) == sum(dil.values())


@SETTINGS
@given(st.integers(2, 16), st.integers(0, 2**16))
def test_order_crossover_permutation_property(n, seed):
    from repro.baselines import order_crossover

    gen = np.random.default_rng(seed)
    a, b = gen.permutation(n), gen.permutation(n)
    child = order_crossover(a, b, gen)
    assert sorted(child.tolist()) == list(range(n))


# ----------------------------------------------------------------------
# Weighted links
# ----------------------------------------------------------------------


@st.composite
def weighted_systems(draw):
    """Random connected machines with random integer link costs."""
    from repro.topology import SystemGraph, random_connected

    n = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 2**16))
    base = random_connected(n, extra_edge_prob=0.3, rng=seed)
    gen = np.random.default_rng(seed)
    weights = gen.integers(1, 6, size=(n, n))
    return SystemGraph(base.sys_edge, name="wrand", link_weights=weights)


@SETTINGS
@given(weighted_systems())
def test_weighted_distances_metric(system):
    d = system.shortest
    n = system.num_nodes
    assert (np.diagonal(d) == 0).all()
    assert np.array_equal(d, d.T)
    for a in range(n):
        for b in range(n):
            for c in range(n):
                assert d[a, c] <= d[a, b] + d[b, c]
    # Distances never exceed the direct link cost where a link exists.
    adj = system.sys_edge > 0
    assert (d[adj] <= system.link_weights[adj]).all()


@SETTINGS
@given(weighted_systems(), st.integers(0, 2**16))
def test_weighted_routes_cost_matches_distance(system, seed):
    gen = np.random.default_rng(seed)
    n = system.num_nodes
    a, b = int(gen.integers(n)), int(gen.integers(n))
    path = system.shortest_path(a, b)
    cost = sum(
        int(system.link_weights[u, v]) for u, v in zip(path, path[1:])
    )
    assert cost == system.distance(a, b)


@SETTINGS
@given(weighted_systems(), st.integers(0, 2**16))
def test_simulator_matches_analytic_on_weighted_machines(system, seed):
    from repro.core import ClusteredGraph, Clustering

    gen = np.random.default_rng(seed)
    n = system.num_nodes
    graph = layered_random_dag(num_tasks=3 * n, rng=gen)
    labels = np.concatenate(
        [np.arange(n), gen.integers(0, n, size=2 * n)]
    )
    clustered = ClusteredGraph(graph, Clustering(labels, num_clusters=n))
    assignment = Assignment.random(n, rng=gen)
    schedule = evaluate_assignment(clustered, system, assignment)
    sim = simulate(clustered, system, assignment)
    assert sim.makespan == schedule.total_time
