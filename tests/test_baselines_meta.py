"""Unit tests for the metaheuristic baselines (genetic, tabu)."""

import numpy as np
import pytest

from repro.baselines import (
    genetic_mapping,
    order_crossover,
    tabu_mapping,
)
from repro.core import Assignment, lower_bound, total_time
from tests.conftest import random_instance


class TestOrderCrossover:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_permutation(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.permutation(8)
        b = gen.permutation(8)
        child = order_crossover(a, b, gen)
        assert sorted(child.tolist()) == list(range(8))

    def test_inherits_slice_from_first_parent(self):
        gen = np.random.default_rng(0)
        a = np.arange(10)
        b = np.arange(10)[::-1].copy()
        child = order_crossover(a, b, gen)
        # Wherever the kept slice is, those positions match parent A.
        matches = child == a
        assert matches.any()

    def test_identical_parents_identity(self):
        gen = np.random.default_rng(1)
        a = np.asarray([3, 1, 0, 2])
        child = order_crossover(a, a.copy(), gen)
        assert child.tolist() == a.tolist()

    def test_single_gene(self):
        gen = np.random.default_rng(2)
        child = order_crossover(np.asarray([0]), np.asarray([0]), gen)
        assert child.tolist() == [0]


class TestGenetic:
    def test_result_consistent(self):
        clustered, system = random_instance(0)
        result = genetic_mapping(clustered, system, rng=0, generations=10)
        assert result.total_time == total_time(
            clustered, system, result.assignment
        )
        assert result.total_time >= lower_bound(clustered)
        assert result.evaluations > 0

    def test_early_termination_at_bound(self):
        from repro.workloads import running_example_clustered, running_example_system

        clustered = running_example_clustered()
        system = running_example_system()
        bound = lower_bound(clustered)
        result = genetic_mapping(
            clustered, system, rng=0, lower_bound=bound, generations=200
        )
        assert result.reached_lower_bound
        assert result.total_time == bound

    def test_beats_single_random_usually(self):
        wins = 0
        for seed in range(5):
            clustered, system = random_instance(seed)
            ga = genetic_mapping(clustered, system, rng=seed, generations=15)
            rand_time = total_time(
                clustered, system, Assignment.random(system.num_nodes, rng=seed)
            )
            wins += ga.total_time <= rand_time
        assert wins >= 4

    def test_deterministic_by_seed(self):
        clustered, system = random_instance(1)
        a = genetic_mapping(clustered, system, rng=5, generations=5)
        b = genetic_mapping(clustered, system, rng=5, generations=5)
        assert a.total_time == b.total_time

    def test_bad_population(self):
        clustered, system = random_instance(0)
        with pytest.raises(ValueError):
            genetic_mapping(clustered, system, population=1)


class TestTabu:
    def test_result_consistent(self):
        clustered, system = random_instance(0)
        result = tabu_mapping(clustered, system, rng=0, iterations=10)
        assert result.total_time == total_time(
            clustered, system, result.assignment
        )
        assert result.total_time >= lower_bound(clustered)

    def test_never_worse_than_initial(self):
        clustered, system = random_instance(1)
        start = Assignment.random(system.num_nodes, rng=9)
        start_time = total_time(clustered, system, start)
        result = tabu_mapping(
            clustered, system, rng=1, initial=start, iterations=15
        )
        assert result.total_time <= start_time

    def test_early_termination_at_bound(self):
        from repro.workloads import running_example_clustered, running_example_system

        clustered = running_example_clustered()
        system = running_example_system()
        bound = lower_bound(clustered)
        result = tabu_mapping(clustered, system, rng=0, lower_bound=bound)
        assert result.reached_lower_bound

    def test_escapes_local_optimum(self):
        """Tabu memory must allow uphill moves: final best over a long run
        is at least as good as a pure greedy (quench) from the same start."""
        from repro.baselines import anneal_mapping

        clustered, system = random_instance(2)
        start = Assignment.random(system.num_nodes, rng=3)
        greedy = anneal_mapping(
            clustered, system, rng=3, initial=start, quench=True
        )
        tabu = tabu_mapping(
            clustered, system, rng=3, initial=start, iterations=40
        )
        assert tabu.total_time <= greedy.total_time + 2
